//! Cinder: a reproduction of *Energy Management in Mobile Devices with the
//! Cinder Operating System* (Roy et al., EuroSys 2011) as a Rust library.
//!
//! This facade crate re-exports the workspace members so that examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event simulation substrate.
//! * [`label`] — HiStar-style information-flow labels and privileges.
//! * [`core`] — the paper's contribution: reserves, taps, the resource
//!   consumption graph, anti-hoarding decay, and the energy-aware scheduler.
//! * [`hw`] — HTC Dream power models (CPU, display, radio, battery) and the
//!   closed-ARM9 facade.
//! * [`kernel`] — the simulated kernel: containers, threads, gates,
//!   syscalls, and the run loop.
//! * [`net`] — the cooperative `netd` network stack and its uncooperative
//!   baseline.
//! * [`offload`] — the shared cloud backend: precomputed mean-field
//!   service traces and the local-vs-remote break-even policy.
//! * [`policy`] — the user-aware policy engine: presence models,
//!   lifetime-target control, and pure policy functions over kernel
//!   observables.
//! * [`faults`] — deterministic fault injection: radio flaps, backend
//!   outages, battery aging, crash schedules, and bounded retry.
//! * [`apps`] — the applications of the paper's §5: `energywrap`, spinners,
//!   the browser and plugin, the image viewer, the task manager, and the
//!   mail/RSS pollers.
//! * [`fleet`] — population-scale studies: deterministic multi-device
//!   fleet simulation with sharded execution and aggregate telemetry.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and experiment index.

pub use cinder_apps as apps;
pub use cinder_core as core;
pub use cinder_faults as faults;
pub use cinder_fleet as fleet;
pub use cinder_hw as hw;
pub use cinder_kernel as kernel;
pub use cinder_label as label;
pub use cinder_net as net;
pub use cinder_offload as offload;
pub use cinder_policy as policy;
pub use cinder_sim as sim;
