//! A minimal, offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `proptest` cannot be fetched from crates.io. This crate implements
//! the *subset* of proptest's API that the workspace's tests use:
//!
//! * `proptest! { ... }` with an optional `#![proptest_config(...)]`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_oneof!`,
//! * `Strategy` with `prop_map` and `boxed`, `Just`, `any::<T>()`,
//! * integer-range and tuple strategies,
//! * `proptest::collection::{vec, btree_map, btree_set}`,
//! * `ProptestConfig::with_cases`, `TestCaseError`.
//!
//! Semantics: each test runs `cases` random inputs drawn from a
//! deterministic per-test RNG (seeded from the test's module path and name,
//! overridable via the `PROPTEST_SEED` environment variable). There is no
//! shrinking; a failing case reports its case index and seed so it can be
//! replayed by fixing `PROPTEST_SEED`.

pub mod test_runner {
    /// Error type returned (via `prop_assert!` and `?`) from property-test
    /// bodies.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// An assertion failure carrying a rendered message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// Proptest's "discard this case" signal; treated as a pass here.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(format!("rejected: {}", msg.into()))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real proptest defaults to 256; 64 keeps the heavier
            // simulation properties fast while still exploring broadly.
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds directly from a 64-bit value.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seeds from a test identifier (FNV-1a of the name), honouring a
        /// `PROPTEST_SEED` environment override for replaying failures.
        ///
        /// By default the stream is a *fixed* function of the test name, so
        /// a plain `cargo test` is a reproducible regression set. Set
        /// `PROPTEST_RANDOMIZE` (CI does) to mix wall-clock entropy into
        /// the base seed so coverage grows across runs; every failing case
        /// reports its own `PROPTEST_SEED` replay value either way.
        pub fn for_test(name: &str) -> Self {
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = s.parse::<u64>() {
                    return TestRng::from_seed(seed);
                }
            }
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            if std::env::var_os("PROPTEST_RANDOMIZE").is_some() {
                let nanos = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0);
                h ^= nanos.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
            TestRng::from_seed(h)
        }

        /// The next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % n
        }

        /// The current seed state (reported on failure for replay).
        pub fn state(&self) -> u64 {
            self.state
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A source of random values. Unlike the real proptest there is no
    /// value tree and no shrinking: a strategy simply samples.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Filters generated values (resamples, bounded).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { source: self, f }
        }

        /// Type-erases the strategy so heterogeneous alternatives can be
        /// unioned (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy {
                sampler: Rc::new(move |rng| s.new_value(rng)),
            }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.source.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples");
        }
    }

    /// A type-erased strategy (cheaply clonable).
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        sampler: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.sampler)(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty)*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*}
    }
    int_range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty)*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*}
    }
    int_arbitrary!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

    /// Strategy produced by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    fn sample_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty collection size range");
        size.start + rng.below((size.end - size.start) as u64) as usize
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: `size.start ..= size.end - 1` elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_len(&self.size, rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap` (duplicate keys collapse, so the final size
    /// may be below the sampled target — matching proptest's tolerance).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// `BTreeMap` strategy.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_len(&self.size, rng);
            (0..n)
                .map(|_| (self.key.new_value(rng), self.value.new_value(rng)))
                .collect()
        }
    }

    /// Strategy for `BTreeSet` (duplicates collapse).
    pub struct BTreeSetStrategy<K> {
        key: K,
        size: Range<usize>,
    }

    /// `BTreeSet` strategy.
    pub fn btree_set<K>(key: K, size: Range<usize>) -> BTreeSetStrategy<K>
    where
        K: Strategy,
        K::Value: Ord,
    {
        BTreeSetStrategy { key, size }
    }

    impl<K> Strategy for BTreeSetStrategy<K>
    where
        K: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeSet<K::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_len(&self.size, rng);
            (0..n).map(|_| self.key.new_value(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, returning a `TestCaseError`
/// (rather than panicking) so the runner can report the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, with `Debug` output of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0u8..3, 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let seed = rng.state();
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed (replay with PROPTEST_SEED={}):\n{}",
                        case + 1,
                        config.cases,
                        seed,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}
