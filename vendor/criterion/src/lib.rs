//! A minimal, offline stand-in for the `criterion` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `criterion` cannot be fetched from crates.io. This crate implements
//! the subset of its API the workspace's benches use: `Criterion`,
//! `bench_function`, `benchmark_group` / `bench_with_input`, `Bencher::iter`
//! / `iter_with_setup`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up, then timed batches
//! until a wall-clock budget is spent, reporting the mean time per
//! iteration. There are no statistics, plots, or saved baselines. Results
//! print as `name  time: [mean]  (iters in window)` so shell pipelines can
//! scrape them.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A measured result: total wall time over `iters` runs.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Number of timed iterations.
    pub iters: u64,
    /// Total wall-clock time across the timed iterations.
    pub total: Duration,
}

impl Measurement {
    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    budget: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            result: None,
        }
    }

    /// Times `routine` repeatedly inside the wall-clock budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few untimed runs.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.result = Some(Measurement {
            iters,
            total: start.elapsed(),
        });
    }

    /// Like [`Bencher::iter`], excluding per-iteration `setup` time from
    /// the (approximate) reported figure by timing routines individually.
    pub fn iter_with_setup<S, O, Setup, R>(&mut self, mut setup: Setup, mut routine: R)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        black_box(routine(setup()));
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
            if timed >= self.budget || wall.elapsed() >= self.budget * 4 {
                break;
            }
        }
        self.result = Some(Measurement {
            iters,
            total: timed,
        });
    }
}

/// Identifies a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (the group name supplies the function part).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark wall-clock budget (criterion calls this the
    /// measurement time).
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    fn run_one(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        match b.result {
            Some(m) => println!(
                "{name:<48} time: [{}]  ({} iters)",
                format_time(m.ns_per_iter()),
                m.iters
            ),
            None => println!("{name:<48} (no measurement: routine never called iter)"),
        }
    }

    /// Benchmarks a single routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Benchmarks a plain routine inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group-runner function calling each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
