//! The network-stack plug-in boundary.
//!
//! The paper's `netd` is a user-space daemon implementing *policy* (pooling
//! energy for radio power-ups, §5.5); the kernel provides *mechanism*
//! (blocking a requesting thread, waking it, delivering and billing received
//! packets). [`NetStack`] is that boundary: `cinder-net` supplies the
//! cooperative netd and the uncooperative baseline.

use cinder_core::{ReserveId, ResourceGraph};
use cinder_hw::Arm9;
use cinder_sim::{SimDuration, SimRng, SimTime};

use crate::kernel::ThreadId;

/// A thread's request to send data and (optionally) receive a reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendRequest {
    /// The requesting thread.
    pub thread: ThreadId,
    /// The thread's active energy reserve (for billing and pooled
    /// contributions).
    pub reserve: ReserveId,
    /// The thread's active `NetworkBytes` reserve, if it carries a data
    /// plan (§9): debited per transmitted byte at the radio, and after the
    /// fact for received bytes. `None` = quota-unrestricted.
    pub byte_reserve: Option<ReserveId>,
    /// Bytes to transmit.
    pub tx_bytes: u64,
    /// Bytes the remote end will send back (0 = no reply).
    pub rx_bytes: u64,
    /// Extra delay the remote end adds before replying, beyond the RTT and
    /// transfer time — an offload request carries the backend's queue wait
    /// plus service time here. Plain sends use [`SimDuration::ZERO`].
    pub extra_delay: SimDuration,
    /// Whether the reply's delivery should wake the receiving thread.
    /// Plain sends use `false` (delivery only bills, §5.5.2); the
    /// `offload` syscall blocks its thread on the response, so it sets
    /// `true`.
    pub wakes: bool,
}

/// The stack's decision on a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendVerdict {
    /// Transmitted now.
    Sent,
    /// Queued; the kernel blocks the thread until the stack's `poll` wakes
    /// it.
    Blocked,
}

/// A reply scheduled for future delivery to a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxDelivery {
    /// When the reply arrives.
    pub at: SimTime,
    /// The receiving thread.
    pub thread: ThreadId,
    /// Reply size.
    pub bytes: u64,
    /// Energy reserve to debit after the fact (`None` = unbilled, the
    /// energy-unrestricted baseline).
    pub bill: Option<ReserveId>,
    /// `NetworkBytes` reserve to debit the reply's bytes against after the
    /// fact (§5.5.2's "up to or into debt", applied to the data plan).
    pub bill_bytes: Option<ReserveId>,
    /// Whether delivery wakes the receiving thread (offload responses);
    /// plain replies only bill.
    pub wakes: bool,
}

/// What the kernel lends a stack while it makes decisions: the resource
/// graph (for pooling and billing), the ARM9 (the only path to the radio),
/// the experiment RNG, and an outbox of scheduled reply deliveries.
pub struct NetEnv<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The resource consumption graph.
    pub graph: &'a mut ResourceGraph,
    /// The coprocessor facade owning the radio.
    pub arm9: &'a mut Arm9,
    /// Deterministic randomness (radio episode draws).
    pub rng: &'a mut SimRng,
    /// Replies to schedule; the kernel moves these onto its event queue and
    /// bills them on delivery.
    pub rx_outbox: &'a mut Vec<RxDelivery>,
    /// Instantaneous data energy to add to the meter (per-byte tx costs).
    pub metered_energy: &'a mut cinder_sim::Energy,
}

impl NetEnv<'_> {
    /// Round-trip latency used when scheduling echo replies.
    pub const DEFAULT_RTT: SimDuration = SimDuration::from_millis(200);

    /// Transmits through the ARM9 now, metering the data energy, debiting
    /// the request's `NetworkBytes` reserve per transmitted byte (§9,
    /// enforced online at the radio for every stack), and scheduling the
    /// reply (if any) after [`NetEnv::DEFAULT_RTT`].
    ///
    /// `bill_rx` selects after-the-fact receive billing (§5.5.2); the
    /// unrestricted baseline passes `None`. Reply *bytes* are always billed
    /// to the byte reserve when one is carried — a data plan meters
    /// received traffic even when radio energy is unbilled.
    pub fn transmit(&mut self, req: &SendRequest, bill_rx: Option<ReserveId>) {
        let outcome = match self.arm9.request(
            self.now,
            cinder_hw::Arm9Request::RadioTransmit {
                bytes: req.tx_bytes,
            },
            self.rng,
        ) {
            Ok(cinder_hw::Arm9Response::Radio(out)) => out,
            other => unreachable!("radio transmit cannot fail: {other:?}"),
        };
        *self.metered_energy += outcome.data_energy;
        if let Some(bytes_reserve) = req.byte_reserve {
            // The kernel gated the send on the plan covering tx+rx; by the
            // time a pooled request reaches the radio other sends may have
            // drained the plan, so debit with debt rather than fail the
            // transmit the stack already paid energy for.
            let _ = self.graph.consume_with_debt(
                &cinder_core::Actor::kernel(),
                bytes_reserve,
                cinder_core::quota::bytes(req.tx_bytes),
            );
        }
        if req.rx_bytes > 0 {
            self.rx_outbox.push(RxDelivery {
                at: self.now + Self::DEFAULT_RTT + outcome.duration + req.extra_delay,
                thread: req.thread,
                bytes: req.rx_bytes,
                bill: bill_rx,
                bill_bytes: req.byte_reserve,
                wakes: req.wakes,
            });
        }
    }
}

/// A pluggable network stack.
pub trait NetStack {
    /// Handles a thread's send request at `env.now`.
    fn request(&mut self, env: &mut NetEnv<'_>, req: SendRequest) -> SendVerdict;

    /// Called periodically (each graph flow tick): progress blocked
    /// requests. Returns the threads whose requests were completed (the
    /// kernel wakes them with [`SendVerdict::Sent`]).
    fn poll(&mut self, env: &mut NetEnv<'_>) -> Vec<ThreadId>;

    /// The stack's pooled reserve, if it has one (netd's; Fig 14 traces its
    /// level).
    fn pool_reserve(&self) -> Option<ReserveId> {
        None
    }

    /// Whether the stack has no queued work and its `poll` would be a
    /// no-op. The kernel's idle fast-forward only skips quanta while the
    /// stack is idle, so a pooling stack (netd) still gets polled every
    /// flow tick while blocked senders wait for their taps to fill the
    /// pool.
    ///
    /// The default is `false` — "never skip my polls" — so a stack that
    /// does real work in `poll` but forgets to implement this is merely
    /// slower under `idle_skip`, never wrong. Stacks whose `poll` is a
    /// no-op (or that hold no queued work) should override and return
    /// `true` to let the fast-forward engage.
    fn is_idle(&self) -> bool {
        false
    }

    /// Whether `poll` at this instant would provably change *nothing* —
    /// given the caller's promise that over the probed span no reserve
    /// balance in `graph` can change (the graph is frozen, see
    /// `ResourceGraph::flow_is_frozen`) and the radio holds
    /// `radio_active` / `radio_next_transition` throughout. The kernel's
    /// frozen fast-forward skips a *non-idle* stack's polls only under
    /// this certificate, so a drained device blocked in the stack does
    /// not pin the run loop to per-quantum stepping forever.
    ///
    /// The default answers with [`NetStack::is_idle`]: an idle stack's
    /// poll is a no-op by that contract, and `false` is always safe —
    /// merely slower. Pooling stacks can certify more: netd proves its
    /// memoised failed-grant check replays byte-identically while its
    /// waiters' reserves stay empty.
    fn poll_inert_while_frozen(
        &self,
        graph: &ResourceGraph,
        radio_active: bool,
        radio_next_transition: Option<SimTime>,
    ) -> bool {
        let _ = (graph, radio_active, radio_next_transition);
        self.is_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_core::Actor;
    use cinder_hw::{Battery, RadioParams};
    use cinder_label::Label;
    use cinder_sim::Energy;

    /// A stack that always transmits immediately without billing: the
    /// simplest possible implementation, used to test the env plumbing.
    struct PassThrough;

    impl NetStack for PassThrough {
        fn request(&mut self, env: &mut NetEnv<'_>, req: SendRequest) -> SendVerdict {
            env.transmit(&req, None);
            SendVerdict::Sent
        }

        fn poll(&mut self, _env: &mut NetEnv<'_>) -> Vec<ThreadId> {
            Vec::new()
        }
    }

    #[test]
    fn transmit_meters_data_and_schedules_reply() {
        let mut graph = ResourceGraph::new(Energy::from_joules(100));
        let k = Actor::kernel();
        let reserve = graph
            .create_reserve(&k, "r", Label::default_label())
            .unwrap();
        let mut arm9 = Arm9::new(RadioParams::htc_dream(), Battery::fig1_15kj());
        let mut rng = SimRng::seed_from_u64(3);
        let mut outbox = Vec::new();
        let mut metered = Energy::ZERO;
        let mut env = NetEnv {
            now: SimTime::from_secs(1),
            graph: &mut graph,
            arm9: &mut arm9,
            rng: &mut rng,
            rx_outbox: &mut outbox,
            metered_energy: &mut metered,
        };
        let req = SendRequest {
            thread: ThreadId::test_id(1),
            reserve,
            byte_reserve: None,
            tx_bytes: 100,
            rx_bytes: 400,
            extra_delay: SimDuration::ZERO,
            wakes: false,
        };
        let verdict = PassThrough.request(&mut env, req);
        assert_eq!(verdict, SendVerdict::Sent);
        assert_eq!(metered, Energy::from_microjoules(250));
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0].bytes, 400);
        assert_eq!(outbox[0].bill_bytes, None);
        assert!(outbox[0].at > SimTime::from_secs(1));
        assert!(arm9.radio().is_active());
    }

    #[test]
    fn transmit_debits_the_byte_reserve_per_byte() {
        let mut graph = ResourceGraph::new(Energy::from_joules(100));
        let k = Actor::kernel();
        let reserve = graph
            .create_reserve(&k, "r", Label::default_label())
            .unwrap();
        graph
            .create_root(
                &k,
                "plan-pool",
                cinder_core::Quantity::network_bytes(10_000),
            )
            .unwrap();
        let plan = graph
            .create_reserve_kind(
                &k,
                "plan",
                Label::default_label(),
                cinder_core::ResourceKind::NetworkBytes,
            )
            .unwrap();
        let pool = graph.root(cinder_core::ResourceKind::NetworkBytes).unwrap();
        graph
            .transfer(&k, pool, plan, cinder_core::quota::bytes(10_000))
            .unwrap();
        let mut arm9 = Arm9::new(RadioParams::htc_dream(), Battery::fig1_15kj());
        let mut rng = SimRng::seed_from_u64(3);
        let mut outbox = Vec::new();
        let mut metered = Energy::ZERO;
        let mut env = NetEnv {
            now: SimTime::from_secs(1),
            graph: &mut graph,
            arm9: &mut arm9,
            rng: &mut rng,
            rx_outbox: &mut outbox,
            metered_energy: &mut metered,
        };
        let req = SendRequest {
            thread: ThreadId::test_id(1),
            reserve,
            byte_reserve: Some(plan),
            tx_bytes: 1_500,
            rx_bytes: 4_000,
            extra_delay: SimDuration::ZERO,
            wakes: false,
        };
        env.transmit(&req, None);
        // tx bytes debited at the radio, rx bytes billed at delivery.
        assert_eq!(
            cinder_core::quota::as_bytes(graph.level(&k, plan).unwrap()),
            10_000 - 1_500
        );
        assert_eq!(outbox[0].bill_bytes, Some(plan));
        assert!(graph
            .totals_for(cinder_core::ResourceKind::NetworkBytes)
            .conserved());
    }
}
