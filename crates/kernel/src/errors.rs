//! Kernel error types.

use std::fmt;

use cinder_core::{GraphError, ResourceKind};
use cinder_hw::Arm9Error;

use crate::peripheral::PeripheralKind;

/// Why a kernel operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A resource-graph operation failed (permissions, funds, stale ids).
    Graph(GraphError),
    /// The object id does not name a live kernel object.
    NoSuchObject,
    /// The object exists but has the wrong kind for this operation.
    WrongObjectKind,
    /// The thread id does not name a live thread.
    NoSuchThread,
    /// The calling thread's label/privileges do not permit the operation.
    Denied {
        /// Which operation was refused.
        op: &'static str,
    },
    /// No network stack is installed.
    NoNetwork,
    /// No offload backend is installed.
    NoOffload,
    /// No laptop NIC is configured on this platform.
    NoLaptopNic,
    /// The thread has no active reserve of the required kind (e.g.
    /// `sms_send` without an SMS quota attached).
    NoReserveForKind {
        /// The kind the syscall needed a reserve for.
        kind: ResourceKind,
    },
    /// The peripheral has no acquired reserve to fund it (acquire first).
    NoPeripheralReserve {
        /// The peripheral the syscall named.
        peripheral: PeripheralKind,
    },
    /// The peripheral's reserve cannot fund even one quantum of its draw.
    PeripheralUnfunded {
        /// The peripheral the syscall named.
        peripheral: PeripheralKind,
    },
    /// The peripheral is currently enabled; disable it before re-acquiring.
    PeripheralBusy {
        /// The peripheral the syscall named.
        peripheral: PeripheralKind,
    },
    /// The ARM9 refused the request (closed firmware).
    Arm9(Arm9Error),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Graph(e) => write!(f, "resource graph: {e}"),
            KernelError::NoSuchObject => write!(f, "no such kernel object"),
            KernelError::WrongObjectKind => write!(f, "wrong kernel object kind"),
            KernelError::NoSuchThread => write!(f, "no such thread"),
            KernelError::Denied { op } => write!(f, "permission denied: {op}"),
            KernelError::NoNetwork => write!(f, "no network stack installed"),
            KernelError::NoOffload => write!(f, "no offload backend installed"),
            KernelError::NoLaptopNic => write!(f, "no laptop NIC on this platform"),
            KernelError::NoReserveForKind { kind } => {
                write!(f, "thread has no active {kind} reserve")
            }
            KernelError::NoPeripheralReserve { peripheral } => {
                write!(f, "{peripheral} has no acquired reserve")
            }
            KernelError::PeripheralUnfunded { peripheral } => {
                write!(f, "{peripheral} reserve cannot fund a quantum of draw")
            }
            KernelError::PeripheralBusy { peripheral } => {
                write!(f, "{peripheral} is enabled; disable before re-acquiring")
            }
            KernelError::Arm9(e) => write!(f, "arm9: {e}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<GraphError> for KernelError {
    fn from(e: GraphError) -> Self {
        KernelError::Graph(e)
    }
}

impl From<Arm9Error> for KernelError {
    fn from(e: Arm9Error) -> Self {
        KernelError::Arm9(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let k: KernelError = GraphError::ReserveNotFound.into();
        assert_eq!(k.to_string(), "resource graph: reserve not found");
        let a: KernelError = Arm9Error::ClosedFirmware.into();
        assert!(a.to_string().contains("closed"));
        assert_eq!(
            KernelError::Denied { op: "gate_call" }.to_string(),
            "permission denied: gate_call"
        );
    }
}
