//! The kernel: object table, thread management, syscalls, and the metered
//! run loop.
//!
//! The run loop advances in scheduler quanta (default 10 ms). Per quantum:
//!
//! 1. radio timers are advanced, with the power meter updated *at* each
//!    transition so energy integration is exact;
//! 2. due events fire (thread wake-ups, received-packet deliveries with
//!    after-the-fact billing, §5.5.2);
//! 3. tap flows and decay advance ([`cinder_core::ResourceGraph::flow_until`]);
//! 4. the network stack polls (blocked senders may be granted and woken);
//! 5. the energy-aware scheduler picks a thread whose active reserve is
//!    non-empty; its program runs/continues and its reserve is charged the
//!    quantum at the accounting power (137 mW);
//! 6. the meter records total platform power for the quantum.

use std::collections::{BTreeMap, VecDeque};

use cinder_core::{
    quota, Actor, GraphConfig, Quantity, RateSpec, ReserveId, ResourceGraph, ResourceKind,
    ResourceScheduler, SchedulerConfig, TapId, TaskId, TaskState,
};
use cinder_faults::FlapSemantics;
use cinder_hw::{
    Arm9, Arm9Request, Arm9Response, Battery, CpuKind, LaptopNet, PlatformPower, RadioParams,
};
use cinder_label::{Category, CategorySpace, Label};
use cinder_sim::{
    meter::AGILENT_SAMPLE_INTERVAL, Energy, EventQueue, Power, PowerMeter, SimDuration, SimRng,
    SimTime,
};

use crate::errors::KernelError;
use crate::netstack::{NetEnv, NetStack, RxDelivery, SendRequest, SendVerdict};
use crate::object::{Body, KObject, ObjectId};
use crate::offload::{
    OffloadBackend, OffloadOutcome, OffloadRequest, OffloadStats, OffloadStatus, OffloadVerdict,
};
use crate::peripheral::{PeripheralKind, PeripheralSlot};
use crate::program::{NetSendStatus, Program, Step};

/// Identifies a kernel thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(u64);

impl ThreadId {
    /// Constructs an id for unit tests of plug-in crates.
    #[doc(hidden)]
    pub fn test_id(raw: u64) -> Self {
        ThreadId(raw)
    }

    /// The raw id (display/debugging).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Kernel construction parameters.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Initial battery energy (the root reserve). Default: Fig 1's 15 kJ.
    pub battery: Energy,
    /// Resource-graph configuration (flow tick, decay, strict mode).
    pub graph: GraphConfig,
    /// Scheduler configuration (quantum, estimate window).
    pub sched: SchedulerConfig,
    /// Radio parameters (the HTC Dream defaults).
    pub radio: RadioParams,
    /// RNG seed: same seed, same run.
    pub seed: u64,
    /// Record a 200 ms-sampled power trace (the Agilent setup).
    pub meter_trace: bool,
    /// Attach a laptop NIC (the image-viewer platform, §6.2).
    pub laptop: Option<LaptopNet>,
    /// Fast-forward the run loop over provably idle quanta (no Ready
    /// thread, idle net stack, no event or radio transition due). The
    /// simulation is bit-identical with or without this flag — taps, decay,
    /// metering, and wake-ups all integrate over the skipped span — but
    /// device-hours of mostly-sleeping workloads run orders of magnitude
    /// faster, which is what makes fleet-scale studies practical. Off by
    /// default so single-device experiments run the literal paper loop.
    pub idle_skip: bool,
    /// Fast-forward *frozen* spans: quanta in which threads exist (Ready
    /// but provably unfundable, or blocked in a pooling net stack) yet the
    /// whole device is provably inert — the resource graph is frozen
    /// ([`cinder_core::ResourceGraph::flow_is_frozen`]), the stack's polls
    /// replay byte-identically, and no event or radio transition is due.
    /// This is the drained-battery steady state every long-horizon fleet
    /// device ends in; with only `idle_skip` it steps (and round-robins the
    /// scheduler) every quantum forever. Bit-identical by construction:
    /// throttled-quanta accounting is replayed in bulk and flows settle
    /// over the span exactly as when stepped. Off by default, like
    /// `idle_skip`.
    pub fast_forward: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            battery: Energy::from_joules(15_000),
            graph: GraphConfig::default(),
            sched: SchedulerConfig::default(),
            radio: RadioParams::htc_dream(),
            seed: 0,
            meter_trace: false,
            laptop: None,
            idle_skip: false,
            fast_forward: false,
        }
    }
}

/// Result of a laptop NIC download grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownloadGrant {
    /// How long the transfer occupies the link; callers typically sleep for
    /// this long to model the transfer.
    pub duration: SimDuration,
    /// The energy charged to the active reserve.
    pub energy: Energy,
}

/// The kernel state a policy engine may observe: a plain-data snapshot
/// taken between run spans (see [`Kernel::observables`]). Everything in
/// it is already reachable through individual accessors; bundling it
/// keeps policy inputs an explicit, closed surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelObservables {
    /// Simulated now.
    pub now: SimTime,
    /// Remaining energy in the battery's root reserve. Only tap draws
    /// deplete this; the platform baseline does not route through it.
    pub battery_level: Energy,
    /// Total platform energy the meter has integrated so far — the
    /// basis of any lifetime projection (the baseline *is* in here).
    pub total_energy: Energy,
    /// Backlight lit?
    pub backlight_enabled: bool,
    /// Backlight drive in ppm of full draw.
    pub backlight_drive_ppm: u64,
    /// GPS powered?
    pub gps_enabled: bool,
    /// GPS drive in ppm of full draw.
    pub gps_drive_ppm: u64,
    /// Offload syscall telemetry.
    pub offload: OffloadStats,
}

/// Fault-injection telemetry: what the link-flap layer did to this
/// kernel. All zeros on a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Link flaps applied ([`Kernel::fault_link_down`] calls that took).
    pub link_flaps: u64,
    /// In-flight deliveries stalled to a flap's end ([`FlapSemantics::Stall`]).
    pub stalled_deliveries: u64,
    /// In-flight deliveries dropped by a flap (refund or sink semantics).
    pub dropped_deliveries: u64,
    /// Payload bytes lost in dropped deliveries.
    pub lost_bytes: u64,
    /// Sends held back because the link was down (distinct from
    /// blocked-on-bytes and blocked-on-pooled-energy).
    pub link_blocked_sends: u64,
    /// Offload attempts rejected because the link was down.
    pub link_rejected_offloads: u64,
}

/// Events on the kernel timeline.
#[derive(Debug, Clone, Copy)]
enum KernelEvent {
    /// Wake a sleeping/blocked thread.
    Wake(ThreadId),
    /// The end of a link flap: the radio link comes back up. Scheduled by
    /// [`Kernel::fault_link_down`], so a flap is self-contained — every
    /// fast-forward path's event bound already stops at it.
    LinkUp,
    /// Deliver received bytes: extends the radio episode and debits the
    /// billed energy reserve (and the data plan's bytes) after the fact.
    /// `wakes` marks an offload response: delivery also wakes the thread
    /// blocked in the `offload` syscall (plain replies never wake).
    Rx {
        thread: ThreadId,
        bytes: u64,
        bill: Option<ReserveId>,
        bill_bytes: Option<ReserveId>,
        wakes: bool,
    },
    /// An offload deadline: if the thread is still waiting on the response
    /// for offload `seq`, give up and wake it with
    /// [`OffloadOutcome::TimedOut`]. Stale deadlines (the response already
    /// landed, or the thread moved on to a later offload) are ignored.
    OffloadDeadline { thread: ThreadId, seq: u64 },
}

/// A send the kernel is holding back because the thread's `NetworkBytes`
/// reserve cannot cover it yet (§9, enforced online). Re-checked at every
/// net poll; once the plan covers `tx + rx` the request is handed to the
/// installed stack.
#[derive(Debug, Clone, Copy)]
struct PendingSend {
    tx_bytes: u64,
    rx_bytes: u64,
}

/// An offload in flight: the thread is blocked until the response delivery
/// (an `Rx` event with `wakes`) or the deadline event, whichever fires
/// first. `seq` disambiguates stale deadline events from a thread's later
/// offloads.
#[derive(Debug, Clone, Copy)]
struct PendingOffload {
    started_at: SimTime,
    seq: u64,
}

struct ThreadState {
    name: String,
    task: TaskId,
    actor: Actor,
    program: Option<Box<dyn Program>>,
    pending_compute: SimDuration,
    cpu_kind: CpuKind,
    net_result: Option<NetSendStatus>,
    msg_inbox: VecDeque<SimDuration>,
    /// A send blocked on the thread's byte quota (distinct from blocking in
    /// the stack on pooled energy).
    pending_send: Option<PendingSend>,
    /// How many sends have blocked on bytes — the §9 telemetry that makes
    /// blocked-on-bytes observably distinct from blocked-on-energy.
    bytes_blocked_sends: u64,
    /// The offload this thread is blocked on, if any.
    pending_offload: Option<PendingOffload>,
    /// How the last offload ended, for `offload_take_result` on wake.
    offload_result: Option<OffloadOutcome>,
    /// Offloads this thread has started (sequences stale deadline events).
    offload_seq: u64,
    exited: bool,
}

/// The simulated Cinder kernel.
pub struct Kernel {
    config: KernelConfig,
    now: SimTime,
    graph: ResourceGraph,
    sched: ResourceScheduler,
    platform: PlatformPower,
    arm9: Arm9,
    meter: PowerMeter,
    rng: SimRng,
    events: EventQueue<KernelEvent>,
    /// Thread slab: slot `i` is thread id `i + 1` (ids are dense and never
    /// reused; exited threads keep their slot). Indexed, not hashed — the
    /// run loop touches this every quantum.
    threads: Vec<ThreadState>,
    /// Task→thread slab keyed by [`TaskId::index`] (tasks are never removed
    /// by the kernel, so slots are stable).
    task_to_thread: Vec<Option<ThreadId>>,
    /// Live threads holding a send blocked on their byte quota — the O(1)
    /// guard that lets `skip_idle_quanta` avoid rescanning threads.
    byte_waiters: usize,
    /// Reserve-gated peripheral slots, indexed by [`PeripheralKind::index`].
    peripherals: [PeripheralSlot; PeripheralKind::COUNT],
    /// How many peripherals are currently lit — the O(1) guard that keeps
    /// the per-quantum enforcement pass and the fast-path coverage checks
    /// free for the (common) peripheral-less device.
    enabled_peripherals: u32,
    /// The graph's per-flow-tick decay leak in ppm (0 when decay is off),
    /// memoised at boot for the fast-forward coverage bound.
    decay_leak_ppm: u64,
    objects: BTreeMap<ObjectId, KObject>,
    root: ObjectId,
    next_object: u64,
    next_thread: u64,
    categories: CategorySpace,
    net: Option<Box<dyn NetStack>>,
    last_net_poll: Option<SimTime>,
    /// Whether the flow tick grid is a refinement of the quantum grid
    /// (fixed at boot; hoisted out of the per-quantum poll path).
    net_poll_snappable: bool,
    /// The offload backend, if one is installed (absent on the baseline
    /// devices — the subsystem is pay-for-what-you-use).
    offload: Option<Box<dyn OffloadBackend>>,
    /// Threads currently blocked on an offload response — the O(1) guard
    /// the fast-forward paths consult: a waiter's wake is always a queued
    /// event (response delivery or deadline), so a non-empty count with an
    /// empty event queue is an invariant violation the steadiness probe
    /// refuses to certify over.
    offload_waiters: usize,
    /// Kernel-wide offload telemetry.
    offload_stats: OffloadStats,
    /// While true the radio link is administratively down (a fault-injected
    /// flap): new sends block, offloads reject, and the stack is not
    /// polled. Restored by the queued [`KernelEvent::LinkUp`].
    link_down: bool,
    /// Fault-injection telemetry.
    faults: FaultCounters,
}

impl Kernel {
    /// Boots a kernel with the given configuration.
    pub fn new(config: KernelConfig) -> Self {
        let graph = ResourceGraph::with_config(config.battery, config.graph);
        let sched = ResourceScheduler::new(config.sched);
        let quantum_us = config.sched.quantum.as_micros();
        let net_poll_snappable =
            quantum_us > 0 && config.graph.flow_tick.as_micros() % quantum_us == 0;
        let platform = PlatformPower::htc_dream();
        let battery_hw = Battery::new(config.battery.max(Energy::from_joules(1)));
        let arm9 = Arm9::new(config.radio, battery_hw);
        let mut meter = PowerMeter::new(platform.total(Power::ZERO));
        if config.meter_trace {
            meter.enable_sampling("measured", AGILENT_SAMPLE_INTERVAL);
        }
        let mut objects = BTreeMap::new();
        let root = ObjectId(0);
        objects.insert(
            root,
            KObject::new(
                "root",
                Label::default_label(),
                None,
                Body::Container {
                    children: Default::default(),
                },
            ),
        );
        Kernel {
            rng: SimRng::seed_from_u64(config.seed),
            graph,
            sched,
            platform,
            arm9,
            meter,
            events: EventQueue::new(),
            threads: Vec::new(),
            task_to_thread: Vec::new(),
            byte_waiters: 0,
            peripherals: [PeripheralSlot::new(), PeripheralSlot::new()],
            enabled_peripherals: 0,
            decay_leak_ppm: config
                .graph
                .decay
                .map(|d| d.leak_ppm_per_tick(config.graph.flow_tick))
                .unwrap_or(0),
            objects,
            root,
            next_object: 1,
            next_thread: 1,
            categories: CategorySpace::new(),
            net: None,
            last_net_poll: None,
            net_poll_snappable,
            offload: None,
            offload_waiters: 0,
            offload_stats: OffloadStats::default(),
            link_down: false,
            faults: FaultCounters::default(),
            now: SimTime::ZERO,
            config,
        }
    }

    /// A kernel with all defaults (15 kJ battery, Dream hardware).
    pub fn with_defaults() -> Self {
        Kernel::new(KernelConfig::default())
    }

    // ----- thread slab ----------------------------------------------------

    /// Slab lookup: thread ids are dense (`1..=len`), so this is a bounds
    /// check and an index, not a map probe.
    fn thread(&self, tid: ThreadId) -> Option<&ThreadState> {
        tid.0
            .checked_sub(1)
            .and_then(|i| self.threads.get(i as usize))
    }

    fn thread_mut(&mut self, tid: ThreadId) -> Option<&mut ThreadState> {
        tid.0
            .checked_sub(1)
            .and_then(|i| self.threads.get_mut(i as usize))
    }

    /// The thread id occupying slab slot `slot`.
    fn slot_tid(slot: usize) -> ThreadId {
        ThreadId(slot as u64 + 1)
    }

    fn thread_for_task(&self, task: TaskId) -> Option<ThreadId> {
        self.task_to_thread.get(task.index()).copied().flatten()
    }

    // ----- introspection --------------------------------------------------

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration the kernel booted with.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// The resource consumption graph (read-only).
    pub fn graph(&self) -> &ResourceGraph {
        &self.graph
    }

    /// Mutable graph access for experiment setup ("root shell" access;
    /// programs must go through [`Ctx`], which enforces labels).
    pub fn graph_mut(&mut self) -> &mut ResourceGraph {
        &mut self.graph
    }

    /// The battery's root reserve.
    pub fn battery(&self) -> ReserveId {
        self.graph.battery()
    }

    /// The power meter.
    pub fn meter(&self) -> &PowerMeter {
        &self.meter
    }

    /// The ARM9 facade (radio state, battery sensor).
    pub fn arm9(&self) -> &Arm9 {
        &self.arm9
    }

    /// The platform power model.
    pub fn platform_mut(&mut self) -> &mut PlatformPower {
        &mut self.platform
    }

    /// The root container.
    pub fn root_container(&self) -> ObjectId {
        self.root
    }

    /// Looks up an object.
    pub fn object(&self, id: ObjectId) -> Option<&KObject> {
        self.objects.get(&id)
    }

    /// Number of live kernel objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Allocates a fresh category, granting no one ownership (callers grant
    /// it to actors as needed).
    pub fn alloc_category(&mut self) -> Category {
        self.categories.alloc()
    }

    /// Installs the network stack.
    pub fn install_net(&mut self, stack: Box<dyn NetStack>) {
        self.net = Some(stack);
    }

    /// The installed stack's pool reserve, if any (Fig 14).
    pub fn net_pool_reserve(&self) -> Option<ReserveId> {
        self.net.as_ref().and_then(|n| n.pool_reserve())
    }

    /// Installs the offload backend the `offload` syscall consults.
    pub fn install_offload(&mut self, backend: Box<dyn OffloadBackend>) {
        self.offload = Some(backend);
    }

    /// Whether an offload backend is installed.
    pub fn has_offload(&self) -> bool {
        self.offload.is_some()
    }

    /// Kernel-wide offload telemetry.
    pub fn offload_stats(&self) -> OffloadStats {
        self.offload_stats
    }

    // ----- fault injection ------------------------------------------------

    /// Whether a fault-injected link flap is currently in force.
    pub fn link_is_down(&self) -> bool {
        self.link_down
    }

    /// Fault-injection telemetry (all zeros on a fault-free run).
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
    }

    /// Takes the radio link down until `until` (exclusive), applying
    /// `semantics` to in-flight inbound deliveries. While down, new sends
    /// are held in the kernel (released by the regular byte-quota retry
    /// path once the link returns), offload attempts reject immediately,
    /// and the stack is not polled — anything `netd` is already pooling
    /// simply waits, whatever the semantics. The restoring link-up kernel
    /// event is queued here, so a flap is self-contained and every
    /// fast-forward jump is bounded by it.
    ///
    /// `until` must land on the caller's span grid (the fault runtime
    /// aligns flap windows to the scheduler quantum). A call while the
    /// link is already down is a no-op: fault plans keep windows disjoint.
    pub fn fault_link_down(&mut self, until: SimTime, semantics: FlapSemantics) {
        if self.link_down || until <= self.now {
            return;
        }
        self.link_down = true;
        self.faults.link_flaps += 1;
        // Rework the in-flight schedule under the new reality. Draining in
        // pop order and re-scheduling in that order preserves the FIFO
        // tie-break among equal-time events, so untouched events replay
        // exactly as before.
        let drained = self.events.drain_all();
        self.events.schedule(until, KernelEvent::LinkUp);
        for (at, ev) in drained {
            match ev {
                KernelEvent::Rx {
                    thread,
                    bytes,
                    bill,
                    bill_bytes,
                    wakes,
                } if at < until => match semantics {
                    FlapSemantics::Stall => {
                        self.faults.stalled_deliveries += 1;
                        self.events.schedule(
                            until,
                            KernelEvent::Rx {
                                thread,
                                bytes,
                                bill,
                                bill_bytes,
                                wakes,
                            },
                        );
                    }
                    FlapSemantics::DropRefund => {
                        // Bill-on-delivery (§5.5.2) means an undelivered
                        // packet was never charged: dropping the event *is*
                        // the refund. A dropped offload response leaves the
                        // deadline event to wake the waiter as TimedOut.
                        self.faults.dropped_deliveries += 1;
                        self.faults.lost_bytes += bytes;
                    }
                    FlapSemantics::DropSink => {
                        // The payload is lost but the radio spent the
                        // energy: a wake-less billing event lands when the
                        // link returns, charging the doomed bytes.
                        self.faults.dropped_deliveries += 1;
                        self.faults.lost_bytes += bytes;
                        self.events.schedule(
                            until,
                            KernelEvent::Rx {
                                thread,
                                bytes,
                                bill,
                                bill_bytes,
                                wakes: false,
                            },
                        );
                    }
                },
                _ => self.events.schedule(at, ev),
            }
        }
    }

    /// A root read of a reserve's level — the typed graph query policy
    /// engines use (paper §3.2: levels are the observable applications
    /// and managers adapt to).
    pub fn reserve_level(&self, id: ReserveId) -> Energy {
        self.graph
            .level(&Actor::kernel(), id)
            .unwrap_or(Energy::ZERO)
    }

    /// The observable-state snapshot a policy engine decides over:
    /// clock, battery, peripheral drive state, and offload telemetry,
    /// all read-only and all deterministic at a given instant.
    pub fn observables(&self) -> KernelObservables {
        KernelObservables {
            now: self.now,
            battery_level: self.reserve_level(self.graph.battery()),
            total_energy: self.meter().total_energy(),
            backlight_enabled: self.peripheral_enabled(PeripheralKind::Backlight),
            backlight_drive_ppm: self.peripheral_drive_ppm(PeripheralKind::Backlight),
            gps_enabled: self.peripheral_enabled(PeripheralKind::Gps),
            gps_drive_ppm: self.peripheral_drive_ppm(PeripheralKind::Gps),
            offload: self.offload_stats,
        }
    }

    /// The policy engine's re-rate path: sets a tap to a constant rate
    /// with kernel authority — the task-manager lever of §5.4, exposed
    /// to a driver applying a policy's decisions between run spans.
    pub fn rerate_tap(&mut self, tap: TapId, rate: Power) -> Result<(), KernelError> {
        self.graph
            .set_tap_rate(&Actor::kernel(), tap, RateSpec::constant(rate))?;
        Ok(())
    }

    /// Installs a §9 data plan: creates the graph's `NetworkBytes` root
    /// pool holding `bytes`, grants the full plan to a `"plan"` reserve,
    /// and attaches that reserve to every thread in `threads` — their
    /// sends are byte-gated online from then on. Returns the plan reserve.
    ///
    /// Fails with [`cinder_core::GraphError::DuplicateRoot`] if the kernel
    /// already carries a byte pool.
    pub fn install_byte_plan(
        &mut self,
        bytes: u64,
        threads: &[ThreadId],
    ) -> Result<ReserveId, KernelError> {
        let root = Actor::kernel();
        let pool = self
            .graph
            .create_root(&root, "plan-pool", Quantity::network_bytes(bytes))?;
        let plan = self.graph.create_reserve_kind(
            &root,
            "plan",
            Label::default_label(),
            ResourceKind::NetworkBytes,
        )?;
        self.graph
            .transfer(&root, pool, plan, quota::bytes(bytes))?;
        for &tid in threads {
            self.set_thread_reserve_kind(tid, ResourceKind::NetworkBytes, plan);
        }
        Ok(plan)
    }

    // ----- peripherals ----------------------------------------------------

    /// The peripheral's full-drive draw (what reserves and taps are sized
    /// against).
    pub fn peripheral_full_power(&self, kind: PeripheralKind) -> Power {
        match kind {
            PeripheralKind::Backlight => self.platform.display.full_power(),
            PeripheralKind::Gps => self.platform.gps.full_power(),
        }
    }

    /// The draw the peripheral imposes while lit: full power scaled by the
    /// current drive level.
    pub fn peripheral_drain_power(&self, kind: PeripheralKind) -> Power {
        self.peripheral_full_power(kind)
            .scale_ppm(self.peripherals[kind.index()].drive_ppm)
    }

    /// Whether the peripheral is currently lit.
    pub fn peripheral_enabled(&self, kind: PeripheralKind) -> bool {
        self.peripherals[kind.index()].enabled
    }

    /// The reserve currently acquired for the peripheral, if any.
    pub fn peripheral_reserve(&self, kind: PeripheralKind) -> Option<ReserveId> {
        self.peripherals[kind.index()].reserve
    }

    /// The peripheral's current drive level in ppm of full draw.
    pub fn peripheral_drive_ppm(&self, kind: PeripheralKind) -> u64 {
        self.peripherals[kind.index()].drive_ppm
    }

    /// Total energy the peripheral has ever drained from its reserves —
    /// the balance of its decay-exempt accounting sink (zero if the
    /// peripheral was never enabled).
    pub fn peripheral_energy(&self, kind: PeripheralKind) -> Energy {
        self.peripherals[kind.index()]
            .sink
            .and_then(|s| self.graph.reserve(s))
            .map(|r| r.balance())
            .unwrap_or(Energy::ZERO)
    }

    /// How many times an empty reserve forced the peripheral down.
    pub fn peripheral_forced_shutdowns(&self, kind: PeripheralKind) -> u64 {
        self.peripherals[kind.index()].forced_shutdowns
    }

    /// Dedicates `reserve` to funding the peripheral (root-shell API; the
    /// checked path is [`Ctx::peripheral_acquire`]). The reserve must be an
    /// energy reserve; the peripheral must not currently be enabled.
    pub fn peripheral_acquire(
        &mut self,
        kind: PeripheralKind,
        reserve: ReserveId,
    ) -> Result<(), KernelError> {
        self.peripheral_acquire_as(&Actor::kernel(), kind, reserve)
    }

    /// [`Kernel::peripheral_acquire`] as a specific actor: the actor must
    /// hold observe on the reserve (its level is read every quantum) —
    /// reserves are protected objects exactly as in §3.5.
    pub fn peripheral_acquire_as(
        &mut self,
        actor: &Actor,
        kind: PeripheralKind,
        reserve: ReserveId,
    ) -> Result<(), KernelError> {
        if self.peripherals[kind.index()].enabled {
            return Err(KernelError::PeripheralBusy { peripheral: kind });
        }
        // Existence check, then the §3.5 reserve-*use* check: "Using
        // resources from a reserve requires both observe and modify
        // privileges" — the peripheral will both read the level every
        // quantum and drain it through the kernel tap.
        let r = self
            .graph
            .reserve(reserve)
            .ok_or(cinder_core::GraphError::ReserveNotFound)?;
        if !actor.is_kernel() && !actor.label().can_use(actor.privs(), r.label()) {
            return Err(KernelError::Denied {
                op: "peripheral_acquire",
            });
        }
        if r.kind() != ResourceKind::Energy {
            return Err(KernelError::Graph(cinder_core::GraphError::KindMismatch {
                op: "peripheral_acquire",
                expected: ResourceKind::Energy,
                found: r.kind(),
            }));
        }
        self.peripherals[kind.index()].reserve = Some(reserve);
        Ok(())
    }

    /// Lights the peripheral the Cinder way: requires an acquired reserve
    /// that can fund at least one quantum of the draw, and installs the
    /// kernel drain tap (reserve → accounting sink) that debits the draw
    /// every flow tick. Idempotent while already enabled.
    pub fn peripheral_enable(&mut self, kind: PeripheralKind) -> Result<(), KernelError> {
        if self.peripherals[kind.index()].enabled {
            return Ok(());
        }
        let Some(reserve) = self.peripherals[kind.index()].reserve else {
            return Err(KernelError::NoPeripheralReserve { peripheral: kind });
        };
        let drain = self.peripheral_drain_power(kind);
        let need = drain.energy_over(self.sched.quantum());
        let funded = self
            .graph
            .reserve(reserve)
            .is_some_and(|r| r.balance() >= need);
        if !funded {
            return Err(KernelError::PeripheralUnfunded { peripheral: kind });
        }
        let root = Actor::kernel();
        let sink = match self.peripherals[kind.index()].sink {
            Some(sink) if self.graph.reserve(sink).is_some() => sink,
            _ => {
                let sink = self.graph.create_reserve(
                    &root,
                    &format!("{kind}-sink"),
                    Label::default_label(),
                )?;
                // The sink is pure accounting: exempt from decay so its
                // balance is exactly the peripheral's lifetime energy.
                self.graph.set_decay_exempt(&root, sink, true)?;
                self.peripherals[kind.index()].sink = Some(sink);
                sink
            }
        };
        let tap = self.graph.create_tap(
            &root,
            &format!("{kind}-drain"),
            reserve,
            sink,
            RateSpec::constant(drain),
            Label::default_label(),
        )?;
        let slot = &mut self.peripherals[kind.index()];
        slot.drain = Some(tap);
        slot.enabled = true;
        self.enabled_peripherals += 1;
        let drive = slot.drive_ppm;
        self.set_peripheral_hw(kind, true, drive);
        Ok(())
    }

    /// Powers the peripheral down and removes its drain tap (idempotent).
    /// Residual energy stays in the acquired reserve.
    pub fn peripheral_disable(&mut self, kind: PeripheralKind) {
        let slot = &mut self.peripherals[kind.index()];
        if !slot.enabled {
            return;
        }
        slot.enabled = false;
        let tap = slot.drain.take();
        let drive = slot.drive_ppm;
        self.enabled_peripherals -= 1;
        if let Some(tap) = tap {
            // The tap may already be gone if the reserve was deleted.
            let _ = self.graph.delete_tap(&Actor::kernel(), tap);
        }
        self.set_peripheral_hw(kind, false, drive);
    }

    /// Sets the drive level (ppm of full draw, clamped to `1..=1_000_000`):
    /// dimming re-rates the metered hardware draw *and* the drain tap
    /// together, so accounting always matches the rails.
    pub fn peripheral_set_drive(
        &mut self,
        kind: PeripheralKind,
        ppm: u64,
    ) -> Result<(), KernelError> {
        let ppm = ppm.clamp(1, cinder_hw::FULL_DRIVE_PPM);
        self.peripherals[kind.index()].drive_ppm = ppm;
        let enabled = self.peripherals[kind.index()].enabled;
        match kind {
            PeripheralKind::Backlight => self.platform.display.set_drive_ppm(ppm),
            PeripheralKind::Gps => self.platform.gps.set_drive_ppm(ppm),
        }
        if enabled {
            let drain = self.peripheral_drain_power(kind);
            if let Some(tap) = self.peripherals[kind.index()].drain {
                self.graph
                    .set_tap_rate(&Actor::kernel(), tap, RateSpec::constant(drain))?;
            }
        }
        Ok(())
    }

    fn set_peripheral_hw(&mut self, kind: PeripheralKind, on: bool, drive_ppm: u64) {
        match kind {
            PeripheralKind::Backlight => {
                self.platform.display.set_drive_ppm(drive_ppm);
                self.platform.display.set_backlight(on);
            }
            PeripheralKind::Gps => {
                self.platform.gps.set_drive_ppm(drive_ppm);
                self.platform.gps.set_enabled(on);
            }
        }
    }

    /// The per-quantum enforcement pass: a reserve that cannot fund the
    /// next quantum of draw forcibly powers its peripheral down — the
    /// scheduler's empty-reserve CPU throttle (§3.2) applied to devices.
    /// O(1) when nothing is lit.
    fn enforce_peripherals(&mut self, _t: SimTime) {
        if self.enabled_peripherals == 0 {
            return;
        }
        let quantum = self.sched.quantum();
        for kind in PeripheralKind::ALL {
            let slot = &self.peripherals[kind.index()];
            if !slot.enabled {
                continue;
            }
            let reserve = slot.reserve.expect("enabled peripherals are funded");
            let need = self.peripheral_drain_power(kind).energy_over(quantum);
            let funded = self
                .graph
                .reserve(reserve)
                .is_some_and(|r| r.balance() >= need);
            if !funded {
                self.peripheral_disable(kind);
                self.peripherals[kind.index()].forced_shutdowns += 1;
            }
        }
    }

    /// Whether the per-quantum enforcement pass would act *right now* —
    /// the reduced net-busy stepper's stop condition.
    fn peripheral_enforcement_due(&self) -> bool {
        if self.enabled_peripherals == 0 {
            return false;
        }
        let quantum = self.sched.quantum();
        PeripheralKind::ALL.iter().any(|&kind| {
            let slot = &self.peripherals[kind.index()];
            slot.enabled && {
                let need = self.peripheral_drain_power(kind).energy_over(quantum);
                slot.reserve
                    .and_then(|r| self.graph.reserve(r))
                    .is_none_or(|r| r.balance() < need)
            }
        })
    }

    /// Conservative proof that every lit peripheral stays funded across a
    /// prospective fast-forward of `span`: assuming *zero* inflow, the
    /// reserve must cover the span's *total* constant outflow (every tap
    /// draining it, not just the peripheral drain), the landing boundary's
    /// enforcement threshold, a grain of tap-carry slack per tick and tap,
    /// and a linearised upper bound on the global decay leak. A live
    /// proportional drain has no static bound, so it pins the slow path
    /// outright. Inflow and the true compounding decay only leave the
    /// reserve *higher* than this bound, so a pass guarantees the skipped
    /// span is enforcement-free (and therefore bit-identical to stepping
    /// it); a fail merely pins the slow path — which is always correct.
    fn peripherals_cover_span(&self, span: SimDuration) -> bool {
        if self.enabled_peripherals == 0 {
            return true;
        }
        let tick_us = self.config.graph.flow_tick.as_micros().max(1);
        let ticks = span.as_micros().div_ceil(tick_us) + 1;
        let leak_cap = (self.decay_leak_ppm.saturating_mul(ticks)).min(1_000_000);
        let quantum = self.sched.quantum();
        PeripheralKind::ALL.iter().all(|&kind| {
            let slot = &self.peripherals[kind.index()];
            if !slot.enabled {
                return true;
            }
            let Some(reserve) = slot.reserve else {
                return false;
            };
            let Some(balance) = self.graph.reserve(reserve).map(|r| r.balance()) else {
                return false;
            };
            let (outflow, prop_outflow, out_taps) = self.graph.outbound_drain(reserve);
            if prop_outflow {
                return false;
            }
            let drain = self.peripheral_drain_power(kind);
            let kept = balance.clamp_non_negative().scale_ppm(1_000_000 - leak_cap);
            let need = outflow.energy_over(span)
                + drain.energy_over(quantum)
                + Energy::from_microjoules((ticks * (out_taps as u64 + 1)) as i64 + 1);
            kept >= need
        })
    }

    // ----- object management ----------------------------------------------

    fn alloc_object(
        &mut self,
        name: &str,
        label: Label,
        parent: ObjectId,
        body: Body,
    ) -> Result<ObjectId, KernelError> {
        let id = ObjectId(self.next_object);
        match self
            .objects
            .get_mut(&parent)
            .ok_or(KernelError::NoSuchObject)?
            .body_mut()
        {
            Body::Container { children } => {
                children.insert(id);
            }
            _ => return Err(KernelError::WrongObjectKind),
        }
        self.next_object += 1;
        self.objects
            .insert(id, KObject::new(name, label, Some(parent), body));
        Ok(id)
    }

    /// Creates a container inside `parent`.
    pub fn create_container(
        &mut self,
        parent: ObjectId,
        name: &str,
        label: Label,
    ) -> Result<ObjectId, KernelError> {
        self.alloc_object(
            name,
            label,
            parent,
            Body::Container {
                children: Default::default(),
            },
        )
    }

    /// Creates a segment (memory object) inside `parent`.
    pub fn create_segment(
        &mut self,
        parent: ObjectId,
        name: &str,
        label: Label,
        data: Vec<u8>,
    ) -> Result<ObjectId, KernelError> {
        self.alloc_object(name, label, parent, Body::Segment { data })
    }

    /// Creates an address space mapping the given segments.
    pub fn create_address_space(
        &mut self,
        parent: ObjectId,
        name: &str,
        label: Label,
        segments: Vec<ObjectId>,
    ) -> Result<ObjectId, KernelError> {
        self.alloc_object(name, label, parent, Body::AddressSpace { segments })
    }

    /// Creates a gate whose invocation costs the *caller* `work` of CPU.
    pub fn create_gate(
        &mut self,
        parent: ObjectId,
        name: &str,
        label: Label,
        work: SimDuration,
    ) -> Result<ObjectId, KernelError> {
        self.alloc_object(name, label, parent, Body::Gate { work })
    }

    /// Creates a reserve as a kernel object inside `parent` (root-shell
    /// API: uses the kernel actor).
    pub fn create_reserve_in(
        &mut self,
        parent: ObjectId,
        name: &str,
        label: Label,
    ) -> Result<(ObjectId, ReserveId), KernelError> {
        let reserve = self
            .graph
            .create_reserve(&Actor::kernel(), name, label.clone())?;
        let oid = self.alloc_object(name, label, parent, Body::Reserve { reserve })?;
        Ok((oid, reserve))
    }

    /// Creates a tap as a kernel object inside `parent` (root-shell API).
    #[allow(clippy::too_many_arguments)]
    pub fn create_tap_in(
        &mut self,
        parent: ObjectId,
        name: &str,
        source: ReserveId,
        sink: ReserveId,
        rate: RateSpec,
        label: Label,
    ) -> Result<(ObjectId, TapId), KernelError> {
        let tap =
            self.graph
                .create_tap(&Actor::kernel(), name, source, sink, rate, label.clone())?;
        let oid = self.alloc_object(name, label, parent, Body::Tap { tap })?;
        Ok((oid, tap))
    }

    /// Unlinks an object: it and (for containers) everything beneath it are
    /// deallocated. Deleting reserve/tap objects removes them from the
    /// graph — unlinking a browser page's container revokes its taps (§5.2).
    pub fn unlink(&mut self, id: ObjectId) -> Result<(), KernelError> {
        if id == self.root {
            return Err(KernelError::Denied { op: "unlink root" });
        }
        let obj = self.objects.get(&id).ok_or(KernelError::NoSuchObject)?;
        if let Some(parent) = obj.parent() {
            if let Some(Body::Container { children }) =
                self.objects.get_mut(&parent).map(|o| o.body_mut())
            {
                children.remove(&id);
            }
        }
        self.unlink_recursive(id);
        Ok(())
    }

    fn unlink_recursive(&mut self, id: ObjectId) {
        let Some(obj) = self.objects.remove(&id) else {
            return;
        };
        match obj.body() {
            Body::Container { children } => {
                let kids: Vec<ObjectId> = children.iter().copied().collect();
                for kid in kids {
                    self.unlink_recursive(kid);
                }
            }
            Body::Reserve { reserve } => {
                let _ = self.graph.delete_reserve(&Actor::kernel(), *reserve);
            }
            Body::Tap { tap } => {
                let _ = self.graph.delete_tap(&Actor::kernel(), *tap);
            }
            Body::Thread { thread } => {
                let thread = *thread;
                let mut cleared = false;
                let mut offload_cleared = false;
                let mut task = None;
                if let Some(st) = self.thread_mut(thread) {
                    st.exited = true;
                    cleared = st.pending_send.take().is_some();
                    offload_cleared = st.pending_offload.take().is_some();
                    task = Some(st.task);
                }
                if cleared {
                    self.byte_waiters -= 1;
                }
                if offload_cleared {
                    // An abandoned offload counts as timed out: the remote
                    // work (if any) benefits no one, and the stats stay
                    // conserved (accepted = completed + timed_out +
                    // in-flight).
                    self.offload_waiters -= 1;
                    self.offload_stats.timed_out += 1;
                }
                if let Some(task) = task {
                    self.sched.set_state(task, TaskState::Exited);
                }
            }
            Body::Segment { .. } | Body::AddressSpace { .. } | Body::Gate { .. } | Body::Device => {
            }
        }
    }

    // ----- threads ----------------------------------------------------------

    /// Spawns a thread running `program`, drawing from `reserve`, with the
    /// given security identity. Returns its id.
    pub fn spawn(
        &mut self,
        name: &str,
        program: Box<dyn Program>,
        reserve: ReserveId,
        actor: Actor,
    ) -> ThreadId {
        let tid = ThreadId(self.next_thread);
        self.next_thread += 1;
        debug_assert_eq!(tid.0 as usize, self.threads.len() + 1, "dense thread ids");
        let task = self.sched.add_task(name, reserve);
        if self.task_to_thread.len() <= task.index() {
            self.task_to_thread.resize(task.index() + 1, None);
        }
        self.task_to_thread[task.index()] = Some(tid);
        self.threads.push(ThreadState {
            name: name.to_string(),
            task,
            actor,
            program: Some(program),
            pending_compute: SimDuration::ZERO,
            cpu_kind: CpuKind::default(),
            net_result: None,
            msg_inbox: VecDeque::new(),
            pending_send: None,
            bytes_blocked_sends: 0,
            pending_offload: None,
            offload_result: None,
            offload_seq: 0,
            exited: false,
        });
        // Threads are kernel objects too.
        let _ = self.alloc_object(
            name,
            Label::default_label(),
            self.root,
            Body::Thread { thread: tid },
        );
        tid
    }

    /// Spawns with an unprivileged default-label identity.
    pub fn spawn_unprivileged(
        &mut self,
        name: &str,
        program: Box<dyn Program>,
        reserve: ReserveId,
    ) -> ThreadId {
        self.spawn(name, program, reserve, Actor::unprivileged())
    }

    /// A thread's display name.
    pub fn thread_name(&self, tid: ThreadId) -> Option<&str> {
        self.thread(tid).map(|t| t.name.as_str())
    }

    /// All thread ids ever spawned (including exited), in spawn order.
    pub fn thread_ids(&self) -> Vec<ThreadId> {
        self.thread_id_iter().collect()
    }

    /// [`Kernel::thread_ids`] without the allocation (ids are dense).
    pub fn thread_id_iter(&self) -> impl Iterator<Item = ThreadId> + '_ {
        (1..=self.threads.len() as u64).map(ThreadId)
    }

    /// Finds a live thread by name (first match in spawn order).
    pub fn thread_by_name(&self, name: &str) -> Option<ThreadId> {
        self.threads
            .iter()
            .position(|st| st.name == name)
            .map(Self::slot_tid)
    }

    /// Whether the thread has exited.
    pub fn thread_exited(&self, tid: ThreadId) -> bool {
        self.thread(tid).map(|t| t.exited).unwrap_or(true)
    }

    /// The thread's windowed power estimate (the stacked figures' y-axis).
    pub fn thread_power_estimate(&mut self, tid: ThreadId) -> Power {
        let Some(task) = self.thread(tid).map(|t| t.task) else {
            return Power::ZERO;
        };
        let now = self.now;
        self.sched.estimate(task, now)
    }

    /// Total energy ever charged to the thread.
    pub fn thread_consumed(&self, tid: ThreadId) -> Energy {
        self.thread(tid)
            .map(|t| self.sched.consumed(t.task))
            .unwrap_or(Energy::ZERO)
    }

    /// Total time the thread was denied the CPU solely because its active
    /// reserve was empty — the per-device "starvation time" fleet reports
    /// aggregate (throttled quanta × quantum).
    pub fn thread_throttled(&self, tid: ThreadId) -> SimDuration {
        self.thread(tid)
            .map(|t| self.sched.quantum() * self.sched.throttled_quanta(t.task))
            .unwrap_or(SimDuration::ZERO)
    }

    /// The thread's active energy reserve.
    pub fn thread_reserve(&self, tid: ThreadId) -> Option<ReserveId> {
        self.thread_reserve_kind(tid, ResourceKind::Energy)
    }

    /// The thread's active reserve for a kind, if one is attached.
    pub fn thread_reserve_kind(&self, tid: ThreadId, kind: ResourceKind) -> Option<ReserveId> {
        self.thread(tid)
            .and_then(|t| self.sched.reserve_for(t.task, kind))
    }

    /// Attaches (or switches) a thread's active reserve for a kind
    /// (root-shell API; programs use [`Ctx::set_active_reserve_kind`]).
    /// Attaching a `NetworkBytes` reserve puts the thread's sends under
    /// that data plan, enforced online.
    pub fn set_thread_reserve_kind(&mut self, tid: ThreadId, kind: ResourceKind, r: ReserveId) {
        if let Some(t) = self.thread(tid) {
            let task = t.task;
            self.sched.set_reserve_for(task, kind, r);
        }
    }

    /// How many of the thread's sends blocked because its `NetworkBytes`
    /// reserve could not cover them (§9) — observably distinct from energy
    /// throttling ([`Kernel::thread_throttled`]) and from blocking in netd
    /// on pooled energy.
    pub fn thread_bytes_blocked(&self, tid: ThreadId) -> u64 {
        self.thread(tid).map(|t| t.bytes_blocked_sends).unwrap_or(0)
    }

    /// Whether the thread is *currently* blocked on bytes: a send is queued
    /// in the kernel waiting for its data plan to cover it.
    pub fn thread_awaiting_bytes(&self, tid: ThreadId) -> bool {
        self.thread(tid).is_some_and(|t| t.pending_send.is_some())
    }

    /// Terminates a thread: it never runs again (its reserves and taps are
    /// unaffected; delete those separately or via container GC). Any send
    /// it had blocked on bytes dies with it.
    pub fn kill(&mut self, tid: ThreadId) {
        let mut cleared = false;
        let mut offload_cleared = false;
        let mut task = None;
        if let Some(st) = self.thread_mut(tid) {
            st.exited = true;
            st.program = None;
            cleared = st.pending_send.take().is_some();
            offload_cleared = st.pending_offload.take().is_some();
            task = Some(st.task);
        }
        if cleared {
            self.byte_waiters -= 1;
        }
        if offload_cleared {
            // Abandoned = timed out (see `unlink_recursive`).
            self.offload_waiters -= 1;
            self.offload_stats.timed_out += 1;
        }
        if let Some(task) = task {
            self.sched.set_state(task, TaskState::Exited);
        }
    }

    /// Wakes a blocked thread (external control, e.g. experiment scripts).
    pub fn wake(&mut self, tid: ThreadId) {
        if let Some(t) = self.thread(tid) {
            if !t.exited {
                let task = t.task;
                self.sched.set_state(task, TaskState::Ready);
            }
        }
    }

    // ----- run loop ---------------------------------------------------------

    /// Runs the kernel until `end`, then settles the integrators (radio,
    /// meter, flows) to `now` so extraction reads a consistent instant.
    pub fn run_until(&mut self, end: SimTime) {
        self.run_span(end);
        self.advance_radio_metered(self.now);
        self.meter.advance(self.now);
        self.graph.flow_until(self.now);
    }

    /// The run loop without [`Kernel::run_until`]'s settling tail: advances
    /// quantum boundaries up to `end` but leaves the radio, meter, and flow
    /// engine at the last boundary processed.
    ///
    /// This is the chunk-safe entry point. `run_until`'s tail flows the
    /// graph one quantum *ahead* of the loop, so at a chunk boundary it
    /// would integrate that quantum's decay before the boundary's events
    /// are delivered — the opposite order from an unchunked run, and decay
    /// rounding sees different balances. `run_span` leaves the boundary to
    /// the next call's first iteration, so splitting a run into spans
    /// replays the *identical* instruction stream: `run_span(t₁); …;
    /// run_until(t_n)` is bit-equal to `run_until(t_n)` for any grid or
    /// off-grid split points. The fleet's epoch driver runs on this.
    pub fn run_span(&mut self, end: SimTime) {
        let quantum = self.sched.quantum();
        while self.now + quantum <= end {
            let t = self.now;
            self.advance_radio_metered(t);
            self.deliver_events(t);
            self.graph.flow_until(t);
            self.enforce_peripherals(t);
            self.net_poll(t);
            let ran = self.schedule_one(t);
            // Meter the quantum: CPU state + current radio phase.
            self.platform.set_cpu(ran);
            let total = self.platform.total(self.arm9.radio().extra_power());
            self.meter.set_power(t, total);
            self.now = t + quantum;
            if ran.is_none() {
                let jumped = self.config.fast_forward && self.skip_frozen_quanta(end);
                if !jumped && self.config.idle_skip {
                    self.skip_idle_quanta(end);
                }
            }
        }
    }

    /// Jumps `now` over quantum boundaries that provably change nothing:
    /// no thread is Ready (Blocked threads are revived only by queued
    /// events), the net stack has no queued work, and neither an event nor
    /// a radio phase transition falls inside the skipped span.
    ///
    /// The jump lands on the first quantum boundary at or after the
    /// earliest wake source, exactly the boundary where the ordinary loop
    /// would first see it, so results are bit-identical to stepping every
    /// quantum: taps and decay integrate over arbitrary spans in
    /// `flow_until`, and the meter holds the (constant) idle power until
    /// the next `set_power`.
    fn skip_idle_quanta(&mut self, end: SimTime) {
        if self.sched.has_ready() {
            return;
        }
        if self.net.as_ref().is_some_and(|n| !n.is_idle()) {
            // The stack is pooling (netd holding queued sends): quanta are
            // not skippable, but they are *reducible* — only the tick-grid
            // work (flows, net polls) can change anything while the CPU is
            // provably idle.
            self.step_net_busy_quanta(end);
            return;
        }
        // A send blocked on its byte quota is re-checked at every net poll,
        // so quanta are not skippable while a tap may be refilling the
        // plan — or while the plan already covers the send (a link flap
        // can hold covered, even plan-less, sends). A plan with no inbound
        // tap that does not yet cover provably stays uncovered across the
        // span — nothing else runs inside a skipped span, and events only
        // ever *debit* byte reserves — so an exhausted dead-end plan (the
        // mid-hour scenario's tail) does not pin the loop to per-quantum
        // stepping. While the link is down no held send can move at all
        // (polls are no-ops), so waiters never pin a downed span; the
        // queued LinkUp event bounds the jump instead. The `byte_waiters`
        // counter makes the no-waiter common case O(1); with waiters, each
        // plan's inbound check is O(1) off the flow engine's index (no tap
        // scan).
        if self.byte_waiters > 0 && !self.link_down {
            let refillable_waiter = self.threads.iter().any(|t| {
                !t.exited
                    && t.pending_send.is_some_and(|p| {
                        match self.sched.reserve_for(t.task, ResourceKind::NetworkBytes) {
                            Some(plan) => {
                                self.plan_covers(plan, p.tx_bytes, p.rx_bytes)
                                    || self.graph.has_inbound_tap(plan)
                            }
                            None => true,
                        }
                    })
            });
            if refillable_waiter {
                return;
            }
        }
        // An offload waiter's wake is always a queued event — the response
        // delivery or the deadline — so `events.peek_time()` below bounds
        // the jump. An empty event queue with waiters outstanding would
        // strand a blocked thread; refuse to skip rather than trust it.
        if self.offload_waiters > 0 && self.events.peek_time().is_none() {
            return;
        }
        let mut wake = end;
        if let Some(t) = self.events.peek_time() {
            wake = wake.min(t);
        }
        if let Some(t) = self.arm9.radio().next_transition() {
            wake = wake.min(t);
        }
        let quantum = self.sched.quantum();
        let gap = wake.saturating_since(self.now);
        if gap <= quantum {
            return;
        }
        let quantum_us = quantum.as_micros();
        // ceil(gap / quantum), capped so `now` never passes a boundary the
        // ordinary loop would not itself have reached before `end`.
        let to_wake = gap.as_micros().div_ceil(quantum_us);
        let to_end = end.saturating_since(self.now).div_duration(quantum);
        let jump = quantum * to_wake.min(to_end);
        // A lit peripheral is only steady state while its reserve provably
        // funds the whole span; near-empty reserves pin the slow path so
        // the forced shutdown lands on the exact boundary it always would.
        if !self.peripherals_cover_span(jump) {
            return;
        }
        self.now += jump;
        // Every-quantum stepping runs each flow/decay tick at its own
        // boundary, before any event that fires later. The landing
        // iteration delivers events *before* flowing, so ticks the jump
        // passed over must be settled here (nothing else can touch the
        // graph inside the span — that is what made it skippable). The
        // tick grid is a multiple of the quantum grid, so every skipped
        // tick is ≤ the boundary before landing; a tick exactly at the
        // landing boundary stays for the landing iteration, as in the
        // base loop.
        self.graph
            .flow_until(SimTime::from_micros(self.now.as_micros() - quantum_us));
    }

    /// Fast-forwards *frozen* spans — quanta where threads exist but the
    /// device is provably inert. [`Kernel::skip_idle_quanta`] handles the
    /// truly idle device (nothing Ready, stack idle); this handles the two
    /// steady states it cannot: Ready-but-unfundable threads (a drained
    /// battery round-robins the scheduler every quantum forever) and
    /// threads blocked in a pooling stack whose sweeps can no longer
    /// contribute anything. Returns `true` if it jumped.
    ///
    /// The certificate, checked cheapest-first:
    ///
    /// * no lit peripheral (enforcement needs per-quantum funding checks);
    /// * the net stack is idle, or — on a poll grid aligned with the
    ///   quantum grid — certifies its polls replay byte-identically while
    ///   the graph is frozen ([`NetStack::poll_inert_while_frozen`]);
    /// * no byte-blocked send is submittable (a frozen graph keeps an
    ///   uncovered plan uncovered: events only ever debit byte reserves);
    /// * the graph is frozen: no tap can deliver and decay leaks round to
    ///   zero ([`cinder_core::ResourceGraph::flow_is_frozen`]) — so no
    ///   reserve can refill and no Ready task can become fundable;
    /// * no event or radio transition falls inside the span.
    ///
    /// Landing mirrors `skip_idle_quanta` exactly; the one addition is
    /// replaying the scheduler's throttled-quanta accounting in bulk
    /// ([`cinder_core::ResourceScheduler::bulk_throttle`]) — each skipped
    /// boundary would have run one all-throttle `pick_next`, which leaves
    /// the round-robin queue bit-identically unchanged.
    fn skip_frozen_quanta(&mut self, end: SimTime) -> bool {
        if self.enabled_peripherals != 0 {
            return false;
        }
        let radio_active = self.arm9.radio().is_active();
        let radio_next = self.arm9.radio().next_transition();
        if let Some(stack) = &self.net {
            if !(stack.is_idle()
                || self.net_poll_snappable
                    && stack.poll_inert_while_frozen(&self.graph, radio_active, radio_next))
            {
                return false;
            }
        }
        // With the link down nothing is submittable (polls are no-ops) and
        // the LinkUp event bounds the jump; otherwise a held send whose
        // plan covers it — or that has no plan at all (link-flap holds) —
        // would be submitted at the next poll, so the span is not frozen.
        if self.byte_waiters > 0 && !self.link_down {
            let submittable = self.threads.iter().any(|t| {
                !t.exited
                    && t.pending_send.is_some_and(|p| {
                        match self.sched.reserve_for(t.task, ResourceKind::NetworkBytes) {
                            Some(plan) => self.plan_covers(plan, p.tx_bytes, p.rx_bytes),
                            None => true,
                        }
                    })
            });
            if submittable {
                return false;
            }
        }
        // Same offload-waiter invariant as `skip_idle_quanta`: a waiter's
        // wake must be a queued event for the jump bound to see it.
        if self.offload_waiters > 0 && self.events.peek_time().is_none() {
            return false;
        }
        let mut wake = end;
        if let Some(t) = self.events.peek_time() {
            wake = wake.min(t);
        }
        if let Some(t) = radio_next {
            wake = wake.min(t);
        }
        let quantum = self.sched.quantum();
        let gap = wake.saturating_since(self.now);
        if gap <= quantum {
            return false;
        }
        if !self.graph.flow_is_frozen() {
            return false;
        }
        let quantum_us = quantum.as_micros();
        let to_wake = gap.as_micros().div_ceil(quantum_us);
        let to_end = end.saturating_since(self.now).div_duration(quantum);
        let skipped = to_wake.min(to_end);
        // Each skipped boundary's `pick_next` throttles every Ready task
        // (all provably unfundable: the call that just returned `None`
        // proved it, and the frozen graph keeps it true).
        self.sched.bulk_throttle(&self.graph, skipped);
        self.now += quantum * skipped;
        // Settle the skipped flow ticks up to the boundary before landing
        // (see skip_idle_quanta: the landing iteration flows the last one).
        // With the graph frozen this is O(taps): only carries advance.
        self.graph
            .flow_until(SimTime::from_micros(self.now.as_micros() - quantum_us));
        true
    }

    /// Conservatively certifies the longest prefix of `(now, horizon]` in
    /// which provably *nothing* can happen: no thread can run (none Ready,
    /// or every Ready task unfundable under a frozen graph), the net
    /// stack's polls are no-ops, no byte-quota retry can submit, every lit
    /// peripheral stays funded, and no event or radio transition is due.
    /// Returns the first quantum boundary at or after the earliest wake
    /// source (capped at `horizon`), or `None` when nothing beyond the
    /// next quantum is certifiable.
    ///
    /// Read-only and advisory: it composes the same guards the in-loop
    /// fast-forwards (`Kernel::skip_idle_quanta`,
    /// `Kernel::skip_frozen_quanta`) re-verify as they run, so a *steady*
    /// verdict predicts that [`Kernel::run_until`] will cross the span in
    /// O(1) — the fleet driver uses it to classify each device epoch as
    /// steady (closed-form advance) or dynamic (stepped) without
    /// perturbing the kernel.
    pub fn steadiness_probe(&self, horizon: SimTime) -> Option<SimTime> {
        let quantum = self.sched.quantum();
        if self.sched.any_ready_runnable(&self.graph) {
            return None;
        }
        let frozen = self.graph.flow_is_frozen();
        if self.sched.has_ready() && !frozen {
            // A starved Ready thread wakes as soon as a tap refills its
            // reserve — sub-quantum, not certifiable.
            return None;
        }
        let radio_active = self.arm9.radio().is_active();
        let radio_next = self.arm9.radio().next_transition();
        if let Some(stack) = &self.net {
            if !(stack.is_idle()
                || self.net_poll_snappable
                    && frozen
                    && stack.poll_inert_while_frozen(&self.graph, radio_active, radio_next))
            {
                return None;
            }
        }
        // Mirrors the in-loop guards: a downed link makes every held send
        // inert (the LinkUp event bounds the certificate), otherwise a
        // covered — or plan-less — held send submits at the next poll.
        if self.byte_waiters > 0 && !self.link_down {
            let pinned = self.threads.iter().any(|t| {
                !t.exited
                    && t.pending_send.is_some_and(|p| {
                        match self.sched.reserve_for(t.task, ResourceKind::NetworkBytes) {
                            Some(plan) => {
                                self.plan_covers(plan, p.tx_bytes, p.rx_bytes)
                                    || (!frozen && self.graph.has_inbound_tap(plan))
                            }
                            None => true,
                        }
                    })
            });
            if pinned {
                return None;
            }
        }
        // Offload clause: a thread blocked in the `offload` syscall wakes
        // on its response delivery or its deadline, both queued events, so
        // the event bound below already lands the probe on the right
        // boundary. If waiters are outstanding with *no* event queued the
        // wake-schedulability invariant is broken — never certify a span
        // over a thread that cannot be woken.
        if self.offload_waiters > 0 && self.events.peek_time().is_none() {
            return None;
        }
        let mut wake = horizon;
        if let Some(t) = self.events.peek_time() {
            wake = wake.min(t);
        }
        if let Some(t) = radio_next {
            wake = wake.min(t);
        }
        let gap = wake.saturating_since(self.now);
        if gap <= quantum {
            return None;
        }
        let quantum_us = quantum.as_micros();
        let to_wake = gap.as_micros().div_ceil(quantum_us);
        let to_end = horizon.saturating_since(self.now).div_duration(quantum);
        let jump = quantum * to_wake.min(to_end);
        if !self.peripherals_cover_span(jump) {
            return None;
        }
        Some(self.now + jump)
    }

    /// Steps quanta in reduced form while the net stack is busy (pooling)
    /// but the CPU is provably idle: only the flow tick and the net poll
    /// run per quantum. Byte-identical to full stepping because every other
    /// per-quantum action is a proven no-op over the stepped span —
    /// no thread is Ready (the scheduler idles and counts nothing), no
    /// event or radio transition falls inside it (checked per step), and
    /// the metered power is constant (CPU idle, radio phase unchanged), so
    /// the deferred `set_power` integrates identically. The loop stops
    /// *before* consuming any quantum in which the poll woke a thread,
    /// queued a delivery, or touched the radio — the ordinary loop then
    /// replays that boundary, where `flow_until` (time already reached) and
    /// `net_poll` (cadence already satisfied) are no-ops, and completes the
    /// quantum with real scheduling and metering.
    fn step_net_busy_quanta(&mut self, end: SimTime) {
        let quantum = self.sched.quantum();
        while self.now + quantum <= end {
            let t = self.now;
            if self.events.peek_time().is_some_and(|e| e <= t) {
                return;
            }
            let radio_before = self.arm9.radio().next_transition();
            if radio_before.is_some_and(|tt| tt <= t) {
                return;
            }
            self.graph.flow_until(t);
            if self.peripheral_enforcement_due() {
                // A lit peripheral just went unfunded: hand the boundary
                // back before polling, so the full loop replays it —
                // flow_until is a no-op there, enforcement fires at the
                // same instant it would under per-quantum stepping, and
                // the poll then runs on schedule.
                return;
            }
            self.net_poll(t);
            if self.sched.has_ready()
                || self.arm9.radio().next_transition() != radio_before
                || self.net.as_ref().is_none_or(|n| n.is_idle())
            {
                // The poll granted, woke, or drained: hand the boundary
                // back to the full loop (idle-skip may now also apply).
                return;
            }
            self.now = t + quantum;
        }
    }

    /// Advances radio timers up to `to`, updating the meter exactly at each
    /// phase transition.
    fn advance_radio_metered(&mut self, to: SimTime) {
        while let Some(tt) = self.arm9.radio().next_transition() {
            if tt > to {
                break;
            }
            self.arm9.advance_to(tt);
            let total = self.platform.total(self.arm9.radio().extra_power());
            self.meter.set_power(tt, total);
        }
        self.arm9.advance_to(to);
    }

    fn deliver_events(&mut self, t: SimTime) {
        while let Some((_, ev)) = self.events.pop_due(t) {
            match ev {
                KernelEvent::Wake(tid) => self.wake(tid),
                KernelEvent::LinkUp => {
                    // The flap is over. Held sends go back out through the
                    // regular retry path at this boundary's net poll, which
                    // is immediately due (the poll clock did not advance
                    // while the link was down).
                    self.link_down = false;
                }
                KernelEvent::Rx {
                    thread,
                    bytes,
                    bill,
                    bill_bytes,
                    wakes,
                } => {
                    if self.arm9.radio().is_active() {
                        if let Ok(Arm9Response::Radio(out)) =
                            self.arm9
                                .request(t, Arm9Request::RadioDeliver { bytes }, &mut self.rng)
                        {
                            self.meter.add_energy(out.data_energy);
                        }
                    }
                    if let Some(reserve) = bill {
                        let cost = self.config.radio.data_energy(bytes);
                        let _ = self
                            .graph
                            .consume_with_debt(&Actor::kernel(), reserve, cost);
                    }
                    if let Some(plan) = bill_bytes {
                        // §5.5.2's after-the-fact billing applied to the
                        // data plan: received bytes debit the byte reserve
                        // "up to or into debt".
                        let _ = self.graph.consume_with_debt(
                            &Actor::kernel(),
                            plan,
                            quota::bytes(bytes),
                        );
                    }
                    if wakes {
                        // An offload response. If the thread is still
                        // waiting, record the outcome and wake it; if its
                        // deadline already fired (or it died), the bytes
                        // above were still billed — a late response costs
                        // what it costs — but nobody wakes.
                        let mut resolved = None;
                        if let Some(st) = self.thread_mut(thread) {
                            if let Some(pending) = st.pending_offload.take() {
                                let latency = t.since(pending.started_at);
                                st.offload_result = Some(OffloadOutcome::Completed { latency });
                                resolved = Some((latency, (!st.exited).then_some(st.task)));
                            }
                        }
                        if let Some((latency, wake)) = resolved {
                            self.offload_waiters -= 1;
                            self.offload_stats.completed += 1;
                            self.offload_stats.latency_us_sum += latency.as_micros();
                            if let Some(task) = wake {
                                self.sched.set_state(task, TaskState::Ready);
                            }
                        }
                    }
                    // Plain deliveries do not wake the thread.
                }
                KernelEvent::OffloadDeadline { thread, seq } => {
                    let mut expired = None;
                    if let Some(st) = self.thread_mut(thread) {
                        // `seq` disambiguates: a stale deadline from an
                        // earlier, already-resolved offload must not cancel
                        // a newer in-flight one.
                        if st.pending_offload.as_ref().is_some_and(|p| p.seq == seq) {
                            st.pending_offload = None;
                            st.offload_result = Some(OffloadOutcome::TimedOut);
                            expired = Some((!st.exited).then_some(st.task));
                        }
                    }
                    if let Some(wake) = expired {
                        self.offload_waiters -= 1;
                        self.offload_stats.timed_out += 1;
                        if let Some(task) = wake {
                            self.sched.set_state(task, TaskState::Ready);
                        }
                    }
                }
            }
        }
    }

    fn net_poll(&mut self, t: SimTime) {
        if self.net.is_none() && self.byte_waiters == 0 {
            // Nothing a poll could do: no stack to drive, no held sends to
            // re-check. Skipping the cadence bookkeeping too is sound — the
            // poll clock only sequences observable poll work, and the next
            // real poll re-anchors it exactly as the first poll of a run
            // does.
            return;
        }
        if self.link_down {
            // A downed link freezes the whole poll path — no retries, no
            // stack sweep, and (deliberately) no poll-clock advance, so the
            // first poll after LinkUp is immediately due. A no-op poll is
            // what makes link-down quanta skippable.
            return;
        }
        let tick = self.graph.config().flow_tick;
        let due = match self.last_net_poll {
            Some(last) => t.saturating_since(last) >= tick,
            None => true,
        };
        if !due {
            return;
        }
        self.retry_byte_blocked_sends(t);
        // Snap the poll clock to its own grid rather than to `t`: if the
        // idle fast-forward jumped several ticks, the cadence stays aligned
        // with the every-quantum run instead of acquiring a phase shift.
        // Only valid when the tick grid is a refinement of the quantum grid
        // (every tick lands on a schedulable boundary); otherwise keep the
        // historical behaviour of anchoring to `t`. The exact-next-tick
        // case (every poll while the loop steps quantum by quantum) skips
        // the division.
        self.last_net_poll = Some(match self.last_net_poll {
            Some(last) if self.net_poll_snappable => {
                if t == last + tick {
                    t
                } else {
                    last + tick * t.since(last).div_duration(tick)
                }
            }
            _ => t,
        });
        let Some(mut stack) = self.net.take() else {
            return;
        };
        let mut outbox = Vec::new();
        let mut metered = Energy::ZERO;
        let woken = {
            let mut env = NetEnv {
                now: t,
                graph: &mut self.graph,
                arm9: &mut self.arm9,
                rng: &mut self.rng,
                rx_outbox: &mut outbox,
                metered_energy: &mut metered,
            };
            stack.poll(&mut env)
        };
        self.net = Some(stack);
        self.meter.add_energy(metered);
        self.queue_rx(outbox);
        for tid in woken {
            let mut wake = None;
            if let Some(st) = self.thread_mut(tid) {
                st.net_result = Some(NetSendStatus::Sent);
                // An offloading thread whose pooled send just reached the
                // radio is still waiting on the *response*: record that the
                // send went out, but leave the thread blocked until the Rx
                // delivery (or its deadline) wakes it.
                if !st.exited && st.pending_offload.is_none() {
                    wake = Some(st.task);
                }
            }
            if let Some(task) = wake {
                self.sched.set_state(task, TaskState::Ready);
            }
        }
    }

    fn queue_rx(&mut self, outbox: Vec<RxDelivery>) {
        for rx in outbox {
            self.events.schedule(
                rx.at,
                KernelEvent::Rx {
                    thread: rx.thread,
                    bytes: rx.bytes,
                    bill: rx.bill,
                    bill_bytes: rx.bill_bytes,
                    wakes: rx.wakes,
                },
            );
        }
    }

    /// Hands one send request to the installed stack, forwarding its reply
    /// deliveries and metered energy. Shared by the [`Ctx::net_send`]
    /// syscall and the byte-quota retry path.
    fn submit_to_stack(
        &mut self,
        t: SimTime,
        req: SendRequest,
    ) -> Result<SendVerdict, KernelError> {
        let Some(mut stack) = self.net.take() else {
            return Err(KernelError::NoNetwork);
        };
        let mut outbox = Vec::new();
        let mut metered = Energy::ZERO;
        let verdict = {
            let mut env = NetEnv {
                now: t,
                graph: &mut self.graph,
                arm9: &mut self.arm9,
                rng: &mut self.rng,
                rx_outbox: &mut outbox,
                metered_energy: &mut metered,
            };
            stack.request(&mut env, req)
        };
        self.net = Some(stack);
        self.meter.add_energy(metered);
        self.queue_rx(outbox);
        Ok(verdict)
    }

    /// The §9 enforcement point: whether `plan` covers a whole send
    /// (transmit plus the expected reply — a plan must not be committed to
    /// traffic it cannot absorb).
    fn plan_covers(&self, plan: ReserveId, tx_bytes: u64, rx_bytes: u64) -> bool {
        self.graph
            .reserve(plan)
            .is_some_and(|r| r.balance() >= quota::bytes(tx_bytes + rx_bytes))
    }

    /// Re-checks byte-blocked sends (in thread-id order, keeping runs
    /// deterministic): once the plan covers a held request it goes to the
    /// stack — which may still block it on pooled energy (netd), the two
    /// block reasons composing in sequence.
    fn retry_byte_blocked_sends(&mut self, t: SimTime) {
        if self.byte_waiters == 0 {
            return;
        }
        let waiting: Vec<ThreadId> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, st)| st.pending_send.is_some() && !st.exited)
            .map(|(slot, _)| Self::slot_tid(slot))
            .collect();
        for tid in waiting {
            let Some(st) = self.thread(tid) else {
                continue;
            };
            let task = st.task;
            let pending = st.pending_send.expect("filtered on pending_send");
            // A held send without a byte plan exists only after a link
            // flap (link-down holds *every* send); nothing byte-gates it,
            // so it is always coverable once the link is back.
            let plan = self.sched.reserve_for(task, ResourceKind::NetworkBytes);
            if let Some(plan) = plan {
                if !self.plan_covers(plan, pending.tx_bytes, pending.rx_bytes) {
                    continue;
                }
            }
            let Some(reserve) = self.sched.reserve_for(task, ResourceKind::Energy) else {
                continue;
            };
            if let Some(st) = self.thread_mut(tid) {
                if st.pending_send.take().is_some() {
                    self.byte_waiters -= 1;
                }
            }
            let req = SendRequest {
                thread: tid,
                reserve,
                byte_reserve: plan,
                tx_bytes: pending.tx_bytes,
                rx_bytes: pending.rx_bytes,
                extra_delay: SimDuration::ZERO,
                wakes: false,
            };
            match self.submit_to_stack(t, req) {
                Ok(SendVerdict::Sent) => {
                    let mut wake = false;
                    if let Some(st) = self.thread_mut(tid) {
                        st.net_result = Some(NetSendStatus::Sent);
                        wake = !st.exited;
                    }
                    if wake {
                        self.sched.set_state(task, TaskState::Ready);
                    }
                }
                // Queued in the stack (pooling): the stack's poll wakes it.
                Ok(SendVerdict::Blocked) | Err(_) => {}
            }
        }
    }

    /// Picks and runs one thread for the quantum starting at `t`. Returns
    /// the instruction mix of the thread that ran, or `None` if the CPU
    /// idled.
    fn schedule_one(&mut self, t: SimTime) -> Option<CpuKind> {
        let mut attempts = self.threads.len() + 1;
        while attempts > 0 {
            attempts -= 1;
            let task = self.sched.pick_next(&self.graph)?;
            let Some(tid) = self.thread_for_task(task) else {
                continue;
            };
            // If the thread has no CPU work queued, step its program.
            let needs_step = self
                .thread(tid)
                .map(|s| s.pending_compute.is_zero() && !s.exited)
                .unwrap_or(false);
            if needs_step {
                self.run_program(tid, t);
            }
            if self.thread(tid).map(|s| s.exited).unwrap_or(true) {
                continue;
            }
            // Only a program step can have changed the state since
            // `pick_next` verified Ready; skip the re-check otherwise.
            if needs_step && self.sched.state(task) != Some(TaskState::Ready) {
                // The program ran briefly (syscalls) and then blocked or
                // went to sleep: dispatching it still cost CPU time (1 ms,
                // a tenth of a quantum), charged to its reserve — this is
                // exactly the overhead the paper attributes to explicit
                // transfer threads (§3.3).
                let power = self.platform.cpu.accounting_power();
                let dispatch = self.sched.quantum() / 10;
                let _ = self
                    .sched
                    .charge_duration(&mut self.graph, task, t, power, dispatch);
                continue;
            }
            // Run one quantum: consume pending compute (if any) and charge.
            let quantum = self.sched.quantum();
            let kind = {
                let st = self.thread_mut(tid).expect("liveness checked above");
                st.pending_compute = st.pending_compute.saturating_sub(quantum);
                st.cpu_kind
            };
            let power = self.platform.cpu.accounting_power();
            let _ = self.sched.charge(&mut self.graph, task, t, power);
            return Some(kind);
        }
        None
    }

    /// Steps a thread's program until it produces a time-consuming action
    /// (bounded to avoid livelock from pathological programs).
    fn run_program(&mut self, tid: ThreadId, t: SimTime) {
        const MAX_IMMEDIATE_STEPS: usize = 32;
        for _ in 0..MAX_IMMEDIATE_STEPS {
            let Some(mut program) = self.thread_mut(tid).and_then(|s| s.program.take()) else {
                return;
            };
            let step = {
                let mut ctx = Ctx { kernel: self, tid };
                program.step(&mut ctx)
            };
            if let Some(st) = self.thread_mut(tid) {
                st.program = Some(program);
            }
            let Some(st) = self.thread_mut(tid) else {
                return;
            };
            let task = st.task;
            match step {
                Step::Compute { duration, kind } => {
                    st.pending_compute = duration;
                    st.cpu_kind = kind;
                    return;
                }
                Step::SleepUntil(when) => {
                    if when <= t {
                        continue; // already past; re-step
                    }
                    self.sched.set_state(task, TaskState::Blocked);
                    self.events.schedule(when, KernelEvent::Wake(tid));
                    return;
                }
                Step::Yield => return,
                Step::Block => {
                    self.sched.set_state(task, TaskState::Blocked);
                    return;
                }
                Step::Exit => {
                    st.exited = true;
                    st.program = None;
                    let offload_cleared = st.pending_offload.take().is_some();
                    if st.pending_send.take().is_some() {
                        self.byte_waiters -= 1;
                    }
                    if offload_cleared {
                        // Abandoned = timed out (see `unlink_recursive`).
                        self.offload_waiters -= 1;
                        self.offload_stats.timed_out += 1;
                    }
                    self.sched.set_state(task, TaskState::Exited);
                    return;
                }
            }
        }
        // Treat a runaway immediate-step program as yielding.
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("threads", &self.threads.len())
            .field("objects", &self.objects.len())
            .field("graph", &self.graph)
            .finish()
    }
}

/// The syscall surface a [`Program`] sees, bound to its thread's security
/// identity: every operation is checked against the thread's label and
/// privileges, exactly as reserves and taps are protected in the paper
/// (§3.5).
pub struct Ctx<'a> {
    kernel: &'a mut Kernel,
    tid: ThreadId,
}

impl Ctx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// This thread's id.
    pub fn thread_id(&self) -> ThreadId {
        self.tid
    }

    /// The scheduler quantum — the grid retry/backoff helpers align to.
    pub fn quantum(&self) -> SimDuration {
        self.kernel.sched.quantum()
    }

    /// The thread's security identity.
    pub fn actor(&self) -> Actor {
        self.state().actor.clone()
    }

    /// Deterministic randomness for workload noise.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.kernel.rng
    }

    fn state(&self) -> &ThreadState {
        self.kernel.thread(self.tid).expect("ctx thread alive")
    }

    // ----- reserves & taps -------------------------------------------------

    /// The battery's root reserve id.
    pub fn battery(&self) -> ReserveId {
        self.kernel.graph.battery()
    }

    /// This thread's active reserve.
    pub fn active_reserve(&self) -> ReserveId {
        self.kernel
            .sched
            .active_reserve(self.state().task)
            .expect("thread has a reserve")
    }

    /// Switches the active energy reserve (`self_set_active_reserve`,
    /// Fig 5).
    pub fn set_active_reserve(&mut self, reserve: ReserveId) {
        let task = self.state().task;
        self.kernel.sched.set_active_reserve(task, reserve);
    }

    /// This thread's active reserve for a kind, if one is attached.
    pub fn active_reserve_kind(&self, kind: ResourceKind) -> Option<ReserveId> {
        self.kernel.sched.reserve_for(self.state().task, kind)
    }

    /// Attaches (or switches) this thread's active reserve for a kind —
    /// the typed generalisation of `self_set_active_reserve` (§9).
    /// Attaching a [`ResourceKind::NetworkBytes`] reserve puts the thread's
    /// sends under that data plan; attaching a
    /// [`ResourceKind::SmsMessages`] reserve funds [`Ctx::sms_send`].
    pub fn set_active_reserve_kind(&mut self, kind: ResourceKind, reserve: ReserveId) {
        let task = self.state().task;
        self.kernel.sched.set_reserve_for(task, kind, reserve);
    }

    /// Creates a reserve (label-checked).
    pub fn create_reserve(&mut self, name: &str, label: Label) -> Result<ReserveId, KernelError> {
        let actor = self.actor();
        Ok(self.kernel.graph.create_reserve(&actor, name, label)?)
    }

    /// Creates a tap (label-checked; the actor's privileges are embedded).
    pub fn create_tap(
        &mut self,
        name: &str,
        source: ReserveId,
        sink: ReserveId,
        rate: RateSpec,
        tap_label: Label,
    ) -> Result<TapId, KernelError> {
        let actor = self.actor();
        Ok(self
            .kernel
            .graph
            .create_tap(&actor, name, source, sink, rate, tap_label)?)
    }

    /// Changes a tap's rate (requires modify on the tap's label — the task
    /// manager's lever, §5.4).
    pub fn set_tap_rate(&mut self, tap: TapId, rate: RateSpec) -> Result<(), KernelError> {
        let actor = self.actor();
        Ok(self.kernel.graph.set_tap_rate(&actor, tap, rate)?)
    }

    /// Deletes a tap.
    pub fn delete_tap(&mut self, tap: TapId) -> Result<(), KernelError> {
        let actor = self.actor();
        Ok(self.kernel.graph.delete_tap(&actor, tap)?)
    }

    /// Reads a reserve level (requires observe).
    pub fn level(&self, reserve: ReserveId) -> Result<Energy, KernelError> {
        let actor = self.state().actor.clone();
        Ok(self.kernel.graph.level(&actor, reserve)?)
    }

    /// Transfers between reserves (requires use of source, modify of sink).
    pub fn transfer(
        &mut self,
        from: ReserveId,
        to: ReserveId,
        amount: Energy,
    ) -> Result<(), KernelError> {
        let actor = self.actor();
        Ok(self.kernel.graph.transfer(&actor, from, to, amount)?)
    }

    /// Consumes from a reserve, failing if short.
    pub fn consume(&mut self, reserve: ReserveId, amount: Energy) -> Result<(), KernelError> {
        let actor = self.actor();
        Ok(self.kernel.graph.consume(&actor, reserve, amount)?)
    }

    /// Consumes, permitting debt (after-the-fact billing, §5.5.2).
    pub fn consume_with_debt(
        &mut self,
        reserve: ReserveId,
        amount: Energy,
    ) -> Result<(), KernelError> {
        let actor = self.actor();
        Ok(self
            .kernel
            .graph
            .consume_with_debt(&actor, reserve, amount)?)
    }

    // ----- threads -----------------------------------------------------------

    /// Spawns a child thread drawing from `reserve`, inheriting this
    /// thread's security identity (fork + exec of Fig 5's `energywrap`).
    pub fn spawn(&mut self, name: &str, program: Box<dyn Program>, reserve: ReserveId) -> ThreadId {
        let actor = self.actor();
        self.kernel.spawn(name, program, reserve, actor)
    }

    /// Wakes another thread (cooperative synchronisation).
    pub fn wake(&mut self, tid: ThreadId) {
        self.kernel.wake(tid);
    }

    // ----- IPC -----------------------------------------------------------------

    /// Calls a gate: the *calling thread* executes the service's code, so
    /// the gate's CPU work lands on this thread's pending compute, billed to
    /// its own active reserve — delegation-correct billing for free
    /// (§5.5.1). Requires observe on the gate's label.
    pub fn gate_call(&mut self, gate: ObjectId) -> Result<(), KernelError> {
        let actor = self.state().actor.clone();
        let obj = self
            .kernel
            .objects
            .get(&gate)
            .ok_or(KernelError::NoSuchObject)?;
        let Body::Gate { work } = obj.body() else {
            return Err(KernelError::WrongObjectKind);
        };
        if !actor.is_kernel() && !actor.label().can_observe(actor.privs(), obj.label()) {
            return Err(KernelError::Denied { op: "gate_call" });
        }
        let work = *work;
        let st = self
            .kernel
            .thread_mut(self.tid)
            .ok_or(KernelError::NoSuchThread)?;
        st.pending_compute += work;
        Ok(())
    }

    /// Message-passing IPC (the Cinder-Linux ablation, §7.1): asks a daemon
    /// thread to do `work` of CPU. The work is billed to the *daemon's*
    /// reserve — the misattribution the paper explains gates avoid.
    pub fn msg_send(&mut self, daemon: ThreadId, work: SimDuration) -> Result<(), KernelError> {
        let st = self
            .kernel
            .thread_mut(daemon)
            .ok_or(KernelError::NoSuchThread)?;
        st.msg_inbox.push_back(work);
        let wake = (!st.exited).then_some(st.task);
        if let Some(task) = wake {
            self.kernel.sched.set_state(task, TaskState::Ready);
        }
        Ok(())
    }

    /// Takes the next queued message-work item (daemon side of
    /// [`Ctx::msg_send`]).
    pub fn msg_take(&mut self) -> Option<SimDuration> {
        self.kernel
            .thread_mut(self.tid)
            .and_then(|s| s.msg_inbox.pop_front())
    }

    // ----- network ----------------------------------------------------------

    /// Requests a network send of `tx_bytes`, expecting `rx_bytes` back.
    ///
    /// If the thread carries a [`ResourceKind::NetworkBytes`] reserve, the
    /// send is gated on the plan covering `tx + rx` bytes *before* the
    /// stack sees it: an uncovered send blocks — without being charged a
    /// byte or a joule of radio energy — until taps refill the plan
    /// (blocked-on-bytes, re-checked each net poll). Covered sends debit
    /// the plan per transmitted byte at the radio and bill reply bytes on
    /// delivery.
    ///
    /// Returns [`NetSendStatus::Blocked`] if the send was held on bytes or
    /// queued by the stack (insufficient pooled energy); the program should
    /// then return [`Step::Block`] and, on wake, call
    /// [`Ctx::net_take_result`].
    pub fn net_send(&mut self, tx_bytes: u64, rx_bytes: u64) -> Result<NetSendStatus, KernelError> {
        if self.kernel.net.is_none() {
            return Err(KernelError::NoNetwork);
        }
        if self.kernel.link_down {
            // A flap holds *every* send in the kernel, plan or no plan —
            // the same holding pen as blocked-on-bytes, released by the
            // same retry path once the link returns. Nothing is billed.
            let st = self
                .kernel
                .thread_mut(self.tid)
                .ok_or(KernelError::NoSuchThread)?;
            let was_waiting = st.pending_send.replace(PendingSend { tx_bytes, rx_bytes });
            if was_waiting.is_none() {
                self.kernel.byte_waiters += 1;
            }
            self.kernel.faults.link_blocked_sends += 1;
            return Ok(NetSendStatus::Blocked);
        }
        let reserve = self.active_reserve();
        let byte_reserve = self.active_reserve_kind(ResourceKind::NetworkBytes);
        if let Some(plan) = byte_reserve {
            if !self.kernel.plan_covers(plan, tx_bytes, rx_bytes) {
                let st = self
                    .kernel
                    .thread_mut(self.tid)
                    .ok_or(KernelError::NoSuchThread)?;
                let was_waiting = st.pending_send.replace(PendingSend { tx_bytes, rx_bytes });
                st.bytes_blocked_sends += 1;
                if was_waiting.is_none() {
                    self.kernel.byte_waiters += 1;
                }
                return Ok(NetSendStatus::Blocked);
            }
        }
        let req = SendRequest {
            thread: self.tid,
            reserve,
            byte_reserve,
            tx_bytes,
            rx_bytes,
            extra_delay: SimDuration::ZERO,
            wakes: false,
        };
        let now = self.kernel.now;
        Ok(match self.kernel.submit_to_stack(now, req)? {
            SendVerdict::Sent => NetSendStatus::Sent,
            SendVerdict::Blocked => NetSendStatus::Blocked,
        })
    }

    /// Takes the completion notice of a previously blocked send.
    pub fn net_take_result(&mut self) -> Option<NetSendStatus> {
        self.kernel
            .thread_mut(self.tid)
            .and_then(|s| s.net_result.take())
    }

    /// Withdraws this thread's *kernel-held* pending send (blocked on
    /// bytes or on a link flap), if any. Returns `true` if a send was
    /// cancelled; `false` means nothing was kernel-held — either no send
    /// is outstanding or the stack already owns it (netd pooling), in
    /// which case the caller keeps waiting. The retry helpers' give-up
    /// path: a poller that has exhausted its backoff budget abandons the
    /// poll instead of wedging until the plan refills or the link heals.
    pub fn net_cancel_pending(&mut self) -> bool {
        let cancelled = self
            .kernel
            .thread_mut(self.tid)
            .is_some_and(|st| st.pending_send.take().is_some());
        if cancelled {
            self.kernel.byte_waiters -= 1;
        }
        cancelled
    }

    /// Sends `messages` SMS messages against the thread's
    /// [`ResourceKind::SmsMessages`] reserve (§9), debiting the quota
    /// online. Fails without side effects if no SMS reserve is attached or
    /// the quota cannot cover the batch.
    pub fn sms_send(&mut self, messages: u64) -> Result<(), KernelError> {
        let Some(reserve) = self.active_reserve_kind(ResourceKind::SmsMessages) else {
            return Err(KernelError::NoReserveForKind {
                kind: ResourceKind::SmsMessages,
            });
        };
        let actor = self.actor();
        Ok(self
            .kernel
            .graph
            .consume_typed(&actor, reserve, Quantity::sms_messages(messages))?)
    }

    // ----- offload -----------------------------------------------------------

    /// Ships a work item to the installed offload backend: the request and
    /// response bytes travel over the network stack (billed exactly like
    /// [`Ctx::net_send`] traffic — radio energy through the episode
    /// machinery, bytes against the data plan), and the thread blocks until
    /// the response lands or `req.deadline` expires.
    ///
    /// Fails fast into local execution ([`OffloadStatus::Rejected`], with
    /// nothing billed) when the data plan cannot cover the round trip or
    /// the backend's queue is full. On [`OffloadStatus::Sent`] the program
    /// returns [`Step::Block`] and, on wake, reads the
    /// [`OffloadOutcome`] via [`Ctx::offload_take_result`] — `Completed`
    /// means the remote result arrived in time, `TimedOut` means the
    /// deadline fired first and the caller should compute locally (the
    /// late response still bills its bytes on delivery, but wakes no one).
    ///
    /// A send the stack *queues* (netd pooling energy for a radio
    /// power-up) still counts as sent: the thread waits for the response
    /// with the deadline bounding the wait, exactly as if the transmit had
    /// happened immediately.
    pub fn offload(&mut self, req: OffloadRequest) -> Result<OffloadStatus, KernelError> {
        if self.kernel.offload.is_none() {
            return Err(KernelError::NoOffload);
        }
        if self.kernel.net.is_none() {
            return Err(KernelError::NoNetwork);
        }
        self.kernel.offload_stats.attempts += 1;
        if self.kernel.link_down {
            // No link, no backend: fail fast into local execution rather
            // than holding the caller against its deadline.
            self.kernel.offload_stats.rejected += 1;
            self.kernel.faults.link_rejected_offloads += 1;
            return Ok(OffloadStatus::Rejected);
        }
        let reserve = self.active_reserve();
        let byte_reserve = self.active_reserve_kind(ResourceKind::NetworkBytes);
        // Unlike net_send, an uncovered offload does not block on bytes:
        // the caller wants an answer by a deadline, so an exhausted plan
        // means compute locally, now.
        if let Some(plan) = byte_reserve {
            if !self.kernel.plan_covers(plan, req.tx_bytes, req.rx_bytes) {
                self.kernel.offload_stats.rejected += 1;
                return Ok(OffloadStatus::Rejected);
            }
        }
        let now = self.kernel.now;
        let mut backend = self.kernel.offload.take().expect("checked above");
        let verdict = backend.admit(now, &req);
        self.kernel.offload = Some(backend);
        let response_delay = match verdict {
            OffloadVerdict::Admitted { response_delay } => response_delay,
            OffloadVerdict::Rejected => {
                self.kernel.offload_stats.rejected += 1;
                return Ok(OffloadStatus::Rejected);
            }
        };
        let send = SendRequest {
            thread: self.tid,
            reserve,
            byte_reserve,
            tx_bytes: req.tx_bytes,
            rx_bytes: req.rx_bytes,
            extra_delay: response_delay,
            wakes: true,
        };
        // Sent and Blocked both leave the thread waiting on the response;
        // a pooled send goes out when netd's pool fills (the poll's wake
        // records net_result without readying an offload waiter), and the
        // deadline event bounds the wait either way.
        let _ = self.kernel.submit_to_stack(now, send)?;
        let st = self
            .kernel
            .thread_mut(self.tid)
            .ok_or(KernelError::NoSuchThread)?;
        st.offload_seq += 1;
        let seq = st.offload_seq;
        st.pending_offload = Some(PendingOffload {
            started_at: now,
            seq,
        });
        st.offload_result = None;
        self.kernel.offload_waiters += 1;
        self.kernel.offload_stats.accepted += 1;
        self.kernel.events.schedule(
            now + req.deadline,
            KernelEvent::OffloadDeadline {
                thread: self.tid,
                seq,
            },
        );
        Ok(OffloadStatus::Sent)
    }

    /// Takes the outcome of a previously sent offload (call on wake after
    /// [`Ctx::offload`] returned [`OffloadStatus::Sent`]).
    pub fn offload_take_result(&mut self) -> Option<OffloadOutcome> {
        self.kernel
            .thread_mut(self.tid)
            .and_then(|s| s.offload_result.take())
    }

    /// The live backend latency estimate (queue wait plus service) a
    /// request admitted now would observe — the signal the break-even
    /// policy reads. `None` when no backend is installed.
    pub fn offload_latency_estimate(&self) -> Option<SimDuration> {
        let now = self.kernel.now;
        self.kernel
            .offload
            .as_ref()
            .map(|b| b.latency_estimate(now))
    }

    /// What the radio would charge to move `bytes` right now: a full
    /// activation episode if idle, a plateau extension if already up, plus
    /// the per-byte data energy. The remote-cost side of the break-even
    /// comparison.
    pub fn radio_cost_estimate(&self, bytes: u64) -> Energy {
        self.kernel
            .arm9
            .radio()
            .cost_estimate(self.kernel.now, bytes)
    }

    /// The flat accounting power the kernel charges for CPU work — the
    /// local-cost side of the break-even comparison (local joules =
    /// accounting power × remaining work).
    pub fn cpu_accounting_power(&self) -> Power {
        self.kernel.platform.cpu.accounting_power()
    }

    // ----- devices -----------------------------------------------------------

    /// Turns the backlight on/off (+555 mW) as a *raw platform poke*: no
    /// reserve funds the draw and nothing ever forces it off. The gated
    /// path — the one fleet workloads use — is
    /// [`Ctx::peripheral_acquire`]/[`Ctx::peripheral_enable`] with
    /// [`PeripheralKind::Backlight`].
    pub fn set_backlight(&mut self, on: bool) {
        self.kernel.platform.display.set_backlight(on);
    }

    /// Dedicates `reserve` to funding a peripheral (label-checked: the
    /// actor must hold observe on the reserve). The Cinder precondition
    /// for [`Ctx::peripheral_enable`].
    pub fn peripheral_acquire(
        &mut self,
        kind: PeripheralKind,
        reserve: ReserveId,
    ) -> Result<(), KernelError> {
        let actor = self.actor();
        self.kernel.peripheral_acquire_as(&actor, kind, reserve)
    }

    /// The control check shared by enable/disable/set_drive: a peripheral
    /// is controlled through its acquired reserve, so the caller needs the
    /// §3.5 reserve-*use* rights (observe and modify) on that reserve's
    /// label — otherwise any thread could kill another's fix or re-rate a
    /// drain it has no rights to.
    fn check_peripheral_control(
        &self,
        kind: PeripheralKind,
        op: &'static str,
    ) -> Result<(), KernelError> {
        let Some(reserve) = self.kernel.peripheral_reserve(kind) else {
            return Ok(()); // nothing acquired: nothing to protect
        };
        let Some(r) = self.kernel.graph.reserve(reserve) else {
            return Ok(());
        };
        let actor = &self.state().actor;
        if !actor.is_kernel() && !actor.label().can_use(actor.privs(), r.label()) {
            return Err(KernelError::Denied { op });
        }
        Ok(())
    }

    /// Lights the peripheral: its acquired reserve must fund at least one
    /// quantum of draw, and from here on the kernel drains the draw from
    /// that reserve every flow tick — an empty reserve forces the
    /// peripheral back down. Requires modify on the acquired reserve.
    pub fn peripheral_enable(&mut self, kind: PeripheralKind) -> Result<(), KernelError> {
        self.check_peripheral_control(kind, "peripheral_enable")?;
        self.kernel.peripheral_enable(kind)
    }

    /// Powers the peripheral down (idempotent); residual energy stays in
    /// the acquired reserve. Requires modify on the acquired reserve.
    pub fn peripheral_disable(&mut self, kind: PeripheralKind) -> Result<(), KernelError> {
        self.check_peripheral_control(kind, "peripheral_disable")?;
        self.kernel.peripheral_disable(kind);
        Ok(())
    }

    /// Whether the peripheral is currently lit — a program sleeping
    /// through a GPS fix checks this on wake to learn whether the kernel
    /// forced its receiver down mid-fix.
    pub fn peripheral_enabled(&self, kind: PeripheralKind) -> bool {
        self.kernel.peripheral_enabled(kind)
    }

    /// Sets the peripheral's drive level (ppm of full draw): dim the
    /// backlight or drop the GPS to a low-power tracking mode, re-rating
    /// the drain tap and the metered draw together. Requires modify on
    /// the acquired reserve.
    pub fn peripheral_set_drive(
        &mut self,
        kind: PeripheralKind,
        ppm: u64,
    ) -> Result<(), KernelError> {
        self.check_peripheral_control(kind, "peripheral_set_drive")?;
        self.kernel.peripheral_set_drive(kind, ppm)
    }

    /// The peripheral's current draw while lit (full power × drive).
    pub fn peripheral_drain_power(&self, kind: PeripheralKind) -> Power {
        self.kernel.peripheral_drain_power(kind)
    }

    /// Reads the battery percentage through the ARM9 (0–100).
    pub fn battery_percent(&mut self) -> u8 {
        let remaining = self
            .kernel
            .graph
            .reserve(self.kernel.graph.battery())
            .map(|r| r.balance())
            .unwrap_or(Energy::ZERO);
        match self.kernel.arm9.request(
            self.kernel.now,
            Arm9Request::BatteryLevel { remaining },
            &mut self.kernel.rng,
        ) {
            Ok(Arm9Response::BatteryLevel(pct)) => pct,
            _ => 0,
        }
    }

    /// Downloads `bytes` over the laptop NIC (§6.2's platform), charging
    /// the active reserve. Fails with the graph's `InsufficientResources`
    /// if the reserve cannot cover it — the stall of Fig 10.
    pub fn download(&mut self, bytes: u64) -> Result<DownloadGrant, KernelError> {
        let nic = self.kernel.config.laptop.ok_or(KernelError::NoLaptopNic)?;
        let cost = nic.download_energy(bytes);
        let reserve = self.active_reserve();
        let actor = self.actor();
        self.kernel.graph.consume(&actor, reserve, cost)?;
        self.kernel.meter.add_energy(cost);
        Ok(DownloadGrant {
            duration: nic.download_duration(bytes),
            energy: cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FnProgram;

    fn kernel_no_decay() -> Kernel {
        Kernel::new(KernelConfig {
            graph: GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
            ..KernelConfig::default()
        })
    }

    fn funded_reserve(k: &mut Kernel, name: &str, joules: i64) -> ReserveId {
        let battery = k.battery();
        let r = k
            .graph_mut()
            .create_reserve(&Actor::kernel(), name, Label::default_label())
            .unwrap();
        k.graph_mut()
            .transfer(&Actor::kernel(), battery, r, Energy::from_joules(joules))
            .unwrap();
        r
    }

    /// A program that spins forever.
    fn spinner() -> Box<dyn Program> {
        Box::new(FnProgram(|_ctx: &mut Ctx<'_>| {
            Step::compute(SimDuration::from_secs(1))
        }))
    }

    #[test]
    fn spinner_consumes_cpu_power() {
        let mut k = kernel_no_decay();
        let r = funded_reserve(&mut k, "r", 100);
        let t = k.spawn_unprivileged("spin", spinner(), r);
        k.run_until(SimTime::from_secs(10));
        // 137 mW for 10 s = 1.37 J charged.
        let consumed = k.thread_consumed(t);
        assert_eq!(consumed, Energy::from_millijoules(1_370));
        let est = k.thread_power_estimate(t).as_milliwatts_f64();
        assert!((est - 137.0).abs() < 3.0, "estimate {est}");
        assert!(k.graph().totals().conserved());
    }

    #[test]
    fn meter_sees_idle_plus_cpu() {
        let mut k = kernel_no_decay();
        let r = funded_reserve(&mut k, "r", 100);
        k.spawn_unprivileged("spin", spinner(), r);
        k.run_until(SimTime::from_secs(10));
        // 699 idle + 137 busy = 836 mW for 10 s = 8.36 J.
        assert_eq!(k.meter().total_energy(), Energy::from_millijoules(8_360));
    }

    #[test]
    fn idle_kernel_draws_baseline() {
        let mut k = kernel_no_decay();
        k.run_until(SimTime::from_secs(5));
        assert_eq!(k.meter().total_energy(), Energy::from_millijoules(3_495));
    }

    #[test]
    fn starved_thread_cannot_run() {
        let mut k = kernel_no_decay();
        let r = k
            .graph_mut()
            .create_reserve(&Actor::kernel(), "empty", Label::default_label())
            .unwrap();
        let t = k.spawn_unprivileged("starved", spinner(), r);
        k.run_until(SimTime::from_secs(5));
        assert_eq!(k.thread_consumed(t), Energy::ZERO);
        // CPU idled: baseline energy only.
        assert_eq!(k.meter().total_energy(), Energy::from_millijoules(3_495));
    }

    #[test]
    fn tap_throttles_thread_to_duty_cycle() {
        let mut k = kernel_no_decay();
        let r = k
            .graph_mut()
            .create_reserve(&Actor::kernel(), "half", Label::default_label())
            .unwrap();
        let battery = k.battery();
        k.graph_mut()
            .create_tap(
                &Actor::kernel(),
                "68.5mW",
                battery,
                r,
                RateSpec::constant(Power::from_microwatts(68_500)),
                Label::default_label(),
            )
            .unwrap();
        let t = k.spawn_unprivileged("spin", spinner(), r);
        k.run_until(SimTime::from_secs(30));
        // ~50% duty at 137 mW ⇒ ~68.5 mW effective.
        let est = k.thread_power_estimate(t).as_milliwatts_f64();
        assert!((est - 68.5).abs() < 7.0, "estimate {est}");
    }

    #[test]
    fn sleeping_thread_wakes_on_time() {
        let mut k = kernel_no_decay();
        let r = funded_reserve(&mut k, "r", 10);
        let mut slept = false;
        let t = k.spawn_unprivileged(
            "sleeper",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                if !slept {
                    slept = true;
                    Step::SleepUntil(ctx.now() + SimDuration::from_secs(5))
                } else {
                    Step::Exit
                }
            })),
            r,
        );
        k.run_until(SimTime::from_secs(4));
        assert!(!k.thread_exited(t));
        k.run_until(SimTime::from_secs(6));
        assert!(k.thread_exited(t));
    }

    #[test]
    fn exited_threads_stop_consuming() {
        let mut k = kernel_no_decay();
        let r = funded_reserve(&mut k, "r", 10);
        let mut steps = 0;
        let t = k.spawn_unprivileged(
            "brief",
            Box::new(FnProgram(move |_ctx: &mut Ctx<'_>| {
                steps += 1;
                if steps == 1 {
                    Step::compute(SimDuration::from_millis(100))
                } else {
                    Step::Exit
                }
            })),
            r,
        );
        k.run_until(SimTime::from_secs(2));
        let after_exit = k.thread_consumed(t);
        k.run_until(SimTime::from_secs(4));
        assert_eq!(k.thread_consumed(t), after_exit);
        assert!(k.thread_exited(t));
    }

    #[test]
    fn fork_child_with_subdivided_reserve() {
        // The Fig 9 shape: a parent subdivides its power to a child.
        let mut k = kernel_no_decay();
        let parent_r = funded_reserve(&mut k, "parent", 100);
        let mut forked = false;
        let parent = k.spawn_unprivileged(
            "parent",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                if !forked {
                    forked = true;
                    let child_r = ctx
                        .create_reserve("child-r", Label::default_label())
                        .unwrap();
                    ctx.transfer(ctx.active_reserve(), child_r, Energy::from_joules(50))
                        .unwrap();
                    ctx.spawn(
                        "child",
                        Box::new(FnProgram(|_: &mut Ctx<'_>| {
                            Step::compute(SimDuration::from_secs(1))
                        })),
                        child_r,
                    );
                }
                Step::compute(SimDuration::from_secs(1))
            })),
            parent_r,
        );
        k.run_until(SimTime::from_secs(10));
        // Both spin; each gets ~50% of the CPU.
        let p = k.thread_power_estimate(parent).as_milliwatts_f64();
        assert!((p - 68.5).abs() < 8.0, "parent estimate {p}");
        assert!(k.graph().totals().conserved());
    }

    #[test]
    fn gate_call_bills_the_caller() {
        let mut k = kernel_no_decay();
        let caller_r = funded_reserve(&mut k, "caller-r", 100);
        let daemon_r = funded_reserve(&mut k, "daemon-r", 100);
        let root = k.root_container();
        let gate = k
            .create_gate(
                root,
                "netd-gate",
                Label::default_label(),
                SimDuration::from_millis(500),
            )
            .unwrap();
        let mut called = false;
        let caller = k.spawn_unprivileged(
            "caller",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                if !called {
                    called = true;
                    ctx.gate_call(gate).unwrap();
                    Step::Yield
                } else {
                    Step::Exit
                }
            })),
            caller_r,
        );
        k.run_until(SimTime::from_secs(2));
        // 500 ms of gate work at 137 mW ≈ 68.5 mJ billed to the caller…
        let caller_consumed = k.thread_consumed(caller).as_microjoules();
        assert!(
            (60_000..80_000).contains(&caller_consumed),
            "caller consumed {caller_consumed}"
        );
        // …and none of it to the daemon's reserve.
        assert_eq!(
            k.graph().reserve(daemon_r).unwrap().stats().consumed,
            Energy::ZERO
        );
    }

    #[test]
    fn msg_ipc_bills_the_daemon_misattribution() {
        // §7.1: message-passing IPC misattributes work to the daemon.
        let mut k = kernel_no_decay();
        let caller_r = funded_reserve(&mut k, "caller-r", 100);
        let daemon_r = funded_reserve(&mut k, "daemon-r", 100);
        let daemon = k.spawn_unprivileged(
            "daemon",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| match ctx.msg_take() {
                Some(work) => Step::compute(work),
                None => Step::Block,
            })),
            daemon_r,
        );
        let mut sent = false;
        k.spawn_unprivileged(
            "client",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                if !sent {
                    sent = true;
                    ctx.msg_send(daemon, SimDuration::from_millis(500)).unwrap();
                }
                Step::Exit
            })),
            caller_r,
        );
        k.run_until(SimTime::from_secs(2));
        let daemon_consumed = k.graph().reserve(daemon_r).unwrap().stats().consumed;
        let caller_consumed = k.graph().reserve(caller_r).unwrap().stats().consumed;
        // The daemon paid for the client's work; the client paid (at most)
        // its single dispatch quantum.
        assert!(daemon_consumed.as_microjoules() >= 60_000);
        assert!(caller_consumed.as_microjoules() <= 2_000);
    }

    #[test]
    fn container_gc_revokes_taps() {
        // §5.2: per-page taps die with their container.
        let mut k = kernel_no_decay();
        let root = k.root_container();
        let page = k
            .create_container(root, "page", Label::default_label())
            .unwrap();
        let (_, plugin_r) = k
            .create_reserve_in(page, "plugin-r", Label::default_label())
            .unwrap();
        let battery = k.battery();
        let (_, _tap) = k
            .create_tap_in(
                page,
                "page-tap",
                battery,
                plugin_r,
                RateSpec::constant(Power::from_milliwatts(70)),
                Label::default_label(),
            )
            .unwrap();
        assert_eq!(k.graph().tap_count(), 1);
        assert_eq!(k.graph().reserve_count(), 2);
        k.unlink(page).unwrap();
        assert_eq!(k.graph().tap_count(), 0);
        assert_eq!(k.graph().reserve_count(), 1); // battery only
        assert!(k.object(page).is_none());
        assert!(k.graph().totals().conserved());
    }

    #[test]
    fn unlink_root_is_refused() {
        let mut k = kernel_no_decay();
        let root = k.root_container();
        assert!(matches!(k.unlink(root), Err(KernelError::Denied { .. })));
    }

    #[test]
    fn laptop_download_charges_reserve() {
        let mut k = Kernel::new(KernelConfig {
            graph: GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
            laptop: Some(LaptopNet::t60p()),
            ..KernelConfig::default()
        });
        let r = funded_reserve(&mut k, "dl", 1);
        let mut downloaded = None;
        let t = k.spawn_unprivileged(
            "viewer",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                if downloaded.is_none() {
                    downloaded = Some(ctx.download(1_048_576).unwrap());
                }
                Step::Exit
            })),
            r,
        );
        k.run_until(SimTime::from_secs(1));
        assert!(k.thread_exited(t));
        // 1 MiB at 76 µJ/KiB = 77.8 mJ (plus the scheduling quantum).
        let consumed = k.graph().reserve(r).unwrap().stats().consumed;
        assert!(
            (77_000..81_000).contains(&consumed.as_microjoules()),
            "consumed {consumed}"
        );
    }

    #[test]
    fn download_without_nic_fails() {
        let mut k = kernel_no_decay();
        let r = funded_reserve(&mut k, "r", 1);
        k.spawn_unprivileged(
            "viewer",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                assert!(matches!(ctx.download(100), Err(KernelError::NoLaptopNic)));
                Step::Exit
            })),
            r,
        );
        k.run_until(SimTime::from_secs(1));
    }

    #[test]
    fn labels_enforced_through_ctx() {
        let mut k = kernel_no_decay();
        let cat = k.alloc_category();
        let secret = Label::with(&[(cat, cinder_label::Level::L3)]);
        let protected = k
            .graph_mut()
            .create_reserve(&Actor::kernel(), "protected", secret)
            .unwrap();
        let battery = k.battery();
        k.graph_mut()
            .transfer(&Actor::kernel(), battery, protected, Energy::from_joules(5))
            .unwrap();
        let r = funded_reserve(&mut k, "mine", 1);
        let battery = k.battery();
        k.spawn_unprivileged(
            "snoop",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                // Cannot observe the protected reserve…
                assert!(matches!(
                    ctx.level(protected),
                    Err(KernelError::Graph(
                        cinder_core::GraphError::PermissionDenied { .. }
                    ))
                ));
                // …nor steal from it…
                assert!(ctx
                    .transfer(protected, ctx.active_reserve(), Energy::from_joules(1))
                    .is_err());
                // …nor tap it.
                assert!(ctx
                    .create_tap(
                        "steal",
                        protected,
                        ctx.active_reserve(),
                        RateSpec::constant(Power::from_watts(1)),
                        Label::default_label(),
                    )
                    .is_err());
                // But its own reserve works fine.
                assert!(ctx.level(ctx.active_reserve()).is_ok());
                let _ = battery;
                Step::Exit
            })),
            r,
        );
        k.run_until(SimTime::from_secs(1));
    }

    #[test]
    fn battery_percent_via_arm9() {
        let mut k = kernel_no_decay();
        let r = funded_reserve(&mut k, "r", 1);
        k.spawn_unprivileged(
            "reader",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                let pct = ctx.battery_percent();
                assert!(pct >= 99, "battery {pct}%");
                Step::Exit
            })),
            r,
        );
        k.run_until(SimTime::from_secs(1));
    }

    #[test]
    fn run_until_is_deterministic() {
        let run = |seed| {
            let mut k = Kernel::new(KernelConfig {
                seed,
                graph: GraphConfig {
                    decay: None,
                    ..GraphConfig::default()
                },
                ..KernelConfig::default()
            });
            let r = funded_reserve(&mut k, "r", 10);
            k.spawn_unprivileged("spin", spinner(), r);
            k.run_until(SimTime::from_secs(20));
            k.meter().total_energy().as_microjoules()
        };
        assert_eq!(run(7), run(7));
    }
}
