//! Reserve-gated peripherals: the backlight and the GPS as first-class
//! Cinder devices.
//!
//! The paper measures the Dream's 555 mW backlight (§4.2) and names the
//! GPS among the "most energy hungry, dynamic, and informative components"
//! (§4.1); this layer puts both under the reserve/tap model instead of
//! leaving them as raw platform pokes:
//!
//! * a thread **acquires** a peripheral by dedicating an energy reserve to
//!   it (typically fed by a tap from the battery);
//! * **enabling** the peripheral lights the hardware *and* installs a
//!   kernel drain tap from that reserve into a decay-exempt accounting
//!   sink, so the draw is debited by the flow engine every tick with the
//!   same exact integer arithmetic as every other tap — which is what lets
//!   a funded, lit peripheral ride the idle fast-forward bit-identically;
//! * every quantum the kernel checks that the reserve can still fund the
//!   next quantum of draw; a drained reserve **forcibly powers the
//!   peripheral down** (the forced-shutdown count is per-device telemetry);
//! * the **drive level** (ppm of full draw) models dimming and low-power
//!   tracking modes: changing it re-rates the drain tap and the metered
//!   hardware draw together.
//!
//! The radio is deliberately *not* here: it keeps its `netd` path (§5.5),
//! where pooling policy — not a per-device reserve — owns its energy.

use cinder_core::{ReserveId, TapId};

/// Which reserve-gated peripheral a syscall names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PeripheralKind {
    /// The display backlight (§4.2: +555 mW at full drive).
    Backlight,
    /// The GPS receiver (~350 mW while acquiring/tracking).
    Gps,
}

impl PeripheralKind {
    /// Number of peripheral kinds.
    pub const COUNT: usize = 2;

    /// Every kind, in slot order.
    pub const ALL: [PeripheralKind; PeripheralKind::COUNT] =
        [PeripheralKind::Backlight, PeripheralKind::Gps];

    /// The kind's dense slot index.
    pub fn index(self) -> usize {
        match self {
            PeripheralKind::Backlight => 0,
            PeripheralKind::Gps => 1,
        }
    }

    /// A short stable name for logs, reserve names, and errors.
    pub fn name(self) -> &'static str {
        match self {
            PeripheralKind::Backlight => "backlight",
            PeripheralKind::Gps => "gps",
        }
    }
}

impl std::fmt::Display for PeripheralKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Kernel-internal per-peripheral state.
#[derive(Debug, Default)]
pub(crate) struct PeripheralSlot {
    /// The dedicated reserve funding the peripheral, once acquired.
    pub(crate) reserve: Option<ReserveId>,
    /// The decay-exempt accounting sink the drain tap empties into
    /// (created lazily on first enable; its balance *is* the peripheral's
    /// lifetime energy).
    pub(crate) sink: Option<ReserveId>,
    /// The live drain tap while enabled.
    pub(crate) drain: Option<TapId>,
    /// Drive level in ppm of full draw (dimming / tracking modes).
    pub(crate) drive_ppm: u64,
    /// Whether the hardware is currently lit.
    pub(crate) enabled: bool,
    /// How many times an empty reserve forced the hardware down.
    pub(crate) forced_shutdowns: u64,
}

impl PeripheralSlot {
    pub(crate) fn new() -> Self {
        PeripheralSlot {
            drive_ppm: cinder_hw::FULL_DRIVE_PPM,
            ..PeripheralSlot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_index_their_slots() {
        for (i, kind) in PeripheralKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        assert_eq!(PeripheralKind::ALL.len(), PeripheralKind::COUNT);
        assert_eq!(PeripheralKind::Backlight.to_string(), "backlight");
        assert_eq!(PeripheralKind::Gps.name(), "gps");
    }

    #[test]
    fn fresh_slots_are_dark_at_full_drive() {
        let s = PeripheralSlot::new();
        assert!(!s.enabled);
        assert_eq!(s.drive_ppm, cinder_hw::FULL_DRIVE_PPM);
        assert_eq!(s.forced_shutdowns, 0);
        assert!(s.reserve.is_none() && s.sink.is_none() && s.drain.is_none());
    }
}
