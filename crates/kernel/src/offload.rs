//! The kernel's offload boundary.
//!
//! Like [`NetStack`](crate::netstack::NetStack), the kernel provides
//! *mechanism* — blocking the calling thread, billing request/response
//! bytes through the typed graph, waking on the response or a deadline —
//! while the backend itself is a plug-in behind [`OffloadBackend`].
//! `cinder-apps` supplies the trace-backed implementation that fleet
//! scenarios share; tests install tiny scripted backends.

use cinder_sim::{SimDuration, SimTime};

/// A work item a thread asks to run remotely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadRequest {
    /// Request payload shipped to the backend.
    pub tx_bytes: u64,
    /// Response payload shipped back.
    pub rx_bytes: u64,
    /// The local CPU time the remote execution replaces (the "remaining
    /// work estimate" the syscall ships).
    pub work: SimDuration,
    /// How long the thread will wait before giving up and recomputing
    /// locally.
    pub deadline: SimDuration,
}

/// The backend's admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadVerdict {
    /// Admitted; the response will carry this much backend time (queue
    /// wait + service) on top of the network round trip.
    Admitted {
        /// Backend queue wait plus service time.
        response_delay: SimDuration,
    },
    /// Queue full — the caller should compute locally.
    Rejected,
}

/// A pluggable offload backend: deterministic, advanced in simulated time.
pub trait OffloadBackend {
    /// Decides admission for a request arriving now.
    fn admit(&mut self, now: SimTime, req: &OffloadRequest) -> OffloadVerdict;

    /// The backend latency (queue wait + service) a request admitted now
    /// would observe — the live estimate the break-even policy reads.
    fn latency_estimate(&self, now: SimTime) -> SimDuration;
}

/// What `Ctx::offload` returns immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadStatus {
    /// The request is in flight; return [`Step::Block`](crate::Step) and
    /// collect the [`OffloadOutcome`] on wake.
    Sent,
    /// Refused up front — backend full, byte plan uncovered, or the stack
    /// could not take the send. Compute locally; nothing was billed
    /// beyond the syscall dispatch.
    Rejected,
}

/// How a blocked offload ended (via `Ctx::offload_take_result`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadOutcome {
    /// The response landed in time.
    Completed {
        /// Request-to-response latency the thread observed.
        latency: SimDuration,
    },
    /// The deadline expired first; compute locally. A late response still
    /// bills its bytes on delivery but no longer wakes anyone.
    TimedOut,
}

/// Per-kernel offload telemetry (fleet reports aggregate these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OffloadStats {
    /// `offload` syscalls that got past the backend-present check.
    pub attempts: u64,
    /// Requests the backend admitted and the stack accepted.
    pub accepted: u64,
    /// Requests refused up front (backend full, plan uncovered, stack
    /// refusal).
    pub rejected: u64,
    /// Accepted requests whose deadline fired before the response.
    pub timed_out: u64,
    /// Accepted requests whose response woke the thread in time.
    pub completed: u64,
    /// Sum of observed request latencies over completed offloads, in
    /// microseconds (divide by `completed` for the mean).
    pub latency_us_sum: u64,
}

impl OffloadStats {
    /// Conservation: every accepted request completes, times out, or is
    /// still blocked.
    pub fn in_flight(&self) -> u64 {
        self.accepted - self.completed - self.timed_out
    }
}
