//! Threads as programs.
//!
//! Application behaviour is expressed as a [`Program`] state machine. Each
//! time the scheduler gives the thread a quantum and it has no CPU work
//! outstanding, the kernel calls [`Program::step`] with a [`crate::Ctx`]
//! exposing the syscall surface. The returned [`Step`] tells the kernel how
//! the thread occupies time. This mirrors how real Cinder applications are
//! structured around blocking system calls, without needing real
//! continuations in the simulator.

use cinder_hw::CpuKind;
use cinder_sim::{SimDuration, SimTime};

use crate::kernel::Ctx;

/// What a program does with its turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Spin on the CPU for `duration` (charged to the active reserve at the
    /// accounting power, quantum by quantum).
    Compute {
        /// How long to compute before the program is stepped again.
        duration: SimDuration,
        /// Instruction mix, which affects *measured* (true) power; Cinder's
        /// accounting charges the worst case regardless (§4.2).
        kind: CpuKind,
    },
    /// Sleep until the given time (scheduler state: blocked).
    SleepUntil(SimTime),
    /// Give up the rest of this quantum but stay ready.
    Yield,
    /// Block until something (netd, another thread) wakes this thread.
    Block,
    /// Terminate the thread.
    Exit,
}

impl Step {
    /// Convenience: compute with the default (worst-case) instruction mix.
    pub fn compute(duration: SimDuration) -> Step {
        Step::Compute {
            duration,
            kind: CpuKind::default(),
        }
    }
}

/// The status of a network send request (see [`crate::Ctx::net_send`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetSendStatus {
    /// The packet was transmitted.
    Sent,
    /// The stack blocked the request (insufficient pooled energy); the
    /// thread should return [`Step::Block`] and will be woken when the
    /// request completes, with [`crate::Ctx::net_take_result`] returning
    /// `Some(Sent)`.
    Blocked,
}

/// A thread body. Implementations are state machines: `step` is called once
/// per scheduling opportunity and must not loop forever internally.
pub trait Program {
    /// Advances the program, performing syscalls through `ctx`.
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step;
}

/// A program built from a closure (handy for tests and simple experiments).
pub struct FnProgram<F>(pub F);

impl<F> Program for FnProgram<F>
where
    F: FnMut(&mut Ctx<'_>) -> Step,
{
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        (self.0)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_compute_default_kind() {
        let s = Step::compute(SimDuration::from_millis(10));
        match s {
            Step::Compute { duration, kind } => {
                assert_eq!(duration, SimDuration::from_millis(10));
                assert_eq!(kind, CpuKind::MemoryIntensive);
            }
            other => panic!("unexpected step {other:?}"),
        }
    }
}
