//! The simulated Cinder kernel.
//!
//! Cinder extends HiStar with reserves and taps (paper §3). This crate is
//! the HiStar-shaped substrate those abstractions live in, reproduced as a
//! deterministic simulation:
//!
//! * [`object`] — the six HiStar first-class object types (§3.1) plus
//!   reserves and taps, with **containers** providing hierarchical
//!   deallocation: unlink a container and everything beneath it — including
//!   taps, whose deletion *revokes power sources* (§5.2) — is garbage
//!   collected.
//! * [`program`] — threads are [`Program`] state machines; each scheduler
//!   quantum the kernel steps the chosen thread's program and charges its
//!   active reserve, so CPU spending is gated by energy exactly as §3.2
//!   prescribes.
//! * [`netstack`] — the boundary where network *policy* plugs in. The
//!   cooperative `netd` and the uncooperative baseline live in
//!   `cinder-net`; the kernel provides the mechanism (blocking threads,
//!   waking them, delivering and billing received packets).
//! * [`offload`] — the cloud-offload boundary: the `offload` syscall ships
//!   a work estimate over the stack, blocks the thread until the response
//!   or a deadline, and bills the traffic like any other send; the backend
//!   itself plugs in behind [`OffloadBackend`].
//! * [`peripheral`] — the backlight and GPS as reserve-gated devices:
//!   enabling one requires a dedicated reserve, the draw is drained from
//!   it by a kernel tap, and an empty reserve forces the hardware down.
//! * [`kernel`] — the [`Kernel`] itself: run loop, syscall surface
//!   ([`Ctx`]), event queue, the ARM9 facade, and the power meter.
//!
//! # Billing across IPC
//!
//! Gate calls move the *calling thread* into the service: work done in a
//! gate is billed to the caller's active reserve with no extra machinery
//! (§5.5.1). The message-passing alternative ([`Ctx::msg_send`]) bills the
//! daemon instead — reproducing §7.1's Cinder-Linux misattribution problem
//! as a measurable ablation.

pub mod errors;
pub mod kernel;
pub mod netstack;
pub mod object;
pub mod offload;
pub mod peripheral;
pub mod program;

pub use cinder_faults::FlapSemantics;
pub use errors::KernelError;
pub use kernel::{
    Ctx, DownloadGrant, FaultCounters, Kernel, KernelConfig, KernelObservables, ThreadId,
};
pub use netstack::{NetEnv, NetStack, SendRequest, SendVerdict};
pub use object::{Body, KObject, ObjectId, ObjectKind};
pub use offload::{
    OffloadBackend, OffloadOutcome, OffloadRequest, OffloadStats, OffloadStatus, OffloadVerdict,
};
pub use peripheral::PeripheralKind;
pub use program::{FnProgram, NetSendStatus, Program, Step};
