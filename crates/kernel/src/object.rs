//! HiStar-style kernel objects and hierarchical containers.
//!
//! Paper §3.1: "HiStar is composed of six first-class kernel objects, all
//! protected by a security label. … Containers enable hierarchical control
//! over deallocation of kernel objects — objects must be referenced by a
//! container or face garbage collection." Cinder adds reserves and taps as
//! "two new fundamental kernel object types".
//!
//! The browser scenario of §5.2 leans on this: per-page taps placed in a
//! per-page container are "automatically garbage collected, effectively
//! revoking those power sources" when the page's container is unlinked.

use std::collections::BTreeSet;

use cinder_core::{ReserveId, TapId};
use cinder_label::Label;
use cinder_sim::SimDuration;

use crate::kernel::ThreadId;

/// Identifies a kernel object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub(crate) u64);

impl ObjectId {
    /// The raw id (display/debugging).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// The kind of a kernel object (HiStar's six plus Cinder's two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// A container of other objects.
    Container,
    /// A byte segment (memory).
    Segment,
    /// An address space mapping segments.
    AddressSpace,
    /// A thread.
    Thread,
    /// A gate: a protected entry point into a service.
    Gate,
    /// A device endpoint.
    Device,
    /// An energy (or quota) reserve.
    Reserve,
    /// A tap between two reserves.
    Tap,
}

/// Object payloads.
#[derive(Debug)]
pub enum Body {
    /// Children are garbage collected when the container is unlinked.
    Container {
        /// Directly contained objects.
        children: BTreeSet<ObjectId>,
    },
    /// Raw bytes (enough of a segment for the simulation's purposes).
    Segment {
        /// Contents.
        data: Vec<u8>,
    },
    /// Maps segments (by object id).
    AddressSpace {
        /// Mapped segments.
        segments: Vec<ObjectId>,
    },
    /// A thread object; the schedulable state lives in the kernel.
    Thread {
        /// The kernel thread this object names.
        thread: ThreadId,
    },
    /// A protected control-transfer point. The calling thread executes the
    /// service's code — `work` of CPU — billed to its own active reserve
    /// (§5.5.1).
    Gate {
        /// CPU time one invocation costs the caller.
        work: SimDuration,
    },
    /// A device endpoint (the ARM9-mediated peripherals).
    Device,
    /// A reserve object wrapping a graph reserve.
    Reserve {
        /// The graph reserve.
        reserve: ReserveId,
    },
    /// A tap object wrapping a graph tap.
    Tap {
        /// The graph tap.
        tap: TapId,
    },
}

impl Body {
    /// The object kind this body implies.
    pub fn kind(&self) -> ObjectKind {
        match self {
            Body::Container { .. } => ObjectKind::Container,
            Body::Segment { .. } => ObjectKind::Segment,
            Body::AddressSpace { .. } => ObjectKind::AddressSpace,
            Body::Thread { .. } => ObjectKind::Thread,
            Body::Gate { .. } => ObjectKind::Gate,
            Body::Device => ObjectKind::Device,
            Body::Reserve { .. } => ObjectKind::Reserve,
            Body::Tap { .. } => ObjectKind::Tap,
        }
    }
}

/// A kernel object: name, protecting label, parent container, payload.
#[derive(Debug)]
pub struct KObject {
    name: String,
    label: Label,
    parent: Option<ObjectId>,
    body: Body,
}

impl KObject {
    pub(crate) fn new(
        name: impl Into<String>,
        label: Label,
        parent: Option<ObjectId>,
        body: Body,
    ) -> Self {
        KObject {
            name: name.into(),
            label,
            parent,
            body,
        }
    }

    /// The object's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The protecting label.
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// The parent container (None only for the root).
    pub fn parent(&self) -> Option<ObjectId> {
        self.parent
    }

    /// The payload.
    pub fn body(&self) -> &Body {
        &self.body
    }

    pub(crate) fn body_mut(&mut self) -> &mut Body {
        &mut self.body
    }

    /// The object kind.
    pub fn kind(&self) -> ObjectKind {
        self.body.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_kinds() {
        assert_eq!(
            Body::Container {
                children: BTreeSet::new()
            }
            .kind(),
            ObjectKind::Container
        );
        assert_eq!(Body::Segment { data: vec![] }.kind(), ObjectKind::Segment);
        assert_eq!(
            Body::Gate {
                work: SimDuration::from_millis(5)
            }
            .kind(),
            ObjectKind::Gate
        );
        assert_eq!(Body::Device.kind(), ObjectKind::Device);
    }

    #[test]
    fn object_accessors() {
        let o = KObject::new(
            "root",
            Label::default_label(),
            None,
            Body::Container {
                children: BTreeSet::new(),
            },
        );
        assert_eq!(o.name(), "root");
        assert_eq!(o.kind(), ObjectKind::Container);
        assert!(o.parent().is_none());
    }
}
