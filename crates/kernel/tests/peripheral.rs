//! Reserve-gated peripheral tests: exact accounting, forced shutdown, and
//! differential bit-identity of the fast paths with peripherals lit.
//!
//! The peripheral layer must compose with `KernelConfig::idle_skip` (and
//! its reduced net-busy stepping) as a pure wall-clock optimisation: a
//! funded lit peripheral is steady state the fast-forward may jump, while a
//! near-empty peripheral reserve pins the slow path so the forced shutdown
//! lands on exactly the boundary per-quantum stepping would choose.

use cinder_apps::{PeriodicPoller, PollerLog};
use cinder_core::{quota, Actor, Quantity, RateSpec, ReserveId, ResourceKind};
use cinder_kernel::{Ctx, FnProgram, Kernel, KernelConfig, KernelError, PeripheralKind, Step};
use cinder_label::Label;
use cinder_net::CoopNetd;
use cinder_sim::{Energy, Power, SimDuration, SimTime};

/// Everything observable about a finished run, for exact comparison.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    now_us: u64,
    meter_uj: i64,
    balances: Vec<i64>,
    consumed: Vec<i64>,
    radio_activations: u64,
    thread_energy: Vec<i64>,
    thread_throttled_us: Vec<u64>,
    peripheral_enabled: Vec<bool>,
    peripheral_energy_uj: Vec<i64>,
    peripheral_shutdowns: Vec<u64>,
}

fn fingerprint(k: &Kernel) -> Fingerprint {
    Fingerprint {
        now_us: k.now().as_micros(),
        meter_uj: k.meter().total_energy().as_microjoules(),
        balances: k
            .graph()
            .reserves()
            .map(|(_, r)| r.balance().as_microjoules())
            .collect(),
        consumed: k
            .graph()
            .reserves()
            .map(|(_, r)| r.stats().consumed.as_microjoules())
            .collect(),
        radio_activations: k.arm9().radio().stats().activations,
        thread_energy: k
            .thread_ids()
            .iter()
            .map(|&t| k.thread_consumed(t).as_microjoules())
            .collect(),
        thread_throttled_us: k
            .thread_ids()
            .iter()
            .map(|&t| k.thread_throttled(t).as_micros())
            .collect(),
        peripheral_enabled: PeripheralKind::ALL
            .iter()
            .map(|&p| k.peripheral_enabled(p))
            .collect(),
        peripheral_energy_uj: PeripheralKind::ALL
            .iter()
            .map(|&p| k.peripheral_energy(p).as_microjoules())
            .collect(),
        peripheral_shutdowns: PeripheralKind::ALL
            .iter()
            .map(|&p| k.peripheral_forced_shutdowns(p))
            .collect(),
    }
}

fn config(idle_skip: bool) -> KernelConfig {
    KernelConfig {
        seed: 23,
        idle_skip,
        ..KernelConfig::default()
    }
}

/// A reserve seeded with `joules` from the battery.
fn funded(k: &mut Kernel, name: &str, joules: i64) -> ReserveId {
    let root = Actor::kernel();
    let battery = k.battery();
    let r = k
        .graph_mut()
        .create_reserve(&root, name, Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&root, battery, r, Energy::from_joules(joules))
        .unwrap();
    r
}

/// A reserve fed `uw` from the battery (optionally pre-seeded).
fn tapped(k: &mut Kernel, name: &str, uw: u64, seed_uj: i64) -> ReserveId {
    let root = Actor::kernel();
    let battery = k.battery();
    let r = k
        .graph_mut()
        .create_reserve(&root, name, Label::default_label())
        .unwrap();
    if seed_uj > 0 {
        k.graph_mut()
            .transfer(&root, battery, r, Energy::from_microjoules(seed_uj))
            .unwrap();
    }
    k.graph_mut()
        .create_tap(
            &root,
            &format!("{name}-tap"),
            battery,
            r,
            RateSpec::constant(Power::from_microwatts(uw)),
            Label::default_label(),
        )
        .unwrap();
    r
}

/// The backlight drain is exact flow-engine arithmetic: 555 mW held for
/// exactly 10 s drains exactly 5.55 J into the accounting sink, and the
/// meter sees the same 5.55 J above its baseline.
#[test]
fn backlight_accounting_is_exact() {
    let mut k = Kernel::new(KernelConfig {
        graph: cinder_core::GraphConfig {
            decay: None,
            ..cinder_core::GraphConfig::default()
        },
        ..KernelConfig::default()
    });
    let cpu_r = funded(&mut k, "cpu", 10);
    let screen_r = funded(&mut k, "screen", 10);
    let mut step = 0;
    k.spawn_unprivileged(
        "ui",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            step += 1;
            match step {
                1 => {
                    ctx.peripheral_acquire(PeripheralKind::Backlight, screen_r)
                        .unwrap();
                    ctx.peripheral_enable(PeripheralKind::Backlight).unwrap();
                    Step::SleepUntil(SimTime::from_secs(10))
                }
                _ => {
                    ctx.peripheral_disable(PeripheralKind::Backlight).unwrap();
                    Step::Exit
                }
            }
        })),
        cpu_r,
    );
    k.run_until(SimTime::from_secs(20));
    assert_eq!(
        k.peripheral_energy(PeripheralKind::Backlight),
        Energy::from_microjoules(5_550_000),
        "10 s of 555 mW, drained tick-exactly"
    );
    assert!(!k.peripheral_enabled(PeripheralKind::Backlight));
    assert_eq!(k.peripheral_forced_shutdowns(PeripheralKind::Backlight), 0);
    // The reserve paid exactly what the sink received.
    let residual = k.graph().reserve(screen_r).unwrap().balance();
    assert_eq!(residual, Energy::from_microjoules(10_000_000 - 5_550_000));
    // The meter's trace carried the lit span too: 20 s idle floor + 10 s
    // of backlight + two dispatch quanta of CPU.
    let meter = k.meter().total_energy().as_microjoules();
    let floor = 699_000 * 20 + 555_000 * 10;
    assert!(
        (floor..floor + 5_000).contains(&meter),
        "meter {meter} vs floor {floor}"
    );
    assert!(k.graph().totals().conserved());
}

/// The gating preconditions, each refused with a typed error.
#[test]
fn enable_is_gated_on_an_acquired_funded_energy_reserve() {
    let mut k = Kernel::with_defaults();
    // Not acquired yet.
    assert_eq!(
        k.peripheral_enable(PeripheralKind::Gps),
        Err(KernelError::NoPeripheralReserve {
            peripheral: PeripheralKind::Gps
        })
    );
    // An empty reserve acquires fine but cannot light the hardware.
    let root = Actor::kernel();
    let empty = k
        .graph_mut()
        .create_reserve(&root, "empty", Label::default_label())
        .unwrap();
    k.peripheral_acquire(PeripheralKind::Gps, empty).unwrap();
    assert_eq!(
        k.peripheral_enable(PeripheralKind::Gps),
        Err(KernelError::PeripheralUnfunded {
            peripheral: PeripheralKind::Gps
        })
    );
    // A byte reserve is the wrong kind entirely.
    k.graph_mut()
        .create_root(&root, "byte-pool", Quantity::network_bytes(1_000))
        .unwrap();
    let plan = k
        .graph_mut()
        .create_reserve_kind(
            &root,
            "plan",
            Label::default_label(),
            ResourceKind::NetworkBytes,
        )
        .unwrap();
    let pool = k.graph_mut().root(ResourceKind::NetworkBytes).unwrap();
    k.graph_mut()
        .transfer(&root, pool, plan, quota::bytes(1_000))
        .unwrap();
    assert!(matches!(
        k.peripheral_acquire(PeripheralKind::Gps, plan),
        Err(KernelError::Graph(
            cinder_core::GraphError::KindMismatch { .. }
        ))
    ));
    // Funded: lights up. Re-acquiring while lit is refused.
    let fuel = funded(&mut k, "fuel", 5);
    k.peripheral_acquire(PeripheralKind::Gps, fuel).unwrap();
    k.peripheral_enable(PeripheralKind::Gps).unwrap();
    assert!(k.peripheral_enabled(PeripheralKind::Gps));
    assert_eq!(
        k.peripheral_acquire(PeripheralKind::Gps, fuel),
        Err(KernelError::PeripheralBusy {
            peripheral: PeripheralKind::Gps
        })
    );
    // Enable is idempotent while lit.
    assert_eq!(k.peripheral_enable(PeripheralKind::Gps), Ok(()));
}

/// A reserve with no feed drains and the kernel forces the hardware down;
/// the residual is less than one quantum of draw.
#[test]
fn drained_reserve_forces_the_peripheral_down() {
    let mut k = Kernel::new(KernelConfig {
        graph: cinder_core::GraphConfig {
            decay: None,
            ..cinder_core::GraphConfig::default()
        },
        ..KernelConfig::default()
    });
    // 1 J funds ~1.8 s of 555 mW backlight.
    let screen_r = funded(&mut k, "screen", 1);
    k.peripheral_acquire(PeripheralKind::Backlight, screen_r)
        .unwrap();
    k.peripheral_enable(PeripheralKind::Backlight).unwrap();
    k.run_until(SimTime::from_secs(10));
    assert!(!k.peripheral_enabled(PeripheralKind::Backlight));
    assert_eq!(k.peripheral_forced_shutdowns(PeripheralKind::Backlight), 1);
    let drained = k.peripheral_energy(PeripheralKind::Backlight);
    let residual = k.graph().reserve(screen_r).unwrap().balance();
    assert_eq!(drained + residual, Energy::from_joules(1));
    let quantum_need = Power::from_milliwatts(555).energy_over(SimDuration::from_millis(10));
    assert!(
        residual < quantum_need,
        "forced shutdown leaves less than a quantum of draw: {residual}"
    );
    assert!(k.graph().totals().conserved());
}

/// A funded lit backlight is steady state: long sleeps under it fast-forward
/// bit-identically (decay is ON, so the coverage bound's leak term is
/// exercised too).
#[test]
fn lit_backlight_identical_with_and_without_skip() {
    let run = |idle_skip: bool| {
        let mut k = Kernel::new(config(idle_skip));
        let screen_r = tapped(&mut k, "screen", 600_000, 30_000_000);
        let cpu_r = tapped(&mut k, "cpu", 10_000, 2_000_000);
        let mut step = 0;
        k.spawn_unprivileged(
            "ui",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                step += 1;
                match step {
                    1 => {
                        ctx.peripheral_acquire(PeripheralKind::Backlight, screen_r)
                            .unwrap();
                        ctx.peripheral_enable(PeripheralKind::Backlight).unwrap();
                        Step::SleepUntil(ctx.now() + SimDuration::from_secs(120))
                    }
                    // Re-check and keep sleeping under the lit screen.
                    2..=3 => Step::SleepUntil(ctx.now() + SimDuration::from_secs(120)),
                    4 => {
                        ctx.peripheral_set_drive(PeripheralKind::Backlight, 400_000)
                            .unwrap();
                        Step::SleepUntil(ctx.now() + SimDuration::from_secs(60))
                    }
                    _ => {
                        ctx.peripheral_disable(PeripheralKind::Backlight).unwrap();
                        Step::Exit
                    }
                }
            })),
            cpu_r,
        );
        k.run_until(SimTime::from_secs(600));
        fingerprint(&k)
    };
    let base = run(false);
    let fast = run(true);
    assert_eq!(base, fast);
    assert!(
        base.peripheral_energy_uj[PeripheralKind::Backlight.index()] > 100_000_000,
        "the screen must have burned real energy: {base:?}"
    );
}

/// A duty-cycled GPS (the navigator shape): enable for a fix, disable,
/// sleep — every phase boundary lands identically under the fast-forward.
#[test]
fn duty_cycled_gps_identical_with_and_without_skip() {
    let run = |idle_skip: bool| {
        let mut k = Kernel::new(config(idle_skip));
        let gps_r = tapped(&mut k, "gps", 60_000, 8_000_000);
        let cpu_r = tapped(&mut k, "cpu", 10_000, 2_000_000);
        let mut acquired = false;
        k.spawn_unprivileged(
            "nav",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                if ctx.peripheral_enabled(PeripheralKind::Gps) {
                    // Fix finished (or the kernel forced us down mid-fix).
                    ctx.peripheral_disable(PeripheralKind::Gps).unwrap();
                    return Step::SleepUntil(ctx.now() + SimDuration::from_secs(50));
                }
                if !acquired {
                    acquired = true;
                    ctx.peripheral_acquire(PeripheralKind::Gps, gps_r).unwrap();
                }
                match ctx.peripheral_enable(PeripheralKind::Gps) {
                    Ok(()) => Step::SleepUntil(ctx.now() + SimDuration::from_secs(10)),
                    Err(_) => Step::SleepUntil(ctx.now() + SimDuration::from_secs(30)),
                }
            })),
            cpu_r,
        );
        k.run_until(SimTime::from_secs(600));
        fingerprint(&k)
    };
    let base = run(false);
    let fast = run(true);
    assert_eq!(base, fast);
    assert!(
        base.peripheral_energy_uj[PeripheralKind::Gps.index()] > 10_000_000,
        "the receiver must have tracked for real: {base:?}"
    );
}

/// A peripheral outrunning its trickle feed keeps crossing the shutdown
/// threshold: the near-empty reserve must pin the slow path so every
/// forced shutdown lands on the same boundary, skip or no skip.
#[test]
fn forced_shutdowns_land_identically_under_skip() {
    let run = |idle_skip: bool| {
        let mut k = Kernel::new(config(idle_skip));
        // 150 mW feed for a 555 mW screen: lights for a stretch, browns
        // out, recovers, repeats.
        let screen_r = tapped(&mut k, "screen", 150_000, 4_000_000);
        let cpu_r = tapped(&mut k, "cpu", 10_000, 2_000_000);
        let mut acquired = false;
        k.spawn_unprivileged(
            "flicker",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                if !acquired {
                    acquired = true;
                    ctx.peripheral_acquire(PeripheralKind::Backlight, screen_r)
                        .unwrap();
                }
                if ctx.peripheral_enabled(PeripheralKind::Backlight) {
                    // Still lit: check back later.
                    return Step::SleepUntil(ctx.now() + SimDuration::from_secs(15));
                }
                match ctx.peripheral_enable(PeripheralKind::Backlight) {
                    Ok(()) => Step::SleepUntil(ctx.now() + SimDuration::from_secs(15)),
                    Err(_) => Step::SleepUntil(ctx.now() + SimDuration::from_secs(5)),
                }
            })),
            cpu_r,
        );
        k.run_until(SimTime::from_secs(600));
        fingerprint(&k)
    };
    let base = run(false);
    let fast = run(true);
    assert_eq!(base, fast);
    assert!(
        base.peripheral_shutdowns[PeripheralKind::Backlight.index()] >= 2,
        "scenario must exercise forced shutdown: {base:?}"
    );
}

/// A *second* outbound tap on the peripheral's reserve drains it far
/// faster than the peripheral alone: the span-coverage guard must count
/// the reserve's total outflow, so the forced shutdown lands on the same
/// boundary whether or not the fast-forward is on.
#[test]
fn second_outbound_tap_pins_the_slow_path_identically() {
    let run = |idle_skip: bool| {
        let mut k = Kernel::new(config(idle_skip));
        // 40 J funds ~72 s of backlight alone — but a 2 W sibling tap
        // (another consumer sharing the budget) empties it in ~15.6 s.
        let screen_r = tapped(&mut k, "screen", 0, 40_000_000);
        let root = Actor::kernel();
        let sibling = k
            .graph_mut()
            .create_reserve(&root, "sibling", Label::default_label())
            .unwrap();
        k.graph_mut()
            .create_tap(
                &root,
                "sibling-tap",
                screen_r,
                sibling,
                RateSpec::constant(Power::from_microwatts(2_000_000)),
                Label::default_label(),
            )
            .unwrap();
        let cpu_r = tapped(&mut k, "cpu", 10_000, 2_000_000);
        let mut lit = false;
        k.spawn_unprivileged(
            "ui",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                if !lit {
                    lit = true;
                    ctx.peripheral_acquire(PeripheralKind::Backlight, screen_r)
                        .unwrap();
                    ctx.peripheral_enable(PeripheralKind::Backlight).unwrap();
                }
                // Sleep straight through: the shutdown must come from the
                // kernel, at the boundary the slow path would pick.
                Step::SleepUntil(ctx.now() + SimDuration::from_secs(60))
            })),
            cpu_r,
        );
        k.run_until(SimTime::from_secs(180));
        fingerprint(&k)
    };
    let base = run(false);
    let fast = run(true);
    assert_eq!(base, fast);
    assert_eq!(
        base.peripheral_shutdowns[PeripheralKind::Backlight.index()],
        1,
        "the sibling tap must starve the screen mid-sleep: {base:?}"
    );
}

/// §3.5 protection: a peripheral acquired on a protected reserve cannot be
/// enabled, disabled, dimmed, or re-acquired by a thread whose label does
/// not grant modify on that reserve.
#[test]
fn protected_reserve_locks_out_stranger_control() {
    let mut k = Kernel::with_defaults();
    let cat = k.alloc_category();
    let secret = cinder_label::Label::with(&[(cat, cinder_label::Level::L3)]);
    let root = Actor::kernel();
    let battery = k.battery();
    let screen_r = k
        .graph_mut()
        .create_reserve(&root, "screen", secret)
        .unwrap();
    k.graph_mut()
        .transfer(&root, battery, screen_r, Energy::from_joules(50))
        .unwrap();
    // The kernel (owner) acquires and lights it.
    k.peripheral_acquire(PeripheralKind::Backlight, screen_r)
        .unwrap();
    k.peripheral_enable(PeripheralKind::Backlight).unwrap();
    let cpu_r = funded(&mut k, "cpu", 1);
    k.spawn_unprivileged(
        "snoop",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            // Cannot switch it off…
            assert!(matches!(
                ctx.peripheral_disable(PeripheralKind::Backlight),
                Err(KernelError::Denied { .. })
            ));
            // …nor dim it…
            assert!(matches!(
                ctx.peripheral_set_drive(PeripheralKind::Backlight, 100_000),
                Err(KernelError::Denied { .. })
            ));
            // …nor re-light it, and the GPS cannot be acquired onto the
            // protected reserve either.
            assert!(matches!(
                ctx.peripheral_enable(PeripheralKind::Backlight),
                Err(KernelError::Denied { .. })
            ));
            assert!(ctx
                .peripheral_acquire(PeripheralKind::Gps, screen_r)
                .is_err());
            Step::Exit
        })),
        cpu_r,
    );
    k.run_until(SimTime::from_secs(1));
    assert!(
        k.peripheral_enabled(PeripheralKind::Backlight),
        "the stranger must not have taken the screen down"
    );
    assert_eq!(k.peripheral_drive_ppm(PeripheralKind::Backlight), 1_000_000);
}

/// Pooling netd (blocked senders, reduced net-busy stepping) composed with
/// a lit backlight: grants, wakes, and the screen's drain all land on
/// identical boundaries.
#[test]
fn netd_pooling_with_lit_backlight_identical() {
    let run = |idle_skip: bool| {
        let mut k = Kernel::new(config(idle_skip));
        let netd = CoopNetd::with_defaults(k.graph_mut());
        k.install_net(Box::new(netd));
        let log = PollerLog::shared();
        let r_rss = tapped(&mut k, "rss", 37_500, 0);
        let r_mail = tapped(&mut k, "mail", 37_500, 0);
        k.spawn_unprivileged("rss", Box::new(PeriodicPoller::rss(log.clone())), r_rss);
        k.spawn_unprivileged("mail", Box::new(PeriodicPoller::mail(log.clone())), r_mail);
        let screen_r = tapped(&mut k, "screen", 700_000, 20_000_000);
        let cpu_r = tapped(&mut k, "cpu", 10_000, 2_000_000);
        let mut step = 0;
        k.spawn_unprivileged(
            "ui",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                step += 1;
                match step {
                    1 => {
                        ctx.peripheral_acquire(PeripheralKind::Backlight, screen_r)
                            .unwrap();
                        ctx.peripheral_enable(PeripheralKind::Backlight).unwrap();
                        Step::SleepUntil(ctx.now() + SimDuration::from_secs(300))
                    }
                    _ => {
                        ctx.peripheral_disable(PeripheralKind::Backlight).unwrap();
                        Step::Exit
                    }
                }
            })),
            cpu_r,
        );
        k.run_until(SimTime::from_secs(600));
        let (sends, blocked) = {
            let log = log.borrow();
            (log.sends.clone(), log.blocked_first)
        };
        (fingerprint(&k), sends, blocked)
    };
    let (base, base_sends, base_blocked) = run(false);
    let (fast, fast_sends, fast_blocked) = run(true);
    assert_eq!(base, fast);
    assert_eq!(base_sends, fast_sends);
    assert_eq!(base_blocked, fast_blocked);
    assert!(base_blocked >= 2, "scenario must exercise pooling");
    assert!(base.peripheral_energy_uj[PeripheralKind::Backlight.index()] > 0);
}
