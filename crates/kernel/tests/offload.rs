//! The `offload` syscall at the kernel boundary.
//!
//! A thread ships a work estimate to a pluggable backend, blocks until the
//! response or a deadline, and pays for the traffic exactly like any other
//! send: radio energy through the episode machinery, bytes against the
//! data plan. These tests drive the mechanism with tiny scripted backends;
//! the fleet's shared trace-backed backend lives in `cinder-apps`.

use cinder_core::{quota, Actor, GraphConfig, Quantity, ReserveId, ResourceKind};
use cinder_kernel::{
    Ctx, FnProgram, Kernel, KernelConfig, OffloadBackend, OffloadOutcome, OffloadRequest,
    OffloadStatus, OffloadVerdict, Step, ThreadId,
};
use cinder_label::Label;
use cinder_net::{CoopNetd, UncoopStack};
use cinder_sim::{Energy, SimDuration, SimTime};

fn kernel_no_decay(idle_skip: bool) -> Kernel {
    Kernel::new(KernelConfig {
        graph: GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
        seed: 23,
        idle_skip,
        ..KernelConfig::default()
    })
}

fn funded_energy(k: &mut Kernel, name: &str, joules: i64) -> ReserveId {
    let battery = k.battery();
    let g = k.graph_mut();
    let r = g
        .create_reserve(&Actor::kernel(), name, Label::default_label())
        .unwrap();
    g.transfer(&Actor::kernel(), battery, r, Energy::from_joules(joules))
        .unwrap();
    r
}

fn byte_plan(k: &mut Kernel, pool_bytes: u64, plan_bytes: u64) -> ReserveId {
    let root = Actor::kernel();
    let g = k.graph_mut();
    let pool = g
        .create_root(&root, "plan-pool", Quantity::network_bytes(pool_bytes))
        .unwrap();
    let plan = g
        .create_reserve_kind(
            &root,
            "plan",
            Label::default_label(),
            ResourceKind::NetworkBytes,
        )
        .unwrap();
    g.transfer(&root, pool, plan, quota::bytes(plan_bytes))
        .unwrap();
    plan
}

fn assert_all_kinds_conserved(k: &Kernel) {
    for kind in ResourceKind::ALL {
        assert!(
            k.graph().totals_for(kind).conserved(),
            "{kind} not conserved: {:?}",
            k.graph().totals_for(kind)
        );
    }
}

/// A backend that admits everything with a fixed response delay (or
/// rejects everything).
struct FixedBackend {
    delay: SimDuration,
    reject: bool,
}

impl OffloadBackend for FixedBackend {
    fn admit(&mut self, _now: SimTime, _req: &OffloadRequest) -> OffloadVerdict {
        if self.reject {
            OffloadVerdict::Rejected
        } else {
            OffloadVerdict::Admitted {
                response_delay: self.delay,
            }
        }
    }

    fn latency_estimate(&self, _now: SimTime) -> SimDuration {
        self.delay
    }
}

const REQ: OffloadRequest = OffloadRequest {
    tx_bytes: 500,
    rx_bytes: 200,
    work: SimDuration::from_secs(120),
    deadline: SimDuration::from_secs(5),
};

/// Spawns a thread that offloads once and exits on the outcome, recording
/// it through the returned closure-captured state via thread introspection.
fn spawn_offloader(k: &mut Kernel, energy: ReserveId, fallback_work: SimDuration) -> ThreadId {
    // 0 = offload, 1 = awaiting outcome, 2 = fallback compute done → exit.
    let mut phase = 0u32;
    k.spawn_unprivileged(
        "offloader",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| match phase {
            0 => match ctx.offload(REQ) {
                Ok(OffloadStatus::Sent) => {
                    phase = 1;
                    Step::Block
                }
                Ok(OffloadStatus::Rejected) => {
                    phase = 2;
                    Step::compute(fallback_work)
                }
                Err(_) => Step::Exit,
            },
            1 => match ctx.offload_take_result() {
                Some(OffloadOutcome::Completed { .. }) => Step::Exit,
                Some(OffloadOutcome::TimedOut) => {
                    phase = 2;
                    Step::compute(fallback_work)
                }
                None => Step::Block, // spurious wake: keep waiting
            },
            _ => Step::Exit,
        })),
        energy,
    )
}

/// The happy path: backend admits, the response wakes the thread, and the
/// observed latency is RTT + transmit time + backend delay.
#[test]
fn offload_response_wakes_the_thread() {
    let mut k = kernel_no_decay(false);
    k.install_net(Box::new(UncoopStack::new()));
    k.install_offload(Box::new(FixedBackend {
        delay: SimDuration::from_millis(300),
        reject: false,
    }));
    let energy = funded_energy(&mut k, "energy", 100);
    let t = spawn_offloader(&mut k, energy, SimDuration::from_secs(60));
    k.run_until(SimTime::from_secs(10));

    assert!(
        k.thread_exited(t),
        "completed offload exits without fallback"
    );
    let stats = k.offload_stats();
    assert_eq!(stats.attempts, 1);
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.timed_out, 0);
    assert_eq!(stats.in_flight(), 0);
    // 200 ms RTT + 5 ms transmit (500 B at 100 kB/s) + 300 ms backend,
    // observed on the quantum grid (10 ms) from a quantum boundary.
    let mean_ms = stats.latency_us_sum / 1_000;
    assert!(
        (505..=515).contains(&mean_ms),
        "latency should be ~505 ms, got {mean_ms} ms"
    );
    // The request actually crossed the radio.
    assert_eq!(k.arm9().radio().stats().tx_bytes, 500);
    assert!(k.arm9().radio().stats().activations >= 1);
    assert_all_kinds_conserved(&k);
}

/// The deadline fires first: the thread wakes `TimedOut` and recomputes
/// locally; the late response still bills its bytes but wakes no one.
#[test]
fn deadline_timeout_falls_back_to_local() {
    let mut k = kernel_no_decay(false);
    k.install_net(Box::new(UncoopStack::new()));
    k.install_offload(Box::new(FixedBackend {
        delay: SimDuration::from_secs(30), // far beyond the 5 s deadline
        reject: false,
    }));
    let energy = funded_energy(&mut k, "energy", 100);
    let plan = byte_plan(&mut k, 100_000, 100_000);
    let fallback = SimDuration::from_secs(2);
    let t = spawn_offloader(&mut k, energy, fallback);
    k.set_thread_reserve_kind(t, ResourceKind::NetworkBytes, plan);
    k.run_until(SimTime::from_secs(60));

    assert!(k.thread_exited(t));
    let stats = k.offload_stats();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.in_flight(), 0);
    // The fallback compute was charged (2 s at 137 mW = 274 mJ) on top of
    // dispatch overhead.
    assert!(
        k.thread_consumed(t) >= Energy::from_millijoules(274),
        "local fallback must be billed: {}",
        k.thread_consumed(t)
    );
    // The late response still debited its bytes on delivery: tx + rx.
    let consumed = k.graph().reserve(plan).unwrap().stats().consumed;
    assert_eq!(consumed, quota::bytes(500 + 200));
    assert_all_kinds_conserved(&k);
}

/// Backend rejection and an uncovered data plan both fail fast into local
/// execution with nothing sent and nothing billed.
#[test]
fn rejection_and_uncovered_plan_fail_fast() {
    // Backend full.
    let mut k = kernel_no_decay(false);
    k.install_net(Box::new(UncoopStack::new()));
    k.install_offload(Box::new(FixedBackend {
        delay: SimDuration::from_millis(100),
        reject: true,
    }));
    let energy = funded_energy(&mut k, "energy", 100);
    let t = spawn_offloader(&mut k, energy, SimDuration::from_millis(100));
    k.run_until(SimTime::from_secs(2));
    assert!(k.thread_exited(t));
    let stats = k.offload_stats();
    assert_eq!((stats.attempts, stats.rejected), (1, 1));
    assert_eq!(stats.accepted, 0);
    assert_eq!(k.arm9().radio().stats().tx_bytes, 0, "nothing was sent");

    // Plan cannot cover the round trip.
    let mut k = kernel_no_decay(false);
    k.install_net(Box::new(UncoopStack::new()));
    k.install_offload(Box::new(FixedBackend {
        delay: SimDuration::from_millis(100),
        reject: false,
    }));
    let energy = funded_energy(&mut k, "energy", 100);
    let plan = byte_plan(&mut k, 10_000, 300); // < 700 B round trip
    let t = spawn_offloader(&mut k, energy, SimDuration::from_millis(100));
    k.set_thread_reserve_kind(t, ResourceKind::NetworkBytes, plan);
    k.run_until(SimTime::from_secs(2));
    assert!(k.thread_exited(t));
    assert_eq!(k.offload_stats().rejected, 1);
    assert_eq!(
        k.graph().reserve(plan).unwrap().stats().consumed,
        Energy::ZERO,
        "an uncovered offload must not touch the plan"
    );
    assert_all_kinds_conserved(&k);
}

/// No backend installed: the syscall errors out cleanly.
#[test]
fn offload_without_backend_errors() {
    let mut k = kernel_no_decay(false);
    k.install_net(Box::new(UncoopStack::new()));
    let energy = funded_energy(&mut k, "energy", 100);
    let mut saw_err = false;
    let probe = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let probe_w = probe.clone();
    let t = k.spawn_unprivileged(
        "no-backend",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            if !saw_err {
                saw_err = true;
                let err = ctx.offload(REQ);
                probe_w.store(
                    matches!(err, Err(cinder_kernel::KernelError::NoOffload)),
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
            Step::Exit
        })),
        energy,
    );
    k.run_until(SimTime::from_secs(1));
    assert!(k.thread_exited(t));
    assert!(probe.load(std::sync::atomic::Ordering::Relaxed));
    assert_eq!(k.offload_stats().attempts, 0);
}

/// An offload whose send netd *pools* (poor reserve, radio power-up not
/// yet funded) still resolves: the thread stays blocked through the
/// pooled phase and wakes on the response or the deadline — never on the
/// pool grant alone.
#[test]
fn pooled_send_keeps_offloader_blocked_until_response() {
    let mut k = kernel_no_decay(false);
    let netd = CoopNetd::with_defaults(k.graph_mut());
    k.install_net(Box::new(netd));
    k.install_offload(Box::new(FixedBackend {
        delay: SimDuration::from_millis(200),
        reject: false,
    }));
    // Not enough to fund the ~11.9 J power-up alone, so netd pools the
    // request — but a 2.5 W tap refills the reserve fast enough that the
    // sweep fills the pool past threshold within ~4 s, inside the 5 s
    // deadline: the send goes out mid-wait and the *response* (not the
    // pool grant) wakes the thread.
    let energy = funded_energy(&mut k, "poor", 4);
    let battery = k.battery();
    k.graph_mut()
        .create_tap(
            &Actor::kernel(),
            "drip",
            battery,
            energy,
            cinder_core::RateSpec::constant(cinder_sim::Power::from_microwatts(2_500_000)),
            Label::default_label(),
        )
        .unwrap();
    let t = spawn_offloader(&mut k, energy, SimDuration::from_secs(1));
    k.run_until(SimTime::from_secs(30));

    let stats = k.offload_stats();
    assert_eq!(stats.accepted, 1);
    assert_eq!(
        stats.completed, 1,
        "the pooled offload must complete via its response: {stats:?}"
    );
    assert_eq!(stats.in_flight(), 0);
    assert!(k.thread_exited(t), "completed without the local fallback");
    assert_eq!(k.arm9().radio().stats().tx_bytes, 500);
    assert_all_kinds_conserved(&k);
}

/// Killing a thread mid-offload drops its waiter state; the late response
/// delivers (billing only) without touching the dead thread.
#[test]
fn killing_an_offload_waiter_cleans_up() {
    let mut k = kernel_no_decay(false);
    k.install_net(Box::new(UncoopStack::new()));
    k.install_offload(Box::new(FixedBackend {
        delay: SimDuration::from_secs(3),
        reject: false,
    }));
    let energy = funded_energy(&mut k, "energy", 100);
    let t = spawn_offloader(&mut k, energy, SimDuration::from_secs(1));
    k.run_until(SimTime::from_secs(1));
    assert_eq!(k.offload_stats().accepted, 1);
    k.kill(t);
    // Both the response (t ≈ 3.2 s) and the deadline (t = 5 s) fire on a
    // dead thread; neither may wake anything or corrupt counters.
    k.run_until(SimTime::from_secs(10));
    assert_eq!(k.offload_stats().in_flight(), 0);
    assert_all_kinds_conserved(&k);
}

/// The fast-forward differential: a run with offloaders in the mix is
/// bit-identical with and without `idle_skip` — blocked offload waiters
/// are skip-safe because both their wake sources are queued events.
#[test]
fn idle_skip_is_bit_identical_with_offloaders() {
    #[derive(Debug, PartialEq)]
    struct Fingerprint {
        meter_uj: i64,
        balances: Vec<(String, i64)>,
        stats: cinder_kernel::OffloadStats,
        radio_tx: u64,
        activations: u64,
    }

    let run = |idle_skip: bool, delay_ms: u64| -> Fingerprint {
        let mut k = kernel_no_decay(idle_skip);
        k.install_net(Box::new(UncoopStack::new()));
        k.install_offload(Box::new(FixedBackend {
            delay: SimDuration::from_millis(delay_ms),
            reject: false,
        }));
        let energy = funded_energy(&mut k, "energy", 200);
        // A repeating offloader: offload, wait, idle a while, repeat.
        let mut phase = 0u32;
        let mut sleeps = 0u32;
        k.spawn_unprivileged(
            "repeat-offloader",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| match phase {
                0 => match ctx.offload(REQ) {
                    Ok(OffloadStatus::Sent) => {
                        phase = 1;
                        Step::Block
                    }
                    Ok(OffloadStatus::Rejected) => Step::compute(SimDuration::from_secs(1)),
                    Err(_) => Step::Exit,
                },
                1 => match ctx.offload_take_result() {
                    Some(_) => {
                        phase = 0;
                        sleeps += 1;
                        if sleeps > 5 {
                            return Step::Exit;
                        }
                        Step::SleepUntil(ctx.now() + SimDuration::from_secs(40))
                    }
                    None => Step::Block,
                },
                _ => Step::Exit,
            })),
            energy,
        );
        k.run_until(SimTime::from_secs(600));
        assert_all_kinds_conserved(&k);
        Fingerprint {
            meter_uj: k.meter().total_energy().as_microjoules(),
            balances: k
                .graph()
                .reserves()
                .map(|(_, r)| (r.name().to_string(), r.balance().as_microjoules()))
                .collect(),
            stats: k.offload_stats(),
            radio_tx: k.arm9().radio().stats().tx_bytes,
            activations: k.arm9().radio().stats().activations,
        }
    };

    // A delay that completes and one that always times out.
    for delay_ms in [300u64, 30_000] {
        let plain = run(false, delay_ms);
        let skipped = run(true, delay_ms);
        assert_eq!(plain, skipped, "idle_skip diverged (delay={delay_ms} ms)");
        assert!(plain.stats.accepted > 1, "the loop must have offloaded");
    }
}
