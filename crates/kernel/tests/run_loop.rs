//! Run-loop integration tests: metering exactness, blocking semantics, and
//! mixed workloads.

use cinder_core::{Actor, GraphConfig, RateSpec};
use cinder_kernel::{Ctx, FnProgram, Kernel, KernelConfig, Step};
use cinder_label::Label;
use cinder_sim::{Energy, Power, SimDuration, SimTime};

fn kernel_no_decay() -> Kernel {
    Kernel::new(KernelConfig {
        graph: GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
        ..KernelConfig::default()
    })
}

fn funded(k: &mut Kernel, name: &str, joules: i64) -> cinder_core::ReserveId {
    let root = Actor::kernel();
    let battery = k.battery();
    let r = k
        .graph_mut()
        .create_reserve(&root, name, Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&root, battery, r, Energy::from_joules(joules))
        .unwrap();
    r
}

/// The meter integrates exactly: alternating compute/sleep in known
/// proportions yields a closed-form total.
#[test]
fn meter_is_exact_for_square_wave_load() {
    let mut k = kernel_no_decay();
    let r = funded(&mut k, "wave", 100);
    // 1 s compute, 1 s sleep, repeated.
    let mut computing = false;
    k.spawn_unprivileged(
        "wave",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            computing = !computing;
            if computing {
                Step::compute(SimDuration::from_secs(1))
            } else {
                Step::SleepUntil(ctx.now() + SimDuration::from_secs(1))
            }
        })),
        r,
    );
    k.run_until(SimTime::from_secs(10));
    // 5 s busy (686.5 mJ... at 137 mW = 685 mJ) + 10 s idle floor 6.99 J.
    // The sleep-dispatch charge adds 5 dispatches × 0.137 mJ of accounting
    // but metered power only reflects CPU-busy quanta.
    let measured = k.meter().total_energy().as_joules_f64();
    let expected = 10.0 * 0.699 + 5.0 * 0.137;
    assert!(
        (measured - expected).abs() < 0.02,
        "measured {measured} J vs expected {expected} J"
    );
}

/// Backlight toggling from a program shows up on the meter.
#[test]
fn backlight_power_is_metered() {
    let mut k = kernel_no_decay();
    let r = funded(&mut k, "ui", 10);
    let mut step = 0;
    k.spawn_unprivileged(
        "ui",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            step += 1;
            match step {
                1 => {
                    ctx.set_backlight(true);
                    Step::SleepUntil(ctx.now() + SimDuration::from_secs(5))
                }
                2 => {
                    ctx.set_backlight(false);
                    Step::Exit
                }
                _ => Step::Exit,
            }
        })),
        r,
    );
    k.run_until(SimTime::from_secs(10));
    // ~5 s of +555 mW over the 699 mW floor (tolerate quantum rounding).
    let measured = k.meter().total_energy().as_joules_f64();
    let expected = 10.0 * 0.699 + 5.0 * 0.555;
    assert!(
        (measured - expected).abs() < 0.06,
        "measured {measured} vs {expected}"
    );
}

/// Battery percentage readouts quantise like the ARM9's 0–100 integer.
#[test]
fn battery_readout_tracks_drain() {
    let mut k = Kernel::new(KernelConfig {
        battery: Energy::from_joules(100),
        graph: GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
        ..KernelConfig::default()
    });
    let r = funded(&mut k, "spender", 60);
    let mut readings = Vec::new();
    let mut step = 0;
    k.spawn_unprivileged(
        "reader",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            step += 1;
            if step <= 3 {
                let pct = ctx.battery_percent();
                readings.push(pct);
                // Burn 10 J between readings.
                ctx.consume(ctx.active_reserve(), Energy::from_joules(10))
                    .unwrap();
                Step::SleepUntil(ctx.now() + SimDuration::from_secs(1))
            } else {
                Step::Exit
            }
        })),
        r,
    );
    k.run_until(SimTime::from_secs(5));
    // After moving 60 J out of the battery the first reading is 40%; the
    // consumed energy does not return.
    let battery_left = k
        .graph()
        .reserve(k.battery())
        .unwrap()
        .balance()
        .as_joules_f64();
    assert!((battery_left - 40.0).abs() < 0.01);
}

/// Threads blocked on netd do not burn CPU while waiting.
#[test]
fn blocked_threads_do_not_spin() {
    struct NeverGrant;
    impl cinder_kernel::NetStack for NeverGrant {
        fn request(
            &mut self,
            _env: &mut cinder_kernel::NetEnv<'_>,
            _req: cinder_kernel::SendRequest,
        ) -> cinder_kernel::SendVerdict {
            cinder_kernel::SendVerdict::Blocked
        }
        fn poll(&mut self, _env: &mut cinder_kernel::NetEnv<'_>) -> Vec<cinder_kernel::ThreadId> {
            Vec::new()
        }
    }
    let mut k = kernel_no_decay();
    k.install_net(Box::new(NeverGrant));
    let r = funded(&mut k, "sender", 10);
    let t = k.spawn_unprivileged(
        "sender",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            match ctx.net_send(100, 0) {
                Ok(cinder_kernel::NetSendStatus::Blocked) => Step::Block,
                _ => Step::Exit,
            }
        })),
        r,
    );
    k.run_until(SimTime::from_secs(30));
    // One dispatch charge only; the thread slept the rest.
    let consumed = k.thread_consumed(t);
    assert!(
        consumed <= Energy::from_millijoules(2),
        "blocked sender burned {consumed}"
    );
    assert!(!k.thread_exited(t));
}

/// Two kernels with different seeds diverge (radio jitter), same seed
/// agree — determinism is seed-scoped.
#[test]
fn seeds_scope_determinism() {
    let run = |seed| {
        let mut k = Kernel::new(KernelConfig {
            seed,
            graph: GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
            ..KernelConfig::default()
        });
        k.install_net(Box::new(cinder_net_stub::PassThrough));
        let r = funded(&mut k, "p", 50);
        let mut sent = false;
        k.spawn_unprivileged(
            "p",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                if !sent {
                    sent = true;
                    let _ = ctx.net_send(100, 0);
                }
                Step::SleepUntil(ctx.now() + SimDuration::from_secs(50))
            })),
            r,
        );
        k.run_until(SimTime::from_secs(40));
        k.meter().total_energy().as_microjoules()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(
        run(5),
        run(6),
        "different seeds should differ via radio jitter"
    );
}

/// Minimal pass-through stack used by the determinism test.
mod cinder_net_stub {
    use cinder_kernel::{NetEnv, NetStack, SendRequest, SendVerdict, ThreadId};

    pub struct PassThrough;

    impl NetStack for PassThrough {
        fn request(&mut self, env: &mut NetEnv<'_>, req: SendRequest) -> SendVerdict {
            env.transmit(&req, None);
            SendVerdict::Sent
        }
        fn poll(&mut self, _env: &mut NetEnv<'_>) -> Vec<ThreadId> {
            Vec::new()
        }
    }
}

/// The graph's flow tick, the scheduler quantum, and the meter interact
/// without losing energy across a long mixed run.
#[test]
fn long_mixed_run_conserves() {
    let mut k = Kernel::new(KernelConfig::default()); // decay ON
    let root = Actor::kernel();
    let battery = k.battery();
    for i in 0..4 {
        let r = k
            .graph_mut()
            .create_reserve(&root, &format!("r{i}"), Label::default_label())
            .unwrap();
        k.graph_mut()
            .create_tap(
                &root,
                &format!("t{i}"),
                battery,
                r,
                RateSpec::constant(Power::from_milliwatts(10 + i * 20)),
                Label::default_label(),
            )
            .unwrap();
        k.spawn_unprivileged(&format!("spin{i}"), cinder_apps_stub::spinner(), r);
    }
    k.run_until(SimTime::from_secs(600));
    assert!(k.graph().totals().conserved());
}

mod cinder_apps_stub {
    use cinder_kernel::{Ctx, FnProgram, Program, Step};
    use cinder_sim::SimDuration;

    pub fn spinner() -> Box<dyn Program> {
        Box::new(FnProgram(|_: &mut Ctx<'_>| {
            Step::compute(SimDuration::from_millis(100))
        }))
    }
}
