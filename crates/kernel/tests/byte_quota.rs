//! Online §9 byte-quota enforcement at the kernel boundary.
//!
//! A thread whose `NetworkBytes` reserve cannot cover a send blocks *in the
//! kernel* — without being charged a byte or a joule of radio energy —
//! while remaining fully runnable for compute on its energy reserve. The
//! block is observably distinct from energy throttling
//! (`thread_bytes_blocked` / `thread_awaiting_bytes` vs
//! `thread_throttled`), taps refilling the plan un-block the send at the
//! next net poll, and the idle fast-forward stays bit-identical with
//! byte-gated workloads in the graph.

use cinder_apps::{PeriodicPoller, PollerLog};
use cinder_core::{quota, Actor, GraphConfig, Quantity, RateSpec, ReserveId, ResourceKind};
use cinder_kernel::{Ctx, FnProgram, Kernel, KernelConfig, NetSendStatus, Step, ThreadId};
use cinder_label::Label;
use cinder_net::{CoopNetd, UncoopStack};
use cinder_sim::{Energy, Power, SimDuration, SimTime};

fn kernel_no_decay(idle_skip: bool) -> Kernel {
    Kernel::new(KernelConfig {
        graph: GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
        seed: 11,
        idle_skip,
        ..KernelConfig::default()
    })
}

fn funded_energy(k: &mut Kernel, name: &str, joules: i64) -> ReserveId {
    let battery = k.battery();
    let g = k.graph_mut();
    let r = g
        .create_reserve(&Actor::kernel(), name, Label::default_label())
        .unwrap();
    g.transfer(&Actor::kernel(), battery, r, Energy::from_joules(joules))
        .unwrap();
    r
}

/// Creates a byte plan: a `NetworkBytes` root pool plus a plan reserve
/// holding `bytes`, returning the plan reserve.
fn byte_plan(k: &mut Kernel, pool_bytes: u64, plan_bytes: u64) -> ReserveId {
    let root = Actor::kernel();
    let g = k.graph_mut();
    let pool = g
        .create_root(&root, "plan-pool", Quantity::network_bytes(pool_bytes))
        .unwrap();
    let plan = g
        .create_reserve_kind(
            &root,
            "plan",
            Label::default_label(),
            ResourceKind::NetworkBytes,
        )
        .unwrap();
    g.transfer(&root, pool, plan, quota::bytes(plan_bytes))
        .unwrap();
    plan
}

fn assert_all_kinds_conserved(k: &Kernel) {
    for kind in ResourceKind::ALL {
        assert!(
            k.graph().totals_for(kind).conserved(),
            "{kind} not conserved: {:?}",
            k.graph().totals_for(kind)
        );
    }
}

/// The ISSUE's regression: byte reserve empty, energy reserve full — the
/// thread computes freely but blocks, uncharged, at its next send.
#[test]
fn empty_byte_reserve_blocks_send_unbilled() {
    let mut k = kernel_no_decay(false);
    k.install_net(Box::new(UncoopStack::new()));
    let energy = funded_energy(&mut k, "rich-energy", 100);
    let plan = byte_plan(&mut k, 10_000, 0); // plan holds nothing
    let mut computed = false;
    let t = k.spawn_unprivileged(
        "sender",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            if !computed {
                computed = true;
                return Step::compute(SimDuration::from_millis(200));
            }
            match ctx.net_send(1_000, 2_000) {
                Ok(NetSendStatus::Sent) => Step::Exit,
                Ok(NetSendStatus::Blocked) => Step::Block,
                Err(_) => Step::Exit,
            }
        })),
        energy,
    );
    k.set_thread_reserve_kind(t, ResourceKind::NetworkBytes, plan);
    k.run_until(SimTime::from_secs(5));

    // Compute ran on the full energy reserve…
    assert!(
        k.thread_consumed(t) >= Energy::from_microjoules(27_400),
        "200 ms of compute must have been charged: {}",
        k.thread_consumed(t)
    );
    assert_eq!(
        k.thread_throttled(t),
        SimDuration::ZERO,
        "never energy-gated"
    );
    // …but the send is held on bytes, with the plan untouched.
    assert!(k.thread_awaiting_bytes(t), "send must still be queued");
    assert_eq!(k.thread_bytes_blocked(t), 1);
    let plan_r = k.graph().reserve(plan).unwrap();
    assert_eq!(plan_r.balance(), Energy::ZERO, "no byte was charged");
    assert_eq!(plan_r.stats().consumed, Energy::ZERO);
    // The radio never powered up for the held send.
    assert_eq!(k.arm9().radio().stats().activations, 0);
    assert_eq!(k.arm9().radio().stats().tx_bytes, 0);
    assert_all_kinds_conserved(&k);
}

/// A tap refilling the plan un-blocks the held send at a later net poll,
/// and the transmitted/received bytes are debited online.
#[test]
fn tap_refilled_plan_releases_blocked_send() {
    let mut k = kernel_no_decay(false);
    k.install_net(Box::new(UncoopStack::new()));
    let energy = funded_energy(&mut k, "energy", 100);
    let plan = byte_plan(&mut k, 1_000_000, 0);
    // 1 KB/s of plan drip: the 3 KB send is covered after ~3 s.
    let pool = k.graph().root(ResourceKind::NetworkBytes).unwrap();
    k.graph_mut()
        .create_tap(
            &Actor::kernel(),
            "drip",
            pool,
            plan,
            RateSpec::constant(quota::bytes_per_sec(1_000)),
            Label::default_label(),
        )
        .unwrap();
    let mut awaiting = false;
    let t = k.spawn_unprivileged(
        "sender",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            if awaiting {
                return match ctx.net_take_result() {
                    Some(NetSendStatus::Sent) => Step::Exit,
                    _ => Step::Block, // spurious wake: keep waiting
                };
            }
            match ctx.net_send(1_000, 2_000) {
                Ok(NetSendStatus::Sent) => Step::Exit,
                Ok(NetSendStatus::Blocked) => {
                    awaiting = true;
                    Step::Block
                }
                Err(_) => Step::Exit,
            }
        })),
        energy,
    );
    k.set_thread_reserve_kind(t, ResourceKind::NetworkBytes, plan);
    k.run_until(SimTime::from_secs(10));

    assert!(
        k.thread_exited(t),
        "send must complete once the plan covers it"
    );
    assert_eq!(k.thread_bytes_blocked(t), 1, "the first attempt blocked");
    assert!(!k.thread_awaiting_bytes(t));
    assert_eq!(k.arm9().radio().stats().tx_bytes, 1_000);
    // tx debited at the radio; rx billed on delivery (within the horizon).
    let stats = k.graph().reserve(plan).unwrap().stats();
    assert_eq!(stats.consumed, quota::bytes(3_000), "1000 tx + 2000 rx");
    assert_all_kinds_conserved(&k);
}

/// An exhausted fixed plan stops a poller mid-run: polls that completed
/// before exhaustion transmitted, later ones are held, and the radio goes
/// quiet — behaviour an offline replay cannot produce.
#[test]
fn exhausted_plan_silences_the_poller_online() {
    let run = |plan_bytes: Option<u64>| -> (u64, u64, Kernel) {
        let mut k = kernel_no_decay(false);
        k.install_net(Box::new(UncoopStack::new()));
        let energy = funded_energy(&mut k, "energy", 1_000);
        let log = PollerLog::shared();
        let t = k.spawn_unprivileged("rss", Box::new(PeriodicPoller::rss(log.clone())), energy);
        if let Some(bytes) = plan_bytes {
            let plan = byte_plan(&mut k, bytes, bytes);
            k.set_thread_reserve_kind(t, ResourceKind::NetworkBytes, plan);
        }
        k.run_until(SimTime::from_secs(1_800));
        let ops = log.borrow().sends.len() as u64;
        (ops, k.thread_bytes_blocked(t), k)
    };

    // RSS polls are 256 tx + 8192 rx = 8448 bytes each; 20 KB covers two.
    let (capped_ops, blocked, capped_k) = run(Some(20_000));
    let (free_ops, _, _) = run(None);
    assert_eq!(capped_ops, 2, "20 KB covers exactly two polls");
    assert!(blocked >= 1, "the third poll must block on bytes");
    assert!(
        free_ops >= 25,
        "an unrestricted poller keeps polling: {free_ops}"
    );
    assert!(capped_k
        .thread_ids()
        .iter()
        .any(|&t| capped_k.thread_awaiting_bytes(t)));
    // The plan is nearly spent: 20_000 − 2 × 8448 = 3_104 bytes left.
    let plan = capped_k
        .graph()
        .reserves()
        .find(|(_, r)| r.name() == "plan")
        .map(|(id, _)| id)
        .unwrap();
    assert_eq!(
        quota::as_bytes(capped_k.graph().reserve(plan).unwrap().balance()),
        3_104
    );
    assert_all_kinds_conserved(&capped_k);
}

/// Killing a byte-blocked thread abandons its held send: the kernel must
/// not keep reporting it as awaiting bytes (or pin the idle fast-forward
/// on a send that can never be retried).
#[test]
fn killing_a_byte_blocked_thread_drops_its_pending_send() {
    let mut k = kernel_no_decay(false);
    k.install_net(Box::new(UncoopStack::new()));
    let energy = funded_energy(&mut k, "energy", 100);
    let plan = byte_plan(&mut k, 10_000, 0);
    let t = k.spawn_unprivileged(
        "sender",
        Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
            match ctx.net_send(1_000, 0) {
                Ok(NetSendStatus::Sent) => Step::Exit,
                Ok(NetSendStatus::Blocked) => Step::Block,
                Err(_) => Step::Exit,
            }
        })),
        energy,
    );
    k.set_thread_reserve_kind(t, ResourceKind::NetworkBytes, plan);
    k.run_until(SimTime::from_secs(1));
    assert!(k.thread_awaiting_bytes(t));
    k.kill(t);
    assert!(!k.thread_awaiting_bytes(t), "kill abandons the held send");
    k.run_until(SimTime::from_secs(2));
    assert_all_kinds_conserved(&k);
}

/// The idle fast-forward must stay bit-identical with byte-gated senders
/// in the graph — blocked-on-bytes quanta are not skippable (the plan may
/// be refilling), and everything else still is.
#[test]
fn idle_skip_is_bit_identical_with_byte_quotas() {
    #[derive(Debug, PartialEq)]
    struct Fingerprint {
        meter_uj: i64,
        balances: Vec<(String, i64)>,
        bytes_blocked: Vec<u64>,
        radio_tx: u64,
        activations: u64,
        ops: u64,
    }

    let run = |idle_skip: bool, coop: bool, plan_bytes: u64| -> Fingerprint {
        let mut k = kernel_no_decay(idle_skip);
        if coop {
            let netd = CoopNetd::with_defaults(k.graph_mut());
            k.install_net(Box::new(netd));
        } else {
            k.install_net(Box::new(UncoopStack::new()));
        }
        let log = PollerLog::shared();
        let mut threads: Vec<ThreadId> = Vec::new();
        for (name, feed_uw) in [("rss", 37_500u64), ("mail", 37_500)] {
            let battery = k.battery();
            let g = k.graph_mut();
            let r = g
                .create_reserve(&Actor::kernel(), name, Label::default_label())
                .unwrap();
            g.create_tap(
                &Actor::kernel(),
                &format!("{name}-tap"),
                battery,
                r,
                RateSpec::constant(Power::from_microwatts(feed_uw)),
                Label::default_label(),
            )
            .unwrap();
            let program: Box<dyn cinder_kernel::Program> = if name == "rss" {
                Box::new(PeriodicPoller::rss(log.clone()))
            } else {
                Box::new(PeriodicPoller::mail(log.clone()))
            };
            threads.push(k.spawn_unprivileged(name, program, r));
        }
        let plan = byte_plan(&mut k, plan_bytes, plan_bytes);
        for &t in &threads {
            k.set_thread_reserve_kind(t, ResourceKind::NetworkBytes, plan);
        }
        k.run_until(SimTime::from_secs(900));
        assert_all_kinds_conserved(&k);
        let ops = log.borrow().sends.len() as u64;
        Fingerprint {
            meter_uj: k.meter().total_energy().as_microjoules(),
            balances: k
                .graph()
                .reserves()
                .map(|(_, r)| (r.name().to_string(), r.balance().as_microjoules()))
                .collect(),
            bytes_blocked: threads.iter().map(|&t| k.thread_bytes_blocked(t)).collect(),
            radio_tx: k.arm9().radio().stats().tx_bytes,
            activations: k.arm9().radio().stats().activations,
            ops,
        }
    };

    for coop in [false, true] {
        // A plan that exhausts mid-run and one that never binds.
        for plan_bytes in [30_000u64, 5_000_000] {
            let plain = run(false, coop, plan_bytes);
            let skipped = run(true, coop, plan_bytes);
            assert_eq!(
                plain, skipped,
                "idle_skip diverged (coop={coop}, plan={plan_bytes})"
            );
        }
    }
}
