//! Differential tests for the idle fast-forward (`KernelConfig::idle_skip`).
//!
//! The flag must be a pure wall-clock optimisation: every observable — the
//! meter's integrated energy, every reserve balance, radio statistics,
//! per-thread accounting — is bit-identical with and without it, across
//! sleeping workloads, radio episodes, and the pooling (netd) stack whose
//! blocked senders must keep being polled.

use cinder_apps::{PeriodicPoller, PollerLog};
use cinder_core::{Actor, GraphConfig, RateSpec, ReserveId};
use cinder_kernel::{Ctx, FnProgram, Kernel, KernelConfig, Step};
use cinder_label::Label;
use cinder_net::{CoopNetd, UncoopStack};
use cinder_sim::{Energy, Power, SimDuration, SimTime};

/// Everything observable about a finished run, for exact comparison.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    now_us: u64,
    meter_uj: i64,
    balances: Vec<i64>,
    consumed: Vec<i64>,
    radio_activations: u64,
    radio_tx: u64,
    radio_rx: u64,
    thread_energy: Vec<i64>,
    thread_throttled_us: Vec<u64>,
}

fn fingerprint(k: &Kernel) -> Fingerprint {
    Fingerprint {
        now_us: k.now().as_micros(),
        meter_uj: k.meter().total_energy().as_microjoules(),
        balances: k
            .graph()
            .reserves()
            .map(|(_, r)| r.balance().as_microjoules())
            .collect(),
        consumed: k
            .graph()
            .reserves()
            .map(|(_, r)| r.stats().consumed.as_microjoules())
            .collect(),
        radio_activations: k.arm9().radio().stats().activations,
        radio_tx: k.arm9().radio().stats().tx_bytes,
        radio_rx: k.arm9().radio().stats().rx_bytes,
        thread_energy: k
            .thread_ids()
            .iter()
            .map(|&t| k.thread_consumed(t).as_microjoules())
            .collect(),
        thread_throttled_us: k
            .thread_ids()
            .iter()
            .map(|&t| k.thread_throttled(t).as_micros())
            .collect(),
    }
}

fn config(idle_skip: bool) -> KernelConfig {
    KernelConfig {
        seed: 11,
        idle_skip,
        ..KernelConfig::default()
    }
}

fn tapped(k: &mut Kernel, name: &str, uw: u64) -> ReserveId {
    let root = Actor::kernel();
    let battery = k.battery();
    let r = k
        .graph_mut()
        .create_reserve(&root, name, Label::default_label())
        .unwrap();
    k.graph_mut()
        .create_tap(
            &root,
            &format!("{name}-tap"),
            battery,
            r,
            RateSpec::constant(Power::from_microwatts(uw)),
            Label::default_label(),
        )
        .unwrap();
    r
}

/// Sleep-heavy square wave (the shape idle skip accelerates most), with
/// decay ON so the skipped spans also exercise the decay grid.
#[test]
fn square_wave_identical_with_and_without_skip() {
    let run = |idle_skip: bool| {
        let mut k = Kernel::new(config(idle_skip));
        let r = tapped(&mut k, "wave", 200_000);
        let mut computing = false;
        k.spawn_unprivileged(
            "wave",
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                computing = !computing;
                if computing {
                    Step::compute(SimDuration::from_millis(300))
                } else {
                    Step::SleepUntil(ctx.now() + SimDuration::from_secs(20))
                }
            })),
            r,
        );
        k.run_until(SimTime::from_secs(400));
        fingerprint(&k)
    };
    assert_eq!(run(false), run(true));
}

/// Uncooperative pollers: radio ramps, plateaus, and sleep timeouts all
/// land on identical boundaries under the fast-forward.
#[test]
fn uncoop_pollers_identical_with_and_without_skip() {
    let run = |idle_skip: bool| {
        let mut k = Kernel::new(config(idle_skip));
        k.install_net(Box::new(UncoopStack::new()));
        let log = PollerLog::shared();
        let r_rss = tapped(&mut k, "rss", 37_500);
        let r_mail = tapped(&mut k, "mail", 37_500);
        k.spawn_unprivileged("rss", Box::new(PeriodicPoller::rss(log.clone())), r_rss);
        k.spawn_unprivileged("mail", Box::new(PeriodicPoller::mail(log.clone())), r_mail);
        k.run_until(SimTime::from_secs(600));
        let sends = log.borrow().sends.clone();
        (fingerprint(&k), sends)
    };
    assert_eq!(run(false), run(true));
}

/// Cooperative netd: blocked senders force per-quantum polling (the stack
/// reports non-idle), so pooling grants land at identical instants.
#[test]
fn coop_netd_identical_with_and_without_skip() {
    let run = |idle_skip: bool| {
        let mut k = Kernel::new(config(idle_skip));
        let netd = CoopNetd::with_defaults(k.graph_mut());
        k.install_net(Box::new(netd));
        let log = PollerLog::shared();
        let r_rss = tapped(&mut k, "rss", 37_500);
        let r_mail = tapped(&mut k, "mail", 37_500);
        k.spawn_unprivileged("rss", Box::new(PeriodicPoller::rss(log.clone())), r_rss);
        k.spawn_unprivileged("mail", Box::new(PeriodicPoller::mail(log.clone())), r_mail);
        k.run_until(SimTime::from_secs(600));
        let (sends, blocked) = {
            let log = log.borrow();
            (log.sends.clone(), log.blocked_first)
        };
        (fingerprint(&k), sends, blocked)
    };
    let (base, base_sends, base_blocked) = run(false);
    let (fast, fast_sends, fast_blocked) = run(true);
    assert_eq!(base, fast);
    assert_eq!(base_sends, fast_sends);
    assert_eq!(base_blocked, fast_blocked);
    assert!(base_blocked >= 2, "scenario must exercise pooling");
}

/// A ready-but-starved thread pins the loop: its tap may refill the
/// reserve mid-span, so the skip must not engage while it exists — and the
/// throttled-time accounting must agree exactly.
#[test]
fn starved_ready_thread_blocks_skipping_correctly() {
    let run = |idle_skip: bool| {
        let mut k = Kernel::new(config(idle_skip));
        // A tap so slow the thread runs one quantum every ~7 s.
        let r = tapped(&mut k, "trickle", 200);
        let t = k.spawn_unprivileged(
            "trickle",
            Box::new(FnProgram(|_: &mut Ctx<'_>| {
                Step::compute(SimDuration::from_millis(10))
            })),
            r,
        );
        k.run_until(SimTime::from_secs(120));
        (fingerprint(&k), k.thread_throttled(t))
    };
    let (base, base_throttled) = run(false);
    let (fast, fast_throttled) = run(true);
    assert_eq!(base, fast);
    assert_eq!(base_throttled, fast_throttled);
    assert!(
        base_throttled > SimDuration::from_secs(60),
        "scenario must exercise starvation ({base_throttled:?})"
    );
}

/// Sanity: with everything exited, the skip sprints to the horizon and the
/// meter still integrates the idle floor exactly.
#[test]
fn idle_tail_meters_exactly() {
    let mut k = Kernel::new(KernelConfig {
        idle_skip: true,
        graph: GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
        ..KernelConfig::default()
    });
    let root = Actor::kernel();
    let battery = k.battery();
    let r = k
        .graph_mut()
        .create_reserve(&root, "brief", Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&root, battery, r, Energy::from_joules(1))
        .unwrap();
    let mut done = false;
    k.spawn_unprivileged(
        "brief",
        Box::new(FnProgram(move |_: &mut Ctx<'_>| {
            if done {
                Step::Exit
            } else {
                done = true;
                Step::compute(SimDuration::from_millis(10))
            }
        })),
        r,
    );
    k.run_until(SimTime::from_secs(1_000));
    // 699 mW idle floor for 1000 s + one busy quantum of 137 mW.
    let expected = 699_000 * 1_000 + 137_000 / 100;
    assert_eq!(k.meter().total_energy().as_microjoules(), expected);
}
