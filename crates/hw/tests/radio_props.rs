//! Property tests for the radio state machine: the cost estimator and the
//! physical model must agree, and the episode accounting must be sound
//! under arbitrary traffic.

use cinder_hw::{RadioModel, RadioParams};
use cinder_sim::{Energy, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

/// Arbitrary traffic: (gap-to-next-send in ms, bytes).
fn arb_traffic() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((1u64..60_000, 0u64..10_000), 1..40)
}

proptest! {
    /// Whatever the traffic, the physically-integrated episode energy stays
    /// within the drawn distribution's bounds: every disjoint episode costs
    /// at least `activation_min` and at most `activation_max` plus the
    /// plateau extension for its active time.
    #[test]
    fn episode_energy_is_bounded(traffic in arb_traffic(), seed in 0u64..1_000) {
        let params = RadioParams::htc_dream();
        let mut radio = RadioModel::new(params);
        let mut rng = SimRng::seed_from_u64(seed);
        let mut t = SimTime::ZERO;
        let mut extra = Energy::ZERO;
        for (gap_ms, bytes) in traffic {
            t += SimDuration::from_millis(gap_ms);
            extra += radio.advance_integrating(t);
            radio.transmit(t, bytes, &mut rng);
        }
        // Drain the tail.
        let end = t + SimDuration::from_secs(30);
        extra += radio.advance_integrating(end);
        prop_assert!(!radio.is_active());

        let active = radio.total_active(end);
        let activations = radio.stats().activations;
        prop_assert!(activations >= 1);
        // Lower bound: each episode ≥ min activation energy (20 s at the
        // lowest plateau) less 1 mJ of integer-µW plateau truncation;
        // upper: ramp + max plateau over the active time.
        let min_total = Energy::from_millijoules((8_800 - 1) * activations as i64);
        // Max plateau = (11.9 - 1.3) / 19 s ≈ 558 mW; ramp is 1.3 W for 1 s.
        let max_plateau_uw = 558_000u64;
        let ramp_extra = Energy::from_millijoules(1_300 * activations as i64);
        let max_total = ramp_extra
            + cinder_sim::Power::from_microwatts(max_plateau_uw).energy_over(active)
            + Energy::from_millijoules(100); // rounding slack
        prop_assert!(extra >= min_total, "extra {extra:?} < min {min_total:?}");
        prop_assert!(extra <= max_total, "extra {extra:?} > max {max_total:?}");
    }

    /// The marginal-cost estimator is monotone in the idle gap while
    /// active: waiting longer never makes the next send cheaper (§5.5.2's
    /// worked example).
    #[test]
    fn cost_estimate_monotone_in_gap(
        g1 in 0u64..19_000,
        g2 in 0u64..19_000,
        bytes in 0u64..5_000,
    ) {
        let (lo, hi) = (g1.min(g2), g1.max(g2));
        let mut radio = RadioModel::new(RadioParams::htc_dream());
        let mut rng = SimRng::seed_from_u64(7);
        radio.transmit(SimTime::ZERO, 1, &mut rng);
        let c_lo = radio.cost_estimate(SimTime::from_millis(lo), bytes);
        let c_hi = radio.cost_estimate(SimTime::from_millis(hi), bytes);
        prop_assert!(c_lo <= c_hi, "estimate not monotone: {c_lo:?} > {c_hi:?}");
    }

    /// Active windows are disjoint, ordered, and cover exactly
    /// `total_active`.
    #[test]
    fn windows_partition_active_time(traffic in arb_traffic(), seed in 0u64..1_000) {
        let mut radio = RadioModel::new(RadioParams::htc_dream());
        let mut rng = SimRng::seed_from_u64(seed);
        let mut t = SimTime::ZERO;
        for (gap_ms, bytes) in traffic {
            t += SimDuration::from_millis(gap_ms);
            radio.advance_to(t);
            radio.transmit(t, bytes, &mut rng);
        }
        let end = t + SimDuration::from_secs(45);
        radio.advance_to(end);
        let windows = radio.active_windows(end);
        let mut covered = SimDuration::ZERO;
        let mut prev_end: Option<SimTime> = None;
        for (a, b) in windows {
            prop_assert!(a <= b);
            if let Some(pe) = prev_end {
                prop_assert!(a >= pe, "windows overlap");
            }
            covered += b - a;
            prev_end = Some(b);
        }
        prop_assert_eq!(covered, radio.total_active(end));
    }

    /// The estimator's idle quote matches the actual mean activation within
    /// the distribution's spread, for any byte count.
    #[test]
    fn idle_estimate_is_activation_plus_data(bytes in 0u64..100_000) {
        let radio = RadioModel::new(RadioParams::htc_dream());
        let est = radio.cost_estimate(SimTime::from_secs(1), bytes);
        let data = RadioParams::htc_dream().data_energy(bytes);
        prop_assert_eq!(est, Energy::from_millijoules(9_500) + data);
    }

    /// Data energy is monotone and linear-ish in bytes.
    #[test]
    fn data_energy_monotone(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let p = RadioParams::htc_dream();
        if a <= b {
            prop_assert!(p.data_energy(a) <= p.data_energy(b));
        }
        // Linearity within rounding: f(a) + f(b) ≈ f(a+b).
        let sum = p.data_energy(a) + p.data_energy(b);
        let joint = p.data_energy(a + b);
        prop_assert!((joint - sum).as_microjoules().abs() <= 1);
    }
}

#[test]
fn receive_never_starts_an_episode() {
    // Paper/model invariant: reception happens within an active episode
    // (the network pages the device as part of the activation).
    let mut radio = RadioModel::new(RadioParams::htc_dream());
    let mut rng = SimRng::seed_from_u64(1);
    radio.transmit(SimTime::ZERO, 1, &mut rng);
    let before = radio.stats().activations;
    radio.receive(SimTime::from_secs(3), 10_000);
    assert_eq!(radio.stats().activations, before);
}
