//! The laptop platform of the image-viewer experiment.
//!
//! §6.2's evaluation ran "on a Lenovo T60p laptop", not the phone: the
//! interesting dynamics are reserve levels vs per-byte download cost, with
//! no radio-activation cliff. [`LaptopNet`] models a Wi-Fi NIC whose energy
//! is dominated by per-byte transfer cost, calibrated so that one of the
//! experiment's ~2.7 MiB images costs ~0.2 J — the full scale of the
//! downloader reserve in Figs 10/11.

use cinder_sim::{Energy, SimDuration};

/// A throughput + per-byte energy model of a laptop NIC.
///
/// Per-byte cost is expressed per KiB because it is well below 1 µJ/byte.
#[derive(Debug, Clone, Copy)]
pub struct LaptopNet {
    /// Energy billed per KiB downloaded.
    pub per_kib: Energy,
    /// Sustained download throughput.
    pub throughput_bytes_per_s: u64,
}

impl LaptopNet {
    /// The T60p-style defaults used by the Figs 10/11 reproduction:
    /// 76 µJ/KiB (≈0.21 J per 2.7 MiB image) at 500 KiB/s.
    pub fn t60p() -> Self {
        LaptopNet {
            per_kib: Energy::from_microjoules(76),
            throughput_bytes_per_s: 512_000,
        }
    }

    /// Energy to download `bytes`.
    pub fn download_energy(&self, bytes: u64) -> Energy {
        let uj = (self.per_kib.as_microjoules() as i128) * (bytes as i128) / 1024;
        Energy::from_microjoules(uj as i64)
    }

    /// Wall-clock duration to download `bytes`.
    pub fn download_duration(&self, bytes: u64) -> SimDuration {
        let us = (bytes as u128) * 1_000_000 / (self.throughput_bytes_per_s as u128);
        SimDuration::from_micros((us as u64).max(1_000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_scales_with_bytes() {
        let n = LaptopNet::t60p();
        assert_eq!(n.download_duration(512_000), SimDuration::from_secs(1));
        assert_eq!(n.download_duration(256_000), SimDuration::from_millis(500));
    }

    #[test]
    fn full_image_costs_about_a_fifth_joule() {
        // ~2.7 MiB image ≈ 0.21 J: the reserve scale of Figs 10/11.
        let n = LaptopNet::t60p();
        let image = 2_831_155; // ≈ 2.7 MiB
        let e = n.download_energy(image).as_joules_f64();
        assert!((0.19..=0.23).contains(&e), "image energy {e} J");
    }

    #[test]
    fn energy_is_monotone_in_bytes() {
        let n = LaptopNet::t60p();
        assert!(n.download_energy(2_000_000) > n.download_energy(1_000_000));
        assert_eq!(n.download_energy(0), Energy::ZERO);
    }
}
