//! GPS receiver power model.
//!
//! The paper names the GPS as one of the "most energy hungry, dynamic, and
//! informative components" managed by the closed ARM9 (§4.1, Fig 2) but
//! never evaluates a GPS workload. This model is the plug the kernel's
//! peripheral layer fills: `cinder-kernel` exposes the receiver as a
//! reserve-gated [`Peripheral`](../../cinder_kernel) — enabling it requires
//! an acquired energy reserve, the acquisition draw is drained from that
//! reserve by a kernel tap every flow tick, and a reserve that can no
//! longer fund a quantum forcibly powers the receiver down. The
//! `cinder-apps` `Navigator` workload duty-cycles it for periodic fixes,
//! stretching its fix interval as the reserve drops.

use cinder_sim::Power;

use crate::display::FULL_DRIVE_PPM;

/// An on/off GPS receiver model with a drive level (tracking modes below
/// full acquisition draw).
#[derive(Debug, Clone, Copy)]
pub struct Gps {
    acquisition_power: Power,
    drive_ppm: u64,
    on: bool,
}

impl Gps {
    /// A GPS drawing ~350 mW while acquiring/tracking (typical for the
    /// MSM7201A era; the paper does not publish a figure).
    pub fn htc_dream() -> Self {
        Gps {
            acquisition_power: Power::from_milliwatts(350),
            drive_ppm: FULL_DRIVE_PPM,
            on: false,
        }
    }

    /// Powers the receiver on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.on = on;
    }

    /// Whether the receiver is on.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Sets the drive level in ppm of the full acquisition draw, clamped
    /// to `1..=`[`FULL_DRIVE_PPM`].
    pub fn set_drive_ppm(&mut self, ppm: u64) {
        self.drive_ppm = ppm.clamp(1, FULL_DRIVE_PPM);
    }

    /// The current drive level in ppm.
    pub fn drive_ppm(&self) -> u64 {
        self.drive_ppm
    }

    /// The draw at full drive, regardless of state.
    pub fn full_power(&self) -> Power {
        self.acquisition_power
    }

    /// The power currently drawn above idle.
    pub fn power(&self) -> Power {
        if self.on {
            self.acquisition_power.scale_ppm(self.drive_ppm)
        } else {
            Power::ZERO
        }
    }
}

impl Default for Gps {
    fn default() -> Self {
        Gps::htc_dream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggling() {
        let mut g = Gps::htc_dream();
        assert_eq!(g.power(), Power::ZERO);
        g.set_enabled(true);
        assert_eq!(g.power(), Power::from_milliwatts(350));
        assert!(g.is_enabled());
    }

    #[test]
    fn drive_scales_tracking_power() {
        let mut g = Gps::htc_dream();
        g.set_enabled(true);
        g.set_drive_ppm(500_000);
        assert_eq!(g.power(), Power::from_milliwatts(175));
        assert_eq!(g.full_power(), Power::from_milliwatts(350));
    }
}
