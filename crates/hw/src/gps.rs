//! GPS stub.
//!
//! The paper names the GPS as one of the "most energy hungry, dynamic, and
//! informative components" managed by the closed ARM9 (§4.1, Fig 2) but
//! never evaluates a GPS workload. The stub preserves the architectural
//! boundary — GPS is only reachable through the ARM9 facade — and a
//! plausible power state, so future workloads have somewhere to plug in.

use cinder_sim::Power;

/// A minimal on/off GPS receiver model.
#[derive(Debug, Clone, Copy)]
pub struct Gps {
    acquisition_power: Power,
    on: bool,
}

impl Gps {
    /// A GPS drawing ~350 mW while acquiring/tracking (typical for the
    /// MSM7201A era; the paper does not publish a figure).
    pub fn htc_dream() -> Self {
        Gps {
            acquisition_power: Power::from_milliwatts(350),
            on: false,
        }
    }

    /// Powers the receiver on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.on = on;
    }

    /// Whether the receiver is on.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// The power currently drawn above idle.
    pub fn power(&self) -> Power {
        if self.on {
            self.acquisition_power
        } else {
            Power::ZERO
        }
    }
}

impl Default for Gps {
    fn default() -> Self {
        Gps::htc_dream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggling() {
        let mut g = Gps::htc_dream();
        assert_eq!(g.power(), Power::ZERO);
        g.set_enabled(true);
        assert_eq!(g.power(), Power::from_milliwatts(350));
        assert!(g.is_enabled());
    }
}
