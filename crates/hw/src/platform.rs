//! Whole-platform power aggregation.
//!
//! The meter measures the device at its supply rails; total draw is the
//! idle floor plus each active component's contribution (the linear
//! state-based model of §4.1–4.2, as in ECOSystem and the paper itself).

use cinder_sim::Power;

use crate::cpu::{CpuKind, CpuModel};
use crate::display::Display;
use crate::gps::Gps;

/// The HTC Dream's published platform constants.
#[derive(Debug, Clone, Copy)]
pub struct DreamConstants {
    /// Power with the platform idle and screen dark (699 mW).
    pub idle: Power,
}

impl DreamConstants {
    /// §4.2's measurements.
    pub fn htc_dream() -> Self {
        DreamConstants {
            idle: Power::from_milliwatts(699),
        }
    }
}

impl Default for DreamConstants {
    fn default() -> Self {
        DreamConstants::htc_dream()
    }
}

/// Aggregates component states into total platform power.
///
/// The radio is intentionally *not* stored here: it lives behind the ARM9
/// facade, and its extra power is passed in by the kernel's device loop —
/// mirroring the two-processor split of Fig 2.
#[derive(Debug)]
pub struct PlatformPower {
    constants: DreamConstants,
    /// CPU model and the kind of stream currently running (None = idle).
    pub cpu: CpuModel,
    cpu_running: Option<CpuKind>,
    /// The display backlight.
    pub display: Display,
    /// The GPS receiver.
    pub gps: Gps,
}

impl PlatformPower {
    /// An idle HTC Dream.
    pub fn htc_dream() -> Self {
        PlatformPower {
            constants: DreamConstants::htc_dream(),
            cpu: CpuModel::htc_dream(),
            cpu_running: None,
            display: Display::htc_dream(),
            gps: Gps::htc_dream(),
        }
    }

    /// The idle floor.
    pub fn idle_power(&self) -> Power {
        self.constants.idle
    }

    /// Marks the CPU busy with a stream of `kind` (or idle with `None`).
    pub fn set_cpu(&mut self, kind: Option<CpuKind>) {
        self.cpu_running = kind;
    }

    /// Whether the CPU is busy.
    pub fn cpu_busy(&self) -> bool {
        self.cpu_running.is_some()
    }

    /// Total platform power given the radio's current extra draw.
    pub fn total(&self, radio_extra: Power) -> Power {
        let mut p = self.constants.idle;
        if let Some(kind) = self.cpu_running {
            p += self.cpu.power(kind);
        }
        p += self.display.power();
        p += self.gps.power();
        p += radio_extra;
        p
    }
}

impl Default for PlatformPower {
    fn default() -> Self {
        PlatformPower::htc_dream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_floor_is_699_mw() {
        let p = PlatformPower::htc_dream();
        assert_eq!(p.total(Power::ZERO), Power::from_milliwatts(699));
    }

    #[test]
    fn components_stack_linearly() {
        let mut p = PlatformPower::htc_dream();
        p.set_cpu(Some(CpuKind::MemoryIntensive));
        p.display.set_backlight(true);
        // 699 + 137 + 555 = 1391 mW, plus 400 mW of radio.
        assert_eq!(
            p.total(Power::from_milliwatts(400)),
            Power::from_milliwatts(1_791)
        );
        p.set_cpu(None);
        assert!(!p.cpu_busy());
        assert_eq!(p.total(Power::ZERO), Power::from_milliwatts(699 + 555));
    }

    /// Exhaustive component-sum property: over *every* combination of CPU
    /// state, backlight state and drive, GPS state and drive, and a sample
    /// of radio draws, the total is exactly the idle floor plus each active
    /// component's own reading — no cross terms, no missed component.
    #[test]
    fn total_is_component_sum_for_all_state_combinations() {
        let cpu_states = [None, Some(CpuKind::Integer), Some(CpuKind::MemoryIntensive)];
        let drives = [1u64, 250_000, 400_000, 1_000_000];
        let radios = [0u64, 128, 400];
        let mut combos = 0;
        for cpu in cpu_states {
            for display_on in [false, true] {
                for &display_drive in &drives {
                    for gps_on in [false, true] {
                        for &gps_drive in &drives {
                            for &radio_mw in &radios {
                                let mut p = PlatformPower::htc_dream();
                                p.set_cpu(cpu);
                                p.display.set_backlight(display_on);
                                p.display.set_drive_ppm(display_drive);
                                p.gps.set_enabled(gps_on);
                                p.gps.set_drive_ppm(gps_drive);
                                let radio = Power::from_milliwatts(radio_mw);
                                let mut expected = p.idle_power();
                                if let Some(kind) = cpu {
                                    expected += p.cpu.power(kind);
                                }
                                expected += p.display.power();
                                expected += p.gps.power();
                                expected += radio;
                                assert_eq!(
                                    p.total(radio),
                                    expected,
                                    "cpu {cpu:?} display {display_on}@{display_drive} \
                                     gps {gps_on}@{gps_drive} radio {radio_mw} mW"
                                );
                                combos += 1;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(combos, 3 * 2 * 4 * 2 * 4 * 3);
    }

    #[test]
    fn paper_idle_plus_backlight() {
        // §4.2: 699 mW idling "and another 555 mW when the backlight is on".
        let mut p = PlatformPower::htc_dream();
        p.display.set_backlight(true);
        assert_eq!(p.total(Power::ZERO), Power::from_milliwatts(1_254));
    }
}
