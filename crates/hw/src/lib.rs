//! Device power models for the Cinder reproduction.
//!
//! The paper measures the HTC Dream with a bench supply and builds "a model
//! from offline-measurements of device power states in a controlled setting"
//! (§4.1). This crate *is* that model, with the published constants:
//!
//! | state | power | source |
//! |---|---|---|
//! | platform idle | 699 mW | §4.2 |
//! | backlight on | +555 mW | §4.2 |
//! | CPU busy | +137 mW | §4.2 |
//! | memory-intensive stream | ×1.13 on CPU | §4.2 |
//! | radio activation episode | 9.5 J mean (8.8–11.9 J) | §4.3, Fig 4 |
//! | radio inactivity timeout | 20 s, fixed by the closed ARM9 | §4.3 |
//!
//! Modules:
//!
//! * [`cpu`] — CPU busy/idle power, instruction-mix factor.
//! * [`display`] — backlight.
//! * [`radio`] — the GSM data-path state machine with its expensive
//!   activation episodes, the heart of Figs 3, 4, 13, 14 and Table 1.
//! * [`battery`] — capacity plus the ARM9's coarse 0–100 level readout.
//! * [`gps`] — the receiver's acquisition/tracking draw, driven by the
//!   kernel's reserve-gated peripheral layer.
//! * [`arm9`] — the closed-coprocessor facade: radio/GPS/battery are only
//!   reachable through it, and its policies (the 20 s timeout) cannot be
//!   changed, exactly the constraint §4.3 laments.
//! * [`platform`] — combines device states into total platform power for
//!   the meter.
//! * [`laptop`] — the Lenovo T60p-style platform of the image-viewer
//!   experiment (§6.2): per-byte-dominated NIC, no activation cliff.

pub mod arm9;
pub mod battery;
pub mod cpu;
pub mod display;
pub mod gps;
pub mod laptop;
pub mod platform;
pub mod radio;

pub use arm9::{Arm9, Arm9Error, Arm9Request, Arm9Response};
pub use battery::Battery;
pub use cpu::{CpuKind, CpuModel};
pub use display::{Display, FULL_DRIVE_PPM};
pub use gps::Gps;
pub use laptop::LaptopNet;
pub use platform::{DreamConstants, PlatformPower};
pub use radio::{RadioModel, RadioParams, RadioStats, TxOutcome};
