//! The closed ARM9 coprocessor facade.
//!
//! Paper §4.1 and Fig 2: the MSM7201A has two cores. Cinder runs on the
//! ARM11; "a secure, closed ARM9 co-processor manages the most energy
//! hungry, dynamic, and informative components (e.g. GPS, radio, and battery
//! sensors)". Software cannot touch those devices directly — it exchanges
//! messages over shared memory (which the paper's userspace `smdd` daemon
//! mediates), and it cannot change ARM9 policy: "Because the ARM9 is closed,
//! Cinder cannot change this inactivity timeout" (§4.3).
//!
//! [`Arm9`] enforces exactly that boundary: the radio, GPS control, and
//! battery sensor are private fields, reachable only through
//! [`Arm9::request`], and the timeout-change request is always refused.

use cinder_sim::{Energy, SimDuration, SimRng, SimTime};

use crate::battery::Battery;
use crate::gps::Gps;
use crate::radio::{RadioModel, RadioParams, TxOutcome};

/// A message to the ARM9 (the RIL/smdd request vocabulary, reduced to what
/// the evaluation needs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arm9Request {
    /// Transmit `bytes` on the data path (powers the radio up if needed).
    RadioTransmit {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Deliver `bytes` of received data to the host.
    RadioDeliver {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Read the battery level (0–100), given the root reserve's remaining
    /// energy.
    BatteryLevel {
        /// Remaining energy in the battery.
        remaining: Energy,
    },
    /// Enable or disable the GPS receiver.
    GpsPower {
        /// Desired state.
        on: bool,
    },
    /// Attempt to change the radio's inactivity timeout. The ARM9 is
    /// closed; this is always refused (§4.3).
    SetRadioTimeout {
        /// The (futile) requested timeout.
        timeout: SimDuration,
    },
}

/// A reply from the ARM9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arm9Response {
    /// Outcome of a transmit/deliver.
    Radio(TxOutcome),
    /// Battery percentage.
    BatteryLevel(u8),
    /// GPS state acknowledged.
    GpsAck,
}

/// Errors the ARM9 returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm9Error {
    /// The operation is controlled by closed firmware and cannot be
    /// performed from the application processor.
    ClosedFirmware,
}

impl std::fmt::Display for Arm9Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Arm9Error::ClosedFirmware => {
                write!(f, "ARM9 firmware is closed; operation refused")
            }
        }
    }
}

impl std::error::Error for Arm9Error {}

/// The coprocessor: sole owner of the radio, GPS, and battery sensor.
#[derive(Debug)]
pub struct Arm9 {
    radio: RadioModel,
    gps: Gps,
    battery: Battery,
}

impl Arm9 {
    /// An ARM9 managing a Dream radio and the given battery.
    pub fn new(radio_params: RadioParams, battery: Battery) -> Self {
        Arm9 {
            radio: RadioModel::new(radio_params),
            gps: Gps::htc_dream(),
            battery,
        }
    }

    /// Processes a request at time `now`.
    pub fn request(
        &mut self,
        now: SimTime,
        req: Arm9Request,
        rng: &mut SimRng,
    ) -> Result<Arm9Response, Arm9Error> {
        match req {
            Arm9Request::RadioTransmit { bytes } => {
                Ok(Arm9Response::Radio(self.radio.transmit(now, bytes, rng)))
            }
            Arm9Request::RadioDeliver { bytes } => {
                Ok(Arm9Response::Radio(self.radio.receive(now, bytes)))
            }
            Arm9Request::BatteryLevel { remaining } => Ok(Arm9Response::BatteryLevel(
                self.battery.level_percent(remaining),
            )),
            Arm9Request::GpsPower { on } => {
                self.gps.set_enabled(on);
                Ok(Arm9Response::GpsAck)
            }
            Arm9Request::SetRadioTimeout { .. } => Err(Arm9Error::ClosedFirmware),
        }
    }

    /// Read-only radio state (the host can observe the radio's behaviour —
    /// Cinder does exactly this to estimate costs — it just cannot control
    /// its policies).
    pub fn radio(&self) -> &RadioModel {
        &self.radio
    }

    /// Advances radio timers (the ARM9 runs autonomously).
    pub fn advance_to(&mut self, t: SimTime) {
        self.radio.advance_to(t);
    }

    /// The GPS state.
    pub fn gps(&self) -> &Gps {
        &self.gps
    }

    /// The battery description.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_sim::Power;

    fn arm9() -> Arm9 {
        Arm9::new(RadioParams::htc_dream(), Battery::fig1_15kj())
    }

    #[test]
    fn timeout_change_is_refused() {
        let mut a = arm9();
        let mut rng = SimRng::seed_from_u64(0);
        let err = a
            .request(
                SimTime::ZERO,
                Arm9Request::SetRadioTimeout {
                    timeout: SimDuration::from_secs(5),
                },
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, Arm9Error::ClosedFirmware);
        // And the radio still sleeps on the firmware's schedule.
        assert_eq!(
            a.radio().params().inactivity_timeout,
            SimDuration::from_secs(20)
        );
    }

    #[test]
    fn transmit_through_the_facade() {
        let mut a = arm9();
        let mut rng = SimRng::seed_from_u64(0);
        let resp = a
            .request(
                SimTime::ZERO,
                Arm9Request::RadioTransmit { bytes: 100 },
                &mut rng,
            )
            .unwrap();
        match resp {
            Arm9Response::Radio(out) => {
                assert!(out.activated);
                assert_eq!(out.data_energy, Energy::from_microjoules(250));
            }
            other => panic!("unexpected response {other:?}"),
        }
        assert!(a.radio().is_active());
        assert!(a.radio().extra_power() > Power::ZERO);
    }

    #[test]
    fn battery_reads_through_facade() {
        let mut a = arm9();
        let mut rng = SimRng::seed_from_u64(0);
        let resp = a
            .request(
                SimTime::ZERO,
                Arm9Request::BatteryLevel {
                    remaining: Energy::from_joules(7_500),
                },
                &mut rng,
            )
            .unwrap();
        assert_eq!(resp, Arm9Response::BatteryLevel(50));
    }

    #[test]
    fn gps_toggles_through_facade() {
        let mut a = arm9();
        let mut rng = SimRng::seed_from_u64(0);
        a.request(SimTime::ZERO, Arm9Request::GpsPower { on: true }, &mut rng)
            .unwrap();
        assert!(a.gps().is_enabled());
    }
}
