//! CPU power model.
//!
//! Paper §4.2: "Spinning the CPU increases consumption by 137 mW.
//! Memory-intensive instruction streams increase CPU power draw by 13% over
//! a simple arithmetic loop. … our CPU model currently does not take
//! instruction mix into account and assumes the worst case power draw (all
//! memory intensive operations)."
//!
//! The evaluation figures bill exactly 137 mW for a spinning thread (a
//! 137 mW tap yields 100% CPU in Fig 12a), so 137 mW is the *worst-case*
//! (memory-intensive) number and the simple arithmetic loop sits 13% below
//! it. Both levels are modelled; accounting uses the worst case, as the
//! paper's does.

use cinder_sim::Power;

/// What kind of instruction stream a thread runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CpuKind {
    /// Simple integer/control-flow loop (13% below the worst case).
    Integer,
    /// Memory-intensive stream: the worst case the model assumes.
    #[default]
    MemoryIntensive,
}

/// The CPU's power model.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// Worst-case (memory-intensive) busy power: what accounting charges.
    pub worst_case_power: Power,
    /// Memory-intensive over integer-loop ratio, in ppm (1_130_000 = ×1.13).
    pub memory_factor_ppm: u64,
}

impl CpuModel {
    /// The HTC Dream's published numbers: 137 mW worst case, ×1.13 factor.
    pub fn htc_dream() -> Self {
        CpuModel {
            worst_case_power: Power::from_milliwatts(137),
            memory_factor_ppm: 1_130_000,
        }
    }

    /// The true power drawn above idle while running a stream of `kind`.
    pub fn power(&self, kind: CpuKind) -> Power {
        match kind {
            CpuKind::MemoryIntensive => self.worst_case_power,
            CpuKind::Integer => Power::from_microwatts(
                ((self.worst_case_power.as_microwatts() as u128) * 1_000_000
                    / self.memory_factor_ppm as u128) as u64,
            ),
        }
    }

    /// The power the accounting model charges per busy quantum. Paper §4.2:
    /// the Dream cannot observe instruction mix, so Cinder "assumes the
    /// worst case power draw".
    pub fn accounting_power(&self) -> Power {
        self.worst_case_power
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::htc_dream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dream_constants() {
        let m = CpuModel::htc_dream();
        assert_eq!(
            m.power(CpuKind::MemoryIntensive),
            Power::from_milliwatts(137)
        );
        // 137 / 1.13 ≈ 121.24 mW for the simple arithmetic loop.
        let integer = m.power(CpuKind::Integer).as_microwatts();
        assert!((121_000..122_000).contains(&integer), "integer = {integer}");
    }

    #[test]
    fn accounting_is_worst_case() {
        let m = CpuModel::htc_dream();
        assert_eq!(m.accounting_power(), Power::from_milliwatts(137));
        assert!(m.accounting_power() > m.power(CpuKind::Integer));
    }

    #[test]
    fn memory_factor_is_13_percent() {
        let m = CpuModel::htc_dream();
        let int = m.power(CpuKind::Integer).as_microwatts() as f64;
        let mem = m.power(CpuKind::MemoryIntensive).as_microwatts() as f64;
        assert!(((mem / int) - 1.13).abs() < 0.001);
    }
}
