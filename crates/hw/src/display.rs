//! Backlight power model.
//!
//! Paper §4.2: the Dream draws "another 555 mW when the backlight is on".
//! The model adds a *drive level* below full brightness (in ppm of the
//! full-rail draw) so energy-aware policies can dim rather than drop the
//! screen — the screen-dimming pattern the peripheral layer's `ScreenOn`
//! workload exercises when its reserve runs low.

use cinder_sim::Power;

/// Full drive (100% brightness) in parts per million.
pub const FULL_DRIVE_PPM: u64 = 1_000_000;

/// The display backlight: an on/off power state with a dimmable drive.
#[derive(Debug, Clone, Copy)]
pub struct Display {
    backlight_power: Power,
    drive_ppm: u64,
    on: bool,
}

impl Display {
    /// The HTC Dream's 555 mW backlight, initially off at full drive.
    pub fn htc_dream() -> Self {
        Display {
            backlight_power: Power::from_milliwatts(555),
            drive_ppm: FULL_DRIVE_PPM,
            on: false,
        }
    }

    /// Turns the backlight on or off.
    pub fn set_backlight(&mut self, on: bool) {
        self.on = on;
    }

    /// Whether the backlight is lit.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Sets the drive level in ppm of full brightness, clamped to
    /// `1..=`[`FULL_DRIVE_PPM`] (a zero drive is "off", which is
    /// [`Display::set_backlight`]'s job).
    pub fn set_drive_ppm(&mut self, ppm: u64) {
        self.drive_ppm = ppm.clamp(1, FULL_DRIVE_PPM);
    }

    /// The current drive level in ppm of full brightness.
    pub fn drive_ppm(&self) -> u64 {
        self.drive_ppm
    }

    /// The draw at full drive, regardless of state (what the peripheral
    /// layer sizes reserves and drain taps against).
    pub fn full_power(&self) -> Power {
        self.backlight_power
    }

    /// The power currently drawn above idle.
    pub fn power(&self) -> Power {
        if self.on {
            self.backlight_power.scale_ppm(self.drive_ppm)
        } else {
            Power::ZERO
        }
    }
}

impl Default for Display {
    fn default() -> Self {
        Display::htc_dream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggling_changes_power() {
        let mut d = Display::htc_dream();
        assert_eq!(d.power(), Power::ZERO);
        d.set_backlight(true);
        assert!(d.is_on());
        assert_eq!(d.power(), Power::from_milliwatts(555));
        d.set_backlight(false);
        assert_eq!(d.power(), Power::ZERO);
    }

    #[test]
    fn dimming_scales_the_draw() {
        let mut d = Display::htc_dream();
        d.set_backlight(true);
        d.set_drive_ppm(400_000);
        assert_eq!(d.drive_ppm(), 400_000);
        assert_eq!(d.power(), Power::from_milliwatts(222));
        assert_eq!(d.full_power(), Power::from_milliwatts(555));
        // Off still draws nothing, whatever the drive.
        d.set_backlight(false);
        assert_eq!(d.power(), Power::ZERO);
    }

    #[test]
    fn drive_clamps_to_valid_range() {
        let mut d = Display::htc_dream();
        d.set_drive_ppm(0);
        assert_eq!(d.drive_ppm(), 1);
        d.set_drive_ppm(2_000_000);
        assert_eq!(d.drive_ppm(), FULL_DRIVE_PPM);
    }
}
