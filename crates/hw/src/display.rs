//! Backlight power model.
//!
//! Paper §4.2: the Dream draws "another 555 mW when the backlight is on".

use cinder_sim::Power;

/// The display backlight: a simple on/off power state.
#[derive(Debug, Clone, Copy)]
pub struct Display {
    backlight_power: Power,
    on: bool,
}

impl Display {
    /// The HTC Dream's 555 mW backlight, initially off.
    pub fn htc_dream() -> Self {
        Display {
            backlight_power: Power::from_milliwatts(555),
            on: false,
        }
    }

    /// Turns the backlight on or off.
    pub fn set_backlight(&mut self, on: bool) {
        self.on = on;
    }

    /// Whether the backlight is lit.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// The power currently drawn above idle.
    pub fn power(&self) -> Power {
        if self.on {
            self.backlight_power
        } else {
            Power::ZERO
        }
    }
}

impl Default for Display {
    fn default() -> Self {
        Display::htc_dream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggling_changes_power() {
        let mut d = Display::htc_dream();
        assert_eq!(d.power(), Power::ZERO);
        d.set_backlight(true);
        assert!(d.is_on());
        assert_eq!(d.power(), Power::from_milliwatts(555));
        d.set_backlight(false);
        assert_eq!(d.power(), Power::ZERO);
    }
}
