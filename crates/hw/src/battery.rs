//! The battery and its coarse sensor.
//!
//! Paper §4.1: "The ARM9, for example, exposes the battery level as an
//! integer from 0 to 100." The *rights* to battery energy live in the
//! resource graph's root reserve; this type models the physical capacity
//! and the quantised readout applications see through the ARM9.

use cinder_sim::Energy;

/// A battery with a fixed capacity and a coarse percentage readout.
#[derive(Debug, Clone, Copy)]
pub struct Battery {
    capacity: Energy,
}

impl Battery {
    /// A battery of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    pub fn new(capacity: Energy) -> Self {
        assert!(capacity.is_positive(), "battery capacity must be positive");
        Battery { capacity }
    }

    /// The paper's worked example size (Fig 1): 15 kJ.
    pub fn fig1_15kj() -> Self {
        Battery::new(Energy::from_joules(15_000))
    }

    /// Full capacity.
    pub fn capacity(&self) -> Energy {
        self.capacity
    }

    /// The ARM9-style readout: remaining energy quantised to an integer
    /// 0–100. Values are clamped: debt reads 0, overfill reads 100.
    pub fn level_percent(&self, remaining: Energy) -> u8 {
        let pct =
            (remaining.as_microjoules() as i128) * 100 / (self.capacity.as_microjoules() as i128);
        pct.clamp(0, 100) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_quantisation() {
        let b = Battery::fig1_15kj();
        assert_eq!(b.level_percent(Energy::from_joules(15_000)), 100);
        assert_eq!(b.level_percent(Energy::from_joules(7_500)), 50);
        assert_eq!(b.level_percent(Energy::from_joules(149)), 0);
        assert_eq!(b.level_percent(Energy::from_joules(151)), 1);
    }

    #[test]
    fn readout_clamps() {
        let b = Battery::fig1_15kj();
        assert_eq!(b.level_percent(Energy::from_joules(-5)), 0);
        assert_eq!(b.level_percent(Energy::from_joules(20_000)), 100);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Battery::new(Energy::ZERO);
    }
}
