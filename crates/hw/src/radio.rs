//! The GSM data-path radio state machine.
//!
//! Paper §4.3: "The baseline cost of activating the radio is exceptionally
//! high: small isolated transfers are about 1000 times more expensive, per
//! byte, than large transfers. … it costs 9.5 joules to send a single byte!
//! … The device fully sleeps after 20 seconds [of inactivity], but the
//! average plateau consumes an additional 9.5 J of energy over baseline
//! (minimum 8.8 J, maximum 11.9 J). … Because the ARM9 is closed, Cinder
//! cannot change this inactivity timeout."
//!
//! The model:
//!
//! * **Idle**: no extra power.
//! * **Activation**: transmitting from idle starts an *episode*. A per-
//!   episode overhead energy `E` is drawn from a clipped Normal(9.5, 0.7) J
//!   in `[8.8, 11.9]`, with a small chance of an outlier near the top (the
//!   "penultimate transition" of Fig 4). The episode begins with a 1 s ramp
//!   at 1.3 W extra, then holds a plateau of `(E − 1.3 J) / 19 s` extra so
//!   that an *untouched* episode (single packet, 20 s timeout) costs exactly
//!   `E` over baseline — reproducing Fig 4 by construction.
//! * **Extension**: any activity at time `t` moves the auto-sleep deadline
//!   to `t + 20 s`; the marginal cost of extending is plateau-power ×
//!   extension, matching §5.5.2's worked example (transmitting after 15
//!   idle-but-active seconds is far more expensive than back-to-back sends).
//! * **Data**: bytes cost [`RadioParams::per_kilobyte`] per 1000 bytes on
//!   top, reported to the caller as instantaneous energy (fed to the
//!   meter). Bulk bytes are roughly three orders of magnitude cheaper than
//!   an activation-borne byte, matching §4.3's "about 1000 times more
//!   expensive, per byte" observation.
//!
//! The model exposes [`RadioModel::cost_estimate`] — the estimator netd uses
//! to decide how much pooled energy a power-up requires (§5.5).

use cinder_sim::{Energy, Power, SimDuration, SimRng, SimTime};

/// Tunable radio constants (defaults: the paper's HTC Dream measurements).
#[derive(Debug, Clone, Copy)]
pub struct RadioParams {
    /// Mean per-episode overhead energy (9.5 J).
    pub activation_mean: Energy,
    /// Std-dev of the overhead draw (0.7 J).
    pub activation_sigma: Energy,
    /// Observed minimum (8.8 J).
    pub activation_min: Energy,
    /// Observed maximum (11.9 J).
    pub activation_max: Energy,
    /// Probability an episode is an outlier drawn near the maximum.
    pub outlier_prob: f64,
    /// Ramp duration at the start of an episode.
    pub ramp: SimDuration,
    /// Extra power during the ramp.
    pub ramp_power: Power,
    /// Inactivity timeout after which the ARM9 sleeps the radio (20 s,
    /// not changeable — §4.3).
    pub inactivity_timeout: SimDuration,
    /// Energy per 1000 transmitted or received bytes (sub-µJ/byte costs
    /// need the coarser unit; integer µJ per byte would be too lossy).
    pub per_kilobyte: Energy,
    /// Sustained data-path throughput, for transfer durations.
    pub throughput_bytes_per_s: u64,
}

impl RadioParams {
    /// The paper's measured HTC Dream values.
    pub fn htc_dream() -> Self {
        RadioParams {
            activation_mean: Energy::from_millijoules(9_500),
            activation_sigma: Energy::from_millijoules(700),
            activation_min: Energy::from_millijoules(8_800),
            activation_max: Energy::from_millijoules(11_900),
            outlier_prob: 0.04,
            ramp: SimDuration::from_secs(1),
            ramp_power: Power::from_milliwatts(1_300),
            inactivity_timeout: SimDuration::from_secs(20),
            per_kilobyte: Energy::from_microjoules(2_500),
            throughput_bytes_per_s: 100_000,
        }
    }

    /// The plateau extra power implied by an episode overhead of `episode`.
    fn plateau_power(&self, episode: Energy) -> Power {
        let ramp_energy = self.ramp_power.energy_over(self.ramp);
        let tail = self.inactivity_timeout - self.ramp;
        (episode - ramp_energy)
            .clamp_non_negative()
            .average_power_over(tail)
    }

    /// The *nominal* plateau power (mean episode): 431 mW extra for the
    /// Dream. Used by cost estimation.
    pub fn nominal_plateau_power(&self) -> Power {
        self.plateau_power(self.activation_mean)
    }

    /// Data-path energy for `bytes` at the per-kilobyte rate.
    pub fn data_energy(&self, bytes: u64) -> Energy {
        let uj = (self.per_kilobyte.as_microjoules() as i128) * (bytes as i128) / 1_000;
        Energy::from_microjoules(uj as i64)
    }
}

impl Default for RadioParams {
    fn default() -> Self {
        RadioParams::htc_dream()
    }
}

/// Cumulative radio statistics (Table 1's "Active Time" column and Fig 13's
/// episode structure are read from these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RadioStats {
    /// Number of idle→active transitions.
    pub activations: u64,
    /// Total time spent active (completed episodes only until
    /// [`RadioModel::total_active`] adds the in-flight episode).
    pub completed_active_time: SimDuration,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Bytes received.
    pub rx_bytes: u64,
}

/// Result of a transmit/receive call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxOutcome {
    /// Whether this call powered the radio up from idle.
    pub activated: bool,
    /// Instantaneous data energy (bytes × per-byte) to feed to the meter.
    pub data_energy: Energy,
    /// How long the transfer occupies the data path.
    pub duration: SimDuration,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Idle,
    /// Ramping up; plateau follows at `ramp_until`.
    Ramp {
        ramp_until: SimTime,
        plateau: Power,
    },
    /// Holding the active plateau.
    Plateau {
        plateau: Power,
    },
}

/// The radio state machine.
///
/// Drive it with [`RadioModel::advance_to`] (processing timeouts), then act.
/// [`RadioModel::next_transition`] tells the platform when the power draw
/// will next change so the meter can integrate exactly.
#[derive(Debug)]
pub struct RadioModel {
    params: RadioParams,
    phase: Phase,
    now: SimTime,
    last_activity: SimTime,
    active_since: Option<SimTime>,
    stats: RadioStats,
    /// Completed active windows (merged episodes), for active-energy
    /// integration in the experiments.
    windows: Vec<(SimTime, SimTime)>,
}

impl RadioModel {
    /// Creates an idle radio with the given parameters.
    pub fn new(params: RadioParams) -> Self {
        RadioModel {
            params,
            phase: Phase::Idle,
            now: SimTime::ZERO,
            last_activity: SimTime::ZERO,
            active_since: None,
            stats: RadioStats::default(),
            windows: Vec::new(),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &RadioParams {
        &self.params
    }

    /// Whether the radio is currently active (ramp or plateau).
    pub fn is_active(&self) -> bool {
        !matches!(self.phase, Phase::Idle)
    }

    /// The extra power drawn right now, above platform baseline.
    pub fn extra_power(&self) -> Power {
        match self.phase {
            Phase::Idle => Power::ZERO,
            Phase::Ramp { .. } => self.params.ramp_power,
            Phase::Plateau { plateau } => plateau,
        }
    }

    /// When the radio will sleep if nothing else happens.
    pub fn sleep_deadline(&self) -> Option<SimTime> {
        self.is_active()
            .then(|| self.last_activity + self.params.inactivity_timeout)
    }

    /// The next time the power draw changes by itself (ramp end or sleep),
    /// if any.
    pub fn next_transition(&self) -> Option<SimTime> {
        match self.phase {
            Phase::Idle => None,
            Phase::Ramp { ramp_until, .. } => {
                Some(ramp_until.min(self.sleep_deadline().expect("active")))
            }
            Phase::Plateau { .. } => self.sleep_deadline(),
        }
    }

    /// Advances to `t` like [`RadioModel::advance_to`], returning the exact
    /// extra energy drawn over the interval (integrating across phase
    /// transitions).
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the radio's current time.
    pub fn advance_integrating(&mut self, t: SimTime) -> Energy {
        let mut total = Energy::ZERO;
        let mut cursor = self.now;
        while cursor < t {
            let next = match self.next_transition() {
                Some(n) if n < t => n.max(cursor),
                _ => t,
            };
            total += self.extra_power().energy_over(next - cursor);
            self.advance_to(next);
            cursor = next;
        }
        total
    }

    /// Advances internal time to `t`, processing ramp-end and sleep
    /// transitions that occur at or before `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the radio's current time.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "radio time went backwards");
        while let Some(next) = self.next_transition() {
            if next > t {
                break;
            }
            match self.phase {
                Phase::Ramp {
                    ramp_until,
                    plateau,
                } if ramp_until <= next => {
                    self.phase = Phase::Plateau { plateau };
                }
                Phase::Ramp { .. } | Phase::Plateau { .. } => {
                    // Sleep deadline reached.
                    let since = self.active_since.take().expect("active episode");
                    let until = self.sleep_deadline().expect("active");
                    self.windows.push((since, until));
                    self.stats.completed_active_time += until - since;
                    self.phase = Phase::Idle;
                }
                Phase::Idle => unreachable!("idle has no transition"),
            }
        }
        self.now = t;
    }

    /// Transmits `bytes` at the current time, powering the radio up if idle.
    ///
    /// Call [`RadioModel::advance_to`] first so pending transitions are
    /// processed. Returns the data energy for the meter.
    pub fn transmit(&mut self, now: SimTime, bytes: u64, rng: &mut SimRng) -> TxOutcome {
        self.advance_to(now);
        let activated = !self.is_active();
        if activated {
            let episode = self.draw_episode_energy(rng);
            let plateau = self.params.plateau_power(episode);
            self.phase = Phase::Ramp {
                ramp_until: now + self.params.ramp,
                plateau,
            };
            self.active_since = Some(now);
            self.stats.activations += 1;
        }
        self.last_activity = now;
        self.stats.tx_bytes += bytes;
        TxOutcome {
            activated,
            data_energy: self.params.data_energy(bytes),
            duration: self.transfer_duration(bytes),
        }
    }

    /// Accounts received data (the radio must already be active; reception
    /// while asleep is impossible on the real hardware too — the network
    /// pages the device, which this model folds into the active episode).
    ///
    /// Returns the data energy for the meter.
    pub fn receive(&mut self, now: SimTime, bytes: u64) -> TxOutcome {
        self.advance_to(now);
        debug_assert!(self.is_active(), "receive on a sleeping radio");
        self.last_activity = now;
        self.stats.rx_bytes += bytes;
        TxOutcome {
            activated: false,
            data_energy: self.params.data_energy(bytes),
            duration: self.transfer_duration(bytes),
        }
    }

    /// §5.5.2's marginal-cost estimator: what will transmitting `bytes` at
    /// `at` cost over baseline?
    ///
    /// * Radio idle → a full nominal activation episode plus data.
    /// * Radio active → plateau power × how much the sleep deadline moves
    ///   ("if the radio has been active for one second, transmitting now
    ///   only extends the active period by 1 second").
    pub fn cost_estimate(&self, at: SimTime, bytes: u64) -> Energy {
        let data = self.params.data_energy(bytes);
        match self.phase {
            Phase::Idle => self.params.activation_mean + data,
            Phase::Ramp { plateau, .. } | Phase::Plateau { plateau } => {
                let extension = at.saturating_since(self.last_activity);
                plateau.energy_over(extension) + data
            }
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> RadioStats {
        self.stats
    }

    /// Total active time up to `now`, including the in-flight episode.
    pub fn total_active(&self, now: SimTime) -> SimDuration {
        let mut t = self.stats.completed_active_time;
        if let Some(since) = self.active_since {
            t += now.saturating_since(since);
        }
        t
    }

    /// Completed active windows plus the in-flight one (clipped to `now`),
    /// for integrating "active energy" over a meter trace.
    pub fn active_windows(&self, now: SimTime) -> Vec<(SimTime, SimTime)> {
        let mut w = self.windows.clone();
        if let Some(since) = self.active_since {
            w.push((since, now.max(since)));
        }
        w
    }

    fn transfer_duration(&self, bytes: u64) -> SimDuration {
        let us = (bytes as u128) * 1_000_000 / (self.params.throughput_bytes_per_s as u128);
        SimDuration::from_micros((us as u64).max(1_000))
    }

    fn draw_episode_energy(&self, rng: &mut SimRng) -> Energy {
        let p = &self.params;
        let j = if rng.chance(p.outlier_prob) {
            // The rare expensive transition (Fig 4's penultimate episode).
            rng.uniform(
                p.activation_mean.as_joules_f64(),
                p.activation_max.as_joules_f64(),
            )
        } else {
            rng.clipped_normal(
                p.activation_mean.as_joules_f64(),
                p.activation_sigma.as_joules_f64(),
                p.activation_min.as_joules_f64(),
                p.activation_max.as_joules_f64(),
            )
        };
        Energy::from_joules_f64(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radio() -> RadioModel {
        RadioModel::new(RadioParams::htc_dream())
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    /// Integrates the radio's extra power up to `until` by stepping through
    /// transitions, the way the platform meter does.
    fn integrate_extra(r: &mut RadioModel, until: SimTime) -> Energy {
        r.advance_integrating(until)
    }

    #[test]
    fn single_packet_episode_costs_the_drawn_energy() {
        // A 0-byte "1-byte-ish" packet from idle: the episode overhead must
        // land in [8.8, 11.9] J and the radio must sleep after exactly 20 s.
        let mut r = radio();
        let mut g = rng();
        let out = r.transmit(SimTime::ZERO, 0, &mut g);
        assert!(out.activated);
        assert_eq!(r.sleep_deadline(), Some(SimTime::from_secs(20)));
        let episode = integrate_extra(&mut r, SimTime::from_secs(30));
        assert!(!r.is_active());
        let j = episode.as_joules_f64();
        assert!((8.79..=11.91).contains(&j), "episode cost {j} J");
        assert_eq!(
            r.total_active(SimTime::from_secs(30)),
            SimDuration::from_secs(20)
        );
        assert_eq!(r.stats().activations, 1);
    }

    #[test]
    fn mean_episode_cost_is_9_5_joules() {
        let mut g = rng();
        let mut total = 0.0;
        let n = 40;
        for i in 0..n {
            let mut r = radio();
            let start = SimTime::from_secs(i * 100);
            let mut r2 = {
                r.advance_to(start);
                r
            };
            r2.transmit(start, 0, &mut g);
            total += integrate_extra(&mut r2, start + SimDuration::from_secs(25)).as_joules_f64();
        }
        let mean = total / n as f64;
        assert!((mean - 9.5).abs() < 0.5, "mean episode {mean} J");
    }

    #[test]
    fn activity_extends_the_episode() {
        let mut r = radio();
        let mut g = rng();
        r.transmit(SimTime::ZERO, 0, &mut g);
        r.advance_to(SimTime::from_secs(15));
        let out = r.transmit(SimTime::from_secs(15), 0, &mut g);
        assert!(!out.activated, "still active, no new episode");
        assert_eq!(r.sleep_deadline(), Some(SimTime::from_secs(35)));
        r.advance_to(SimTime::from_secs(40));
        assert!(!r.is_active());
        assert_eq!(
            r.total_active(SimTime::from_secs(40)),
            SimDuration::from_secs(35)
        );
        assert_eq!(r.stats().activations, 1);
    }

    #[test]
    fn cost_estimate_matches_paper_examples() {
        // §5.5.2: active for 1 s → extending costs ~1 s of plateau; idle for
        // 15 s within the window → ~15 s of plateau.
        let mut r = radio();
        let mut g = rng();
        r.transmit(SimTime::ZERO, 0, &mut g);
        let plateau = r.params().nominal_plateau_power();
        let cheap = r.cost_estimate(SimTime::from_secs(1), 0);
        let pricey = r.cost_estimate(SimTime::from_secs(15), 0);
        // Use the *actual* episode plateau for tolerance: estimates use the
        // drawn plateau power.
        assert!(cheap < pricey);
        let ratio = pricey.as_joules_f64() / cheap.as_joules_f64();
        assert!((ratio - 15.0).abs() < 1.0, "ratio {ratio}");
        let _ = plateau;
    }

    #[test]
    fn idle_cost_estimate_is_full_activation() {
        let r = radio();
        let est = r.cost_estimate(SimTime::from_secs(5), 100);
        let expected = Energy::from_millijoules(9_500) + Energy::from_microjoules(250);
        assert_eq!(est, expected);
    }

    #[test]
    fn per_byte_energy_reported() {
        let mut r = radio();
        let mut g = rng();
        let out = r.transmit(SimTime::ZERO, 1_500, &mut g);
        assert_eq!(out.data_energy, Energy::from_microjoules(3_750));
        // 1500 B at 100 kB/s = 15 ms.
        assert_eq!(out.duration, SimDuration::from_millis(15));
    }

    #[test]
    fn receive_extends_but_never_activates() {
        let mut r = radio();
        let mut g = rng();
        r.transmit(SimTime::ZERO, 10, &mut g);
        let out = r.receive(SimTime::from_secs(5), 800);
        assert!(!out.activated);
        assert_eq!(r.sleep_deadline(), Some(SimTime::from_secs(25)));
        assert_eq!(r.stats().rx_bytes, 800);
    }

    #[test]
    fn windows_cover_episodes() {
        let mut r = radio();
        let mut g = rng();
        r.transmit(SimTime::ZERO, 0, &mut g);
        r.advance_to(SimTime::from_secs(60));
        r.transmit(SimTime::from_secs(60), 0, &mut g);
        r.advance_to(SimTime::from_secs(100));
        let w = r.active_windows(SimTime::from_secs(100));
        assert_eq!(
            w,
            vec![
                (SimTime::ZERO, SimTime::from_secs(20)),
                (SimTime::from_secs(60), SimTime::from_secs(80)),
            ]
        );
        assert_eq!(r.stats().activations, 2);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = || {
            let mut r = radio();
            let mut g = SimRng::seed_from_u64(99);
            r.transmit(SimTime::ZERO, 1, &mut g);
            integrate_extra(&mut r, SimTime::from_secs(25)).as_microjoules()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ten_second_flow_costs_about_14_joules() {
        // Fig 3's headline: a 10 s flow ≈ 14.3 J average episode cost.
        let mut r = radio();
        let mut g = rng();
        let mut total = Energy::ZERO;
        for s in 0..=10 {
            let t = SimTime::from_secs(s);
            total += r.advance_integrating(t);
            total += r.transmit(t, 750, &mut g).data_energy;
        }
        total += r.advance_integrating(SimTime::from_secs(40));
        let j = total.as_joules_f64();
        assert!((12.0..=18.0).contains(&j), "10s flow cost {j} J");
    }
}
