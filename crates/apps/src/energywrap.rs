//! `energywrap`: sandbox any program behind a rate-limited reserve.
//!
//! Paper §5.1 / Fig 5: "energywrap takes a rate limit and a path to an
//! application binary. The utility creates a new reserve and attaches it to
//! the reserve in which energywrap started by a tap with the rate given as
//! input. After forking, energywrap begins drawing resources from the newly
//! allocated reserve rather than the original reserve of the parent process
//! and executes the specified program. This allows even energy-unaware
//! applications to be augmented with energy policies."
//!
//! Because the wrapped thing is just another [`Program`], wrapping composes
//! the same way the paper's shell-scripting does: `energywrap` of
//! `energywrap` of a program applies both limits (the inner tap drains the
//! outer reserve).

use cinder_core::{RateSpec, ReserveId, TapId};
use cinder_kernel::{Kernel, KernelError, Program, ThreadId};
use cinder_label::Label;
use cinder_sim::Power;

/// Handles to the sandbox `energywrap` built.
#[derive(Debug, Clone, Copy)]
pub struct WrapHandles {
    /// The thread running the wrapped program.
    pub thread: ThreadId,
    /// The sandbox reserve the program draws from.
    pub reserve: ReserveId,
    /// The rate-limiting tap feeding it.
    pub tap: TapId,
}

/// Wraps `program` in a fresh reserve fed from `parent_reserve` at `rate`
/// (the Fig 5 sequence: `reserve_create`, `tap_create`, `tap_set_rate`,
/// fork, `self_set_active_reserve`, exec).
pub fn energywrap(
    kernel: &mut Kernel,
    parent_reserve: ReserveId,
    rate: Power,
    name: &str,
    program: Box<dyn Program>,
) -> Result<WrapHandles, KernelError> {
    let reserve = kernel
        .graph_mut()
        .create_reserve(
            &cinder_core::Actor::kernel(),
            &format!("{name}-sandbox"),
            Label::default_label(),
        )
        .map_err(KernelError::from)?;
    let tap = kernel
        .graph_mut()
        .create_tap(
            &cinder_core::Actor::kernel(),
            &format!("{name}-limit"),
            parent_reserve,
            reserve,
            RateSpec::constant(rate),
            Label::default_label(),
        )
        .map_err(KernelError::from)?;
    let thread = kernel.spawn_unprivileged(name, program, reserve);
    Ok(WrapHandles {
        thread,
        reserve,
        tap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spinner::Spinner;
    use cinder_core::{Actor, GraphConfig};
    use cinder_kernel::KernelConfig;
    use cinder_sim::{Energy, SimTime};

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig {
            graph: GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
            ..KernelConfig::default()
        })
    }

    #[test]
    fn wrapped_hog_is_rate_limited() {
        let mut k = kernel();
        let battery = k.battery();
        // A buggy/malicious CPU hog, limited to 10 mW.
        let w = energywrap(
            &mut k,
            battery,
            Power::from_milliwatts(10),
            "hog",
            Box::new(Spinner::new()),
        )
        .unwrap();
        k.run_until(SimTime::from_secs(60));
        // Over 60 s the hog can have consumed at most 0.6 J + one quantum.
        let consumed = k.thread_consumed(w.thread);
        assert!(
            consumed <= Energy::from_millijoules(605),
            "hog consumed {consumed}"
        );
        // And its long-run power estimate is ~10 mW, not 137 mW.
        let est = k.thread_power_estimate(w.thread).as_milliwatts_f64();
        assert!(est < 25.0, "estimate {est} mW");
    }

    #[test]
    fn wrap_composes_like_shell_scripts() {
        // energywrap(energywrap(hog, 100 mW), 10 mW): the inner sandbox
        // drains through the outer one, so the tighter limit governs.
        let mut k = kernel();
        let battery = k.battery();
        let outer = energywrap(
            &mut k,
            battery,
            Power::from_milliwatts(10),
            "outer",
            Box::new(Spinner::new()),
        )
        .unwrap();
        // Re-wrap: move the spinner behind a second reserve fed from the
        // outer sandbox reserve.
        let inner = energywrap(
            &mut k,
            outer.reserve,
            Power::from_milliwatts(100),
            "inner",
            Box::new(Spinner::new()),
        )
        .unwrap();
        // Retire the outer thread so only the inner spinner draws.
        k.kill(outer.thread);
        k.run_until(SimTime::from_secs(60));
        let consumed = k.thread_consumed(inner.thread);
        // Limited by the outer 10 mW tap despite the generous inner tap.
        assert!(
            consumed <= Energy::from_millijoules(605),
            "inner consumed {consumed}"
        );
    }

    #[test]
    fn unwrapped_sibling_is_unaffected() {
        let mut k = kernel();
        let battery = k.battery();
        let free_r = k
            .graph_mut()
            .create_reserve(&Actor::kernel(), "free", Label::default_label())
            .unwrap();
        k.graph_mut()
            .transfer(&Actor::kernel(), battery, free_r, Energy::from_joules(100))
            .unwrap();
        let free = k.spawn_unprivileged("free", Box::new(Spinner::new()), free_r);
        let _hog = energywrap(
            &mut k,
            battery,
            Power::from_milliwatts(5),
            "hog",
            Box::new(Spinner::new()),
        )
        .unwrap();
        k.run_until(SimTime::from_secs(10));
        // The unwrapped spinner still gets nearly all the CPU (the hog can
        // only afford a few quanta).
        let est = k.thread_power_estimate(free).as_milliwatts_f64();
        assert!(est > 125.0, "free estimate {est} mW");
    }
}
