//! The cloud-offload client: a periodic workload that prices every work
//! item local-vs-remote with [`break_even`] and ships the remote ones
//! through the kernel's `offload` syscall.
//!
//! Two pieces live here:
//!
//! * [`TraceBackend`] — the kernel-side [`OffloadBackend`] adapter over a
//!   shared [`BackendTrace`]. The trace is a pure function of
//!   ([`OffloadProfile`], horizon), so every device in a fleet — on any
//!   worker thread — observes the *identical* backend: the same admission
//!   verdicts, the same response latencies, the same live estimate. That
//!   is what keeps offload-heavy fleet reports byte-identical for any
//!   worker count, and why checkpoint/resume never serialises backend
//!   state (a resumed run rebuilds the same trace from the scenario).
//! * [`Offloader`] — the program. Every `interval` it produces one work
//!   item costing `work` of local CPU, asks [`break_even`] whether the
//!   radio's marginal joules undercut the CPU's, and either computes in
//!   place or calls `Ctx::offload` and blocks. Timeouts and rejections
//!   fall back to local execution, so every item completes exactly once.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use cinder_core::{quota, ResourceKind};
use cinder_faults::{FaultPlan, OutageSpec, RetryPolicy};
use cinder_kernel::{
    Ctx, OffloadBackend, OffloadOutcome, OffloadRequest, OffloadStatus, OffloadVerdict, Program,
    Step,
};
use cinder_offload::{break_even, BackendTrace, BreakEvenInputs, OffloadDecision, OffloadProfile};
use cinder_sim::{SimDuration, SimTime};

/// The shared mean-field backend behind the kernel's [`OffloadBackend`]
/// seam: admission and latency are read off the precomputed trace.
#[derive(Debug, Clone)]
pub struct TraceBackend {
    trace: Arc<BackendTrace>,
}

impl TraceBackend {
    /// Wraps a (possibly shared) trace.
    pub fn new(trace: Arc<BackendTrace>) -> TraceBackend {
        TraceBackend { trace }
    }

    /// Builds the trace for `profile` over `horizon` and wraps it.
    pub fn build(profile: OffloadProfile, horizon: SimDuration) -> TraceBackend {
        TraceBackend::new(Arc::new(BackendTrace::build(profile, horizon)))
    }

    /// Like [`TraceBackend::build`], but with the fleet-shared outage
    /// windows `spec` describes baked into the trace: every device in a
    /// fleet derives the identical windows from the scenario seed, so the
    /// backend goes dark fleet-wide at once and reports stay
    /// byte-identical for any worker layout.
    pub fn build_with_outages(
        profile: OffloadProfile,
        horizon: SimDuration,
        spec: OutageSpec,
    ) -> TraceBackend {
        let windows = FaultPlan::outage_windows(&spec, horizon);
        TraceBackend::new(Arc::new(BackendTrace::build_with_outages(
            profile, horizon, &windows,
        )))
    }
}

impl OffloadBackend for TraceBackend {
    fn admit(&mut self, now: SimTime, _req: &OffloadRequest) -> OffloadVerdict {
        let s = self.trace.sample(now);
        if s.accepted {
            OffloadVerdict::Admitted {
                response_delay: s.response_latency,
            }
        } else {
            OffloadVerdict::Rejected
        }
    }

    fn latency_estimate(&self, now: SimTime) -> SimDuration {
        self.trace.sample(now).latency_estimate
    }
}

/// One work item's shape plus the production cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloaderConfig {
    /// Spacing between work items (item start to item start).
    pub interval: SimDuration,
    /// Local CPU time one item costs if computed on-device.
    pub work: SimDuration,
    /// Request payload per item.
    pub tx_bytes: u64,
    /// Response payload per item.
    pub rx_bytes: u64,
    /// How long to wait on the backend before recomputing locally.
    pub deadline: SimDuration,
}

impl OffloaderConfig {
    /// The item shape an [`OffloadProfile`] describes.
    pub fn from_profile(p: &OffloadProfile) -> OffloaderConfig {
        OffloaderConfig {
            interval: p.request_interval,
            work: p.work_per_item,
            tx_bytes: p.request_bytes,
            rx_bytes: p.response_bytes,
            deadline: p.deadline,
        }
    }

    fn round_trip_bytes(&self) -> u64 {
        self.tx_bytes + self.rx_bytes
    }
}

/// What the offloader did, shared with the probe.
#[derive(Debug, Default)]
pub struct OffloadLog {
    /// Work items completed (local or remote).
    pub items: u64,
    /// Items completed by a backend response.
    pub remote: u64,
    /// Items computed on-device (policy said local, or a fallback).
    pub local: u64,
    /// Local recomputes forced by a timeout or rejection.
    pub fallbacks: u64,
    /// Backed-off re-attempts scheduled after a failure (retry enabled).
    pub retries: u64,
    /// Items whose retry budget ran dry before a remote completion.
    pub retries_exhausted: u64,
}

impl OffloadLog {
    /// A fresh log behind the shared handle the probe reads.
    pub fn shared() -> Rc<RefCell<OffloadLog>> {
        Rc::new(RefCell::new(OffloadLog::default()))
    }
}

/// Where the offloader is in its item cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the next item's start time.
    Idle,
    /// An offload is in flight; blocked on the response or deadline.
    Awaiting,
    /// Backing off after a failed attempt; re-decide at the wake.
    Retry,
    /// A local compute (chosen or fallback) just ran; log and go idle.
    Finish,
}

/// The periodic offload client (see module docs).
#[derive(Debug)]
pub struct Offloader {
    config: OffloaderConfig,
    log: Rc<RefCell<OffloadLog>>,
    phase: Phase,
    next_item: SimTime,
    /// Whether the item being finished ran as a fallback after a timeout
    /// or rejection (telemetry only).
    fallback: bool,
    /// Bounded backoff after rejections/timeouts; `None` falls back to
    /// local immediately (the pre-fault behaviour, byte for byte).
    retry: Option<RetryPolicy>,
    /// Offload attempts made for the current item.
    attempts: u32,
    /// When the current item's first attempt ran (the retry deadline
    /// is measured from here).
    item_started: SimTime,
}

impl Offloader {
    /// A client producing its first item at t=0.
    pub fn new(config: OffloaderConfig, log: Rc<RefCell<OffloadLog>>) -> Offloader {
        Offloader {
            config,
            log,
            phase: Phase::Idle,
            next_item: SimTime::ZERO,
            fallback: false,
            retry: None,
            attempts: 0,
            item_started: SimTime::ZERO,
        }
    }

    /// Enables bounded retry-with-backoff on rejections and timeouts.
    pub fn with_retry(mut self, retry: Option<RetryPolicy>) -> Offloader {
        self.retry = retry;
        self
    }

    /// The break-even call, from exactly what the kernel lets the thread
    /// observe: its reserve level, the radio's marginal cost for the round
    /// trip, the accounting cost of local compute, the backend's live
    /// estimate, and the byte plan's remaining balance.
    fn decide(&self, ctx: &Ctx) -> OffloadDecision {
        let Ok(reserve_level) = ctx.level(ctx.active_reserve()) else {
            return OffloadDecision::Local;
        };
        let Some(latency_estimate) = ctx.offload_latency_estimate() else {
            return OffloadDecision::Local;
        };
        let plan_bytes_remaining = ctx
            .active_reserve_kind(ResourceKind::NetworkBytes)
            .and_then(|plan| ctx.level(plan).ok())
            .map(|level| quota::as_bytes(level).max(0) as u64);
        let round_trip_bytes = self.config.round_trip_bytes();
        break_even(&BreakEvenInputs {
            reserve_level,
            local_cost: ctx.cpu_accounting_power().energy_over(self.config.work),
            remote_cost: ctx.radio_cost_estimate(round_trip_bytes),
            latency_estimate,
            deadline: self.config.deadline,
            plan_bytes_remaining,
            round_trip_bytes,
        })
    }

    /// Starts a local compute for the current item.
    fn compute_locally(&mut self, fallback: bool) -> Step {
        self.fallback = fallback;
        self.phase = Phase::Finish;
        Step::compute(self.config.work)
    }

    fn finish(&mut self, remote: bool) {
        let mut log = self.log.borrow_mut();
        log.items += 1;
        if remote {
            log.remote += 1;
        } else {
            log.local += 1;
            if self.fallback {
                log.fallbacks += 1;
            }
        }
        self.fallback = false;
        self.phase = Phase::Idle;
    }

    /// Ships the current item remotely, counting the attempt.
    fn attempt_remote(&mut self, ctx: &mut Ctx) -> Step {
        let req = OffloadRequest {
            tx_bytes: self.config.tx_bytes,
            rx_bytes: self.config.rx_bytes,
            work: self.config.work,
            deadline: self.config.deadline,
        };
        self.attempts += 1;
        match ctx.offload(req) {
            Ok(OffloadStatus::Sent) => {
                self.phase = Phase::Awaiting;
                Step::Block
            }
            // Backend full, link down, or no backend: retry if the
            // budget allows, else the item still has to run — locally.
            Ok(OffloadStatus::Rejected) | Err(_) => self.after_failure(ctx),
        }
    }

    /// A rejection or timeout landed: back off if the retry budget
    /// allows, otherwise fall back to a local compute.
    fn after_failure(&mut self, ctx: &Ctx) -> Step {
        if let Some(retry) = self.retry {
            match retry.next_attempt_at(self.item_started, ctx.now(), self.attempts, ctx.quantum())
            {
                Some(at) => {
                    self.log.borrow_mut().retries += 1;
                    self.phase = Phase::Retry;
                    return Step::SleepUntil(at);
                }
                None => self.log.borrow_mut().retries_exhausted += 1,
            }
        }
        self.compute_locally(true)
    }
}

impl Program for Offloader {
    fn step(&mut self, ctx: &mut Ctx) -> Step {
        match self.phase {
            Phase::Idle => {
                if ctx.now() < self.next_item {
                    return Step::SleepUntil(self.next_item);
                }
                // Item cadence is start-to-start, anchored to the schedule
                // (not to when this item finishes).
                self.next_item += self.config.interval;
                self.item_started = ctx.now();
                self.attempts = 0;
                match self.decide(ctx) {
                    OffloadDecision::Local => self.compute_locally(false),
                    OffloadDecision::Remote => self.attempt_remote(ctx),
                }
            }
            Phase::Awaiting => match ctx.offload_take_result() {
                Some(OffloadOutcome::Completed { .. }) => {
                    self.finish(true);
                    Step::Yield
                }
                Some(OffloadOutcome::TimedOut) => self.after_failure(ctx),
                // Spurious wake (e.g. the pooled send being granted);
                // the offload is still in flight.
                None => Step::Block,
            },
            Phase::Retry => {
                // Backoff expired: re-price the item against the live
                // estimate. A backend that is still dark (outage pins the
                // estimate at the deadline) prices local and the item
                // falls back rather than burning the remaining budget.
                match self.decide(ctx) {
                    OffloadDecision::Local => self.compute_locally(true),
                    OffloadDecision::Remote => self.attempt_remote(ctx),
                }
            }
            Phase::Finish => {
                self.finish(false);
                Step::Yield
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_core::{Actor, RateSpec};
    use cinder_kernel::{Kernel, KernelConfig};
    use cinder_label::Label;
    use cinder_net::CoopNetd;
    use cinder_sim::{Energy, Power};

    fn rig(profile: OffloadProfile, horizon: SimDuration) -> (Kernel, Rc<RefCell<OffloadLog>>) {
        let mut kernel = Kernel::new(KernelConfig {
            seed: 3,
            idle_skip: true,
            ..KernelConfig::default()
        });
        let netd = CoopNetd::with_defaults(kernel.graph_mut());
        kernel.install_net(Box::new(netd));
        kernel.install_offload(Box::new(TraceBackend::build(profile, horizon)));
        let root = Actor::kernel();
        let battery = kernel.battery();
        let g = kernel.graph_mut();
        let r = g
            .create_reserve(&root, "offload", Label::default_label())
            .unwrap();
        g.transfer(&root, battery, r, Energy::from_joules(30))
            .unwrap();
        g.create_tap(
            &root,
            "offload-tap",
            battery,
            r,
            RateSpec::constant(Power::from_microwatts(60_000)),
            Label::default_label(),
        )
        .unwrap();
        let log = OffloadLog::shared();
        let app = Offloader::new(OffloaderConfig::from_profile(&profile), log.clone());
        kernel.spawn_unprivileged("offloader", Box::new(app), r);
        (kernel, log)
    }

    #[test]
    fn responsive_backend_pulls_items_remote() {
        let profile = OffloadProfile {
            capacity: 64,
            queue_limit: 10_000,
            ..OffloadProfile::default()
        };
        let horizon = SimDuration::from_secs(1_800);
        let (mut kernel, log) = rig(profile, horizon);
        kernel.run_until(SimTime::ZERO + horizon);
        let log = log.borrow();
        // 6 items in half an hour at the default 300 s cadence; a roomy
        // backend plus a 30 J seed keeps the break-even remote throughout.
        assert!(log.items >= 5, "items: {log:?}");
        assert!(log.remote >= 4, "remote: {log:?}");
        assert_eq!(log.items, log.remote + log.local);
        let stats = kernel.offload_stats();
        assert_eq!(stats.completed, log.remote);
        assert_eq!(
            stats.in_flight() + stats.completed + stats.timed_out,
            stats.accepted
        );
        assert!(kernel.graph().totals().conserved());
    }

    #[test]
    fn saturated_backend_forces_items_local() {
        // One server against a 100k-device population (333 req/s offered,
        // 20 req/s of service): the gate pins the latency estimate near
        // the deadline and the policy stays local.
        let profile = OffloadProfile {
            capacity: 1,
            queue_limit: 4,
            load_devices: 100_000,
            ..OffloadProfile::default()
        };
        let horizon = SimDuration::from_secs(1_800);
        let (mut kernel, log) = rig(profile, horizon);
        kernel.run_until(SimTime::ZERO + horizon);
        let log = log.borrow();
        assert!(log.items >= 5, "items: {log:?}");
        assert!(
            log.local > log.remote,
            "a saturated backend must push items local: {log:?}"
        );
        assert!(kernel.graph().totals().conserved());
    }

    #[test]
    fn every_item_completes_exactly_once() {
        let profile = OffloadProfile::default();
        let horizon = SimDuration::from_secs(3_600);
        let (mut kernel, log) = rig(profile, horizon);
        kernel.run_until(SimTime::ZERO + horizon);
        let log = log.borrow();
        assert_eq!(log.items, log.remote + log.local);
        assert!(log.fallbacks <= log.local);
        let stats = kernel.offload_stats();
        // Remote completions and fallbacks tie out against kernel stats.
        assert_eq!(stats.completed, log.remote);
        assert!(stats.timed_out + stats.rejected >= log.fallbacks.saturating_sub(0));
    }
}
