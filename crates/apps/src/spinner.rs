//! CPU-spinning workloads.
//!
//! The isolation experiment (§6.1, Fig 9) runs two spinners, A and B, each
//! fed half the CPU's power. B forks children B1 (at ~5 s) and B2 (at
//! ~10 s); instead of letting them draw from its own reserve, B "creates
//! two new reserves subdividing and delegating its power to each using two
//! taps. Each of the taps has one-quarter the power of B's tap."

use cinder_core::RateSpec;
use cinder_hw::CpuKind;
use cinder_kernel::{Ctx, Program, Step};
use cinder_label::Label;
use cinder_sim::{Power, SimDuration, SimTime};

/// A thread that spins forever (in short chunks so the kernel re-steps it
/// often enough to keep accounting responsive).
#[derive(Debug, Clone)]
pub struct Spinner {
    chunk: SimDuration,
    kind: CpuKind,
}

impl Spinner {
    /// A default spinner: 100 ms compute chunks, worst-case instruction mix.
    pub fn new() -> Self {
        Spinner {
            chunk: SimDuration::from_millis(100),
            kind: CpuKind::default(),
        }
    }

    /// A spinner with an explicit instruction mix (for the power-model
    /// experiment: integer vs memory-intensive streams).
    pub fn with_kind(kind: CpuKind) -> Self {
        Spinner {
            chunk: SimDuration::from_millis(100),
            kind,
        }
    }
}

impl Default for Spinner {
    fn default() -> Self {
        Spinner::new()
    }
}

impl Program for Spinner {
    fn step(&mut self, _ctx: &mut Ctx<'_>) -> Step {
        Step::Compute {
            duration: self.chunk,
            kind: self.kind,
        }
    }
}

/// A scheduled fork: at `at`, create a reserve fed from the parent's own
/// reserve by a tap of `tap_rate`, and spawn a [`Spinner`] child on it.
#[derive(Debug, Clone)]
pub struct ForkPlan {
    /// When to fork.
    pub at: SimTime,
    /// Child thread name.
    pub name: String,
    /// Rate of the tap from the parent's reserve to the child's.
    pub tap_rate: Power,
}

/// Fig 9's process B: spins, forking children on a schedule, each isolated
/// behind its own subdivided reserve.
#[derive(Debug, Clone)]
pub struct ForkingSpinner {
    forks: Vec<ForkPlan>,
    next: usize,
    chunk: SimDuration,
}

impl ForkingSpinner {
    /// A spinner that will fork per `forks` (must be sorted by time).
    pub fn new(mut forks: Vec<ForkPlan>) -> Self {
        forks.sort_by_key(|f| f.at);
        ForkingSpinner {
            forks,
            next: 0,
            chunk: SimDuration::from_millis(100),
        }
    }
}

impl Program for ForkingSpinner {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        while self.next < self.forks.len() && self.forks[self.next].at <= ctx.now() {
            let plan = self.forks[self.next].clone();
            self.next += 1;
            // Subdivide: child reserve fed from *my* reserve, so my children
            // can never touch anyone else's share (isolation + subdivision).
            let child_reserve = ctx
                .create_reserve(&format!("{}-r", plan.name), Label::default_label())
                .expect("default-label reserve creation cannot fail");
            let my_reserve = ctx.active_reserve();
            ctx.create_tap(
                &format!("{}-tap", plan.name),
                my_reserve,
                child_reserve,
                RateSpec::constant(plan.tap_rate),
                Label::default_label(),
            )
            .expect("parent can tap its own reserve");
            ctx.spawn(&plan.name, Box::new(Spinner::new()), child_reserve);
        }
        Step::Compute {
            duration: self.chunk,
            kind: CpuKind::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_core::{Actor, GraphConfig};
    use cinder_kernel::{Kernel, KernelConfig};
    use cinder_sim::Energy;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig {
            graph: GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
            ..KernelConfig::default()
        })
    }

    #[test]
    fn spinner_runs_flat_out_when_funded() {
        let mut k = kernel();
        let battery = k.battery();
        let r = k
            .graph_mut()
            .create_reserve(&Actor::kernel(), "r", Label::default_label())
            .unwrap();
        k.graph_mut()
            .transfer(&Actor::kernel(), battery, r, Energy::from_joules(100))
            .unwrap();
        let t = k.spawn_unprivileged("spin", Box::new(Spinner::new()), r);
        k.run_until(SimTime::from_secs(5));
        let est = k.thread_power_estimate(t).as_milliwatts_f64();
        assert!((est - 137.0).abs() < 3.0, "estimate {est} mW");
    }

    #[test]
    fn forking_spinner_spawns_on_schedule() {
        let mut k = kernel();
        let battery = k.battery();
        let r = k
            .graph_mut()
            .create_reserve(&Actor::kernel(), "b", Label::default_label())
            .unwrap();
        k.graph_mut()
            .create_tap(
                &Actor::kernel(),
                "b-tap",
                battery,
                r,
                RateSpec::constant(Power::from_microwatts(68_500)),
                Label::default_label(),
            )
            .unwrap();
        let forks = vec![
            ForkPlan {
                at: SimTime::from_secs(2),
                name: "b1".into(),
                tap_rate: Power::from_microwatts(17_125),
            },
            ForkPlan {
                at: SimTime::from_secs(4),
                name: "b2".into(),
                tap_rate: Power::from_microwatts(17_125),
            },
        ];
        k.spawn_unprivileged("b", Box::new(ForkingSpinner::new(forks)), r);
        k.run_until(SimTime::from_secs(1));
        assert_eq!(k.graph().reserve_count(), 2); // battery + b
        k.run_until(SimTime::from_secs(3));
        assert_eq!(k.graph().reserve_count(), 3); // + b1
        k.run_until(SimTime::from_secs(6));
        assert_eq!(k.graph().reserve_count(), 4); // + b2
        assert_eq!(k.graph().tap_count(), 3);
        assert!(k.graph().totals().conserved());
    }
}
