//! Periodic network pollers: the pop3 mail checker and RSS downloader.
//!
//! §6.4's workload: "an RSS feed downloader starts with a poll interval of
//! 60 seconds. Fifteen seconds later, a mail fetcher daemon starts, also
//! with a 60 second poll interval." Under the uncooperative stack their
//! staggered radio use wastes energy (Fig 13a); through netd they pool and
//! proceed together (Fig 13b, Fig 14, Table 1).

use std::cell::RefCell;
use std::rc::Rc;

use cinder_core::{Actor, RateSpec, ReserveId, TapId};
use cinder_faults::RetryPolicy;
use cinder_kernel::{Ctx, Kernel, KernelError, NetSendStatus, Program, Step, ThreadId};
use cinder_label::Label;
use cinder_sim::{Power, SimDuration, SimTime};

/// Shared log of completed polls.
#[derive(Debug, Default)]
pub struct PollerLog {
    /// Times at which a poll's send was accepted by the stack.
    pub sends: Vec<SimTime>,
    /// Total bytes (tx + rx) of each send, parallel to `sends`. (§9
    /// data-plan accounting happens online in the kernel; this log is
    /// workload telemetry for experiments and reports.)
    pub send_bytes: Vec<u64>,
    /// Polls that had to block for pooled energy first.
    pub blocked_first: u64,
    /// Backed-off re-checks of a held send (retry enabled).
    pub retries: u64,
    /// Polls abandoned after the retry budget ran dry (the held send is
    /// withdrawn from the kernel and the slot skipped).
    pub gave_up: u64,
}

impl PollerLog {
    /// A fresh shared log.
    pub fn shared() -> Rc<RefCell<PollerLog>> {
        Rc::new(RefCell::new(PollerLog::default()))
    }

    fn record(&mut self, at: SimTime, bytes: u64) {
        self.sends.push(at);
        self.send_bytes.push(bytes);
    }
}

enum State {
    /// Waiting for the configured start time.
    Starting,
    /// Sleeping until the next poll.
    Idle,
    /// A send was submitted and came back `Blocked`; waiting for netd.
    AwaitingGrant,
}

/// A fixed-interval poller (mail checker / RSS downloader).
pub struct PeriodicPoller {
    start_at: SimTime,
    interval: SimDuration,
    tx_bytes: u64,
    rx_bytes: u64,
    state: State,
    log: Rc<RefCell<PollerLog>>,
    /// Bounded backoff while a send is held; `None` blocks until granted
    /// (the pre-fault behaviour, byte for byte).
    retry: Option<RetryPolicy>,
    /// When the held send first blocked (the retry deadline anchor).
    blocked_at: SimTime,
    /// Checks made on the held send, counting the original submit.
    attempts: u32,
}

impl PeriodicPoller {
    /// A poller that first fires at `start_at` and then every `interval`.
    pub fn new(
        start_at: SimTime,
        interval: SimDuration,
        tx_bytes: u64,
        rx_bytes: u64,
        log: Rc<RefCell<PollerLog>>,
    ) -> Self {
        PeriodicPoller {
            start_at,
            interval,
            tx_bytes,
            rx_bytes,
            state: State::Starting,
            log,
            retry: None,
            blocked_at: SimTime::ZERO,
            attempts: 0,
        }
    }

    /// Enables bounded retry-with-backoff on held sends: instead of
    /// blocking indefinitely, the poller re-checks on the backoff grid
    /// and abandons the slot once the budget is spent.
    pub fn with_retry(mut self, retry: Option<RetryPolicy>) -> Self {
        self.retry = retry;
        self
    }

    /// §6.4's RSS downloader: starts at 0 s, polls every 60 s, pulls a
    /// modest feed.
    pub fn rss(log: Rc<RefCell<PollerLog>>) -> Self {
        PeriodicPoller::new(SimTime::ZERO, SimDuration::from_secs(60), 256, 8_192, log)
    }

    /// §6.4's mail checker: starts at 15 s, polls every 60 s.
    pub fn mail(log: Rc<RefCell<PollerLog>>) -> Self {
        PeriodicPoller::new(
            SimTime::from_secs(15),
            SimDuration::from_secs(60),
            512,
            4_096,
            log,
        )
    }

    /// The poll slot that follows `now` (fixed-rate schedule, no drift).
    fn next_poll_after(&self, now: SimTime) -> SimTime {
        if now < self.start_at {
            return self.start_at;
        }
        let elapsed = now.since(self.start_at);
        let slots = elapsed.div_duration(self.interval) + 1;
        self.start_at + self.interval * slots
    }
}

/// Everything [`build_pollers`] created.
#[derive(Debug, Clone)]
pub struct PollerHandles {
    /// Shared poll log (sends, per-send bytes, first-poll blocks).
    pub log: Rc<RefCell<PollerLog>>,
    /// The RSS downloader's tapped reserve.
    pub rss_reserve: ReserveId,
    /// The mail checker's tapped reserve.
    pub mail_reserve: ReserveId,
    /// The RSS reserve's feed tap (policy engines re-rate it).
    pub rss_tap: TapId,
    /// The mail reserve's feed tap.
    pub mail_tap: TapId,
    /// RSS thread.
    pub rss: ThreadId,
    /// Mail thread.
    pub mail: ThreadId,
}

/// Builds the §6.4 polling rig as a reusable topology: two reserves fed
/// `feed` each from the battery, an RSS downloader polling every
/// `rss_interval` from t = 0, and a mail checker polling every
/// `mail_interval` from t = 15 s. The caller chooses and installs the
/// network stack (netd or the uncooperative baseline); fleet scenarios call
/// this per device with jittered feeds and intervals.
pub fn build_pollers(
    kernel: &mut Kernel,
    feed: Power,
    rss_interval: SimDuration,
    mail_interval: SimDuration,
) -> Result<PollerHandles, KernelError> {
    build_pollers_with_retry(kernel, feed, rss_interval, mail_interval, None)
}

/// [`build_pollers`] with bounded retry on held sends (the fault
/// scenarios' resilience path); `None` keeps the block-until-granted
/// behaviour unchanged.
pub fn build_pollers_with_retry(
    kernel: &mut Kernel,
    feed: Power,
    rss_interval: SimDuration,
    mail_interval: SimDuration,
    retry: Option<RetryPolicy>,
) -> Result<PollerHandles, KernelError> {
    let root = Actor::kernel();
    let battery = kernel.battery();
    let tapped = |kernel: &mut Kernel, name: &str| -> Result<(ReserveId, TapId), KernelError> {
        let g = kernel.graph_mut();
        let r = g.create_reserve(&root, name, Label::default_label())?;
        let tap = g.create_tap(
            &root,
            &format!("{name}-tap"),
            battery,
            r,
            RateSpec::constant(feed),
            Label::default_label(),
        )?;
        Ok((r, tap))
    };
    let (rss_reserve, rss_tap) = tapped(kernel, "rss")?;
    let (mail_reserve, mail_tap) = tapped(kernel, "mail")?;
    let log = PollerLog::shared();
    let rss = kernel.spawn_unprivileged(
        "rss",
        Box::new(
            PeriodicPoller::new(SimTime::ZERO, rss_interval, 256, 8_192, log.clone())
                .with_retry(retry),
        ),
        rss_reserve,
    );
    let mail = kernel.spawn_unprivileged(
        "mail",
        Box::new(
            PeriodicPoller::new(
                SimTime::from_secs(15),
                mail_interval,
                512,
                4_096,
                log.clone(),
            )
            .with_retry(retry),
        ),
        mail_reserve,
    );
    Ok(PollerHandles {
        log,
        rss_reserve,
        mail_reserve,
        rss_tap,
        mail_tap,
        rss,
        mail,
    })
}

impl Program for PeriodicPoller {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        match self.state {
            State::Starting => {
                if ctx.now() < self.start_at {
                    return Step::SleepUntil(self.start_at);
                }
                self.state = State::Idle;
                Step::Yield
            }
            State::Idle => match ctx.net_send(self.tx_bytes, self.rx_bytes) {
                Ok(NetSendStatus::Sent) => {
                    self.log
                        .borrow_mut()
                        .record(ctx.now(), self.tx_bytes + self.rx_bytes);
                    Step::SleepUntil(self.next_poll_after(ctx.now()))
                }
                Ok(NetSendStatus::Blocked) => {
                    self.log.borrow_mut().blocked_first += 1;
                    self.state = State::AwaitingGrant;
                    self.blocked_at = ctx.now();
                    self.attempts = 1;
                    // With retry: wake on the backoff grid instead of only
                    // on the grant, so a wedged send is eventually
                    // abandoned rather than held forever.
                    match self.retry.and_then(|r| {
                        r.next_attempt_at(self.blocked_at, ctx.now(), 1, ctx.quantum())
                    }) {
                        Some(at) => Step::SleepUntil(at),
                        None => Step::Block,
                    }
                }
                Err(_) => Step::Exit,
            },
            State::AwaitingGrant => {
                match ctx.net_take_result() {
                    Some(NetSendStatus::Sent) => {
                        self.log
                            .borrow_mut()
                            .record(ctx.now(), self.tx_bytes + self.rx_bytes);
                        self.state = State::Idle;
                        Step::SleepUntil(self.next_poll_after(ctx.now()))
                    }
                    // No grant yet: a spurious wake, or a backoff check.
                    _ => {
                        let Some(retry) = self.retry else {
                            return Step::Block;
                        };
                        self.attempts += 1;
                        match retry.next_attempt_at(
                            self.blocked_at,
                            ctx.now(),
                            self.attempts,
                            ctx.quantum(),
                        ) {
                            Some(at) => {
                                self.log.borrow_mut().retries += 1;
                                Step::SleepUntil(at)
                            }
                            // Budget spent: abandon the slot — but only if
                            // the kernel still holds the send. Once the
                            // stack owns it (netd pooling) the grant is
                            // netd's to give and the poller keeps waiting.
                            None => {
                                if ctx.net_cancel_pending() {
                                    self.log.borrow_mut().gave_up += 1;
                                    self.state = State::Idle;
                                    Step::SleepUntil(self.next_poll_after(ctx.now()))
                                } else {
                                    Step::Block
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_core::{Actor, GraphConfig, RateSpec};
    use cinder_kernel::{Kernel, KernelConfig};
    use cinder_label::Label;
    use cinder_net::{CoopNetd, UncoopStack};
    use cinder_sim::Power;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig {
            graph: GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
            seed: 42,
            ..KernelConfig::default()
        })
    }

    fn tapped_reserve(k: &mut Kernel, name: &str, uw: u64) -> cinder_core::ReserveId {
        let battery = k.battery();
        let g = k.graph_mut();
        let r = g
            .create_reserve(&Actor::kernel(), name, Label::default_label())
            .unwrap();
        g.create_tap(
            &Actor::kernel(),
            &format!("{name}-tap"),
            battery,
            r,
            RateSpec::constant(Power::from_microwatts(uw)),
            Label::default_label(),
        )
        .unwrap();
        r
    }

    #[test]
    fn uncoop_pollers_fire_on_their_own_schedules() {
        let mut k = kernel();
        k.install_net(Box::new(UncoopStack::new()));
        let log = PollerLog::shared();
        let r_rss = tapped_reserve(&mut k, "rss", 37_500);
        let r_mail = tapped_reserve(&mut k, "mail", 37_500);
        k.spawn_unprivileged("rss", Box::new(PeriodicPoller::rss(log.clone())), r_rss);
        k.spawn_unprivileged("mail", Box::new(PeriodicPoller::mail(log.clone())), r_mail);
        k.run_until(SimTime::from_secs(300));
        let log = log.borrow();
        // 5 RSS polls (0,60,…,240) + 5 mail polls (15,…,255); the first
        // RSS poll needs the reserve to be non-empty to be scheduled, so
        // allow one missed slot.
        assert!(
            (8..=10).contains(&log.sends.len()),
            "sends: {:?}",
            log.sends
        );
        assert_eq!(log.blocked_first, 0, "uncoop never blocks");
        // Radio saw staggered episodes: it was activated more than once.
        assert!(k.arm9().radio().stats().activations >= 4);
    }

    #[test]
    fn coop_pollers_block_then_proceed_together() {
        let mut k = kernel();
        let netd = CoopNetd::with_defaults(k.graph_mut());
        k.install_net(Box::new(netd));
        let log = PollerLog::shared();
        let r_rss = tapped_reserve(&mut k, "rss", 37_500);
        let r_mail = tapped_reserve(&mut k, "mail", 37_500);
        k.spawn_unprivileged("rss", Box::new(PeriodicPoller::rss(log.clone())), r_rss);
        k.spawn_unprivileged("mail", Box::new(PeriodicPoller::mail(log.clone())), r_mail);
        k.run_until(SimTime::from_secs(600));
        let log = log.borrow();
        assert!(log.blocked_first >= 2, "first polls must block for pooling");
        assert!(!log.sends.is_empty(), "eventually granted");
        // Grants come in pairs: consecutive sends are near-simultaneous.
        let mut paired = 0;
        for w in log.sends.windows(2) {
            if w[1].since(w[0]) <= SimDuration::from_secs(2) {
                paired += 1;
            }
        }
        assert!(paired >= 1, "no paired grants in {:?}", log.sends);
        // Fewer activations than uncoop for the same workload.
        let activations = k.arm9().radio().stats().activations;
        assert!(activations <= 6, "activations {activations}");
    }

    #[test]
    fn next_poll_slots_do_not_drift() {
        let log = PollerLog::shared();
        let p = PeriodicPoller::new(
            SimTime::from_secs(15),
            SimDuration::from_secs(60),
            1,
            0,
            log,
        );
        assert_eq!(
            p.next_poll_after(SimTime::from_secs(10)),
            SimTime::from_secs(15)
        );
        assert_eq!(
            p.next_poll_after(SimTime::from_secs(15)),
            SimTime::from_secs(75)
        );
        // Even if a grant came late (t=130), the next slot is 135, not 190.
        assert_eq!(
            p.next_poll_after(SimTime::from_secs(130)),
            SimTime::from_secs(135)
        );
    }
}
