//! The energy-aware network picture gallery (§5.3, §6.2).
//!
//! "The application has a separate thread for downloading images, using an
//! energy reserve distinct from the main thread. … The application checks
//! the levels in the reserve periodically. A drop in the reserve level
//! indicates that the downloader is consuming energy too quickly and will
//! be throttled if it cannot curb consumption. In this case, the downloader
//! only requests partial data from the remote interlaced PNG images."
//!
//! The §6.2 workload: batches of ~2.7 MiB images with a pause between
//! batches; "the first pause lasted for 40 seconds, with each successive
//! pause being 5 seconds shorter". Without scaling the viewer stalls at an
//! empty reserve (Fig 10); with scaling it finishes ~5× faster (Fig 11).

use std::cell::RefCell;
use std::rc::Rc;

use cinder_kernel::{Ctx, KernelError, Program, Step};
use cinder_sim::{Energy, SimDuration, SimTime};

/// Workload parameters (defaults: the §6.2 experiment).
#[derive(Debug, Clone, Copy)]
pub struct ViewerConfig {
    /// Number of image batches ("pages" the user views).
    pub batches: u32,
    /// Images per batch.
    pub images_per_batch: u32,
    /// Full-quality image size (~2.7 MiB).
    pub image_bytes: u64,
    /// First inter-batch pause (40 s), shrinking by `pause_step` per batch.
    pub first_pause: SimDuration,
    /// How much shorter each successive pause is (5 s).
    pub pause_step: SimDuration,
    /// Adaptive quality scaling on/off (Fig 11 vs Fig 10).
    pub adaptive: bool,
    /// Fraction of the remaining budget the viewer is willing to spend on
    /// the rest of the batch, in ppm (planning margin).
    pub spend_fraction_ppm: u64,
    /// The viewer's estimate of a full-quality image's energy cost (learned
    /// from past downloads; used to convert budget into quality).
    pub full_image_cost: Energy,
    /// The minimum quality fraction in ppm (an interlaced PNG's first
    /// passes still render a usable preview).
    pub min_quality_ppm: u64,
    /// How long to stall before re-checking an empty reserve.
    pub stall_backoff: SimDuration,
}

impl ViewerConfig {
    /// The §6.2 workload, non-adaptive (Fig 10).
    pub fn fig10() -> Self {
        ViewerConfig {
            batches: 8,
            images_per_batch: 4,
            image_bytes: 2_831_155, // ≈ 2.7 MiB
            first_pause: SimDuration::from_secs(40),
            pause_step: SimDuration::from_secs(5),
            adaptive: false,
            spend_fraction_ppm: 900_000,
            full_image_cost: Energy::from_microjoules(210_000),
            min_quality_ppm: 20_000,
            stall_backoff: SimDuration::from_millis(500),
        }
    }

    /// The §6.2 workload with adaptive scaling (Fig 11).
    pub fn fig11() -> Self {
        ViewerConfig {
            adaptive: true,
            ..ViewerConfig::fig10()
        }
    }
}

/// One downloaded image's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageRecord {
    /// When the download completed.
    pub at: SimTime,
    /// Bytes actually transferred (scaled by quality).
    pub bytes: u64,
    /// Reserve level right after the download.
    pub reserve_after: Energy,
    /// Which batch the image belonged to.
    pub batch: u32,
}

/// Shared experiment log: reserve samples and per-image transfers.
#[derive(Debug, Default)]
pub struct ViewerLog {
    /// Per-image records (Figs 10/11's bars).
    pub images: Vec<ImageRecord>,
    /// Periodic reserve-level samples (Figs 10/11's line).
    pub reserve_samples: Vec<(SimTime, Energy)>,
    /// Set when the whole workload finished.
    pub finished_at: Option<SimTime>,
    /// Time spent stalled on an empty reserve.
    pub stalled: SimDuration,
}

impl ViewerLog {
    /// A fresh shared log.
    pub fn shared() -> Rc<RefCell<ViewerLog>> {
        Rc::new(RefCell::new(ViewerLog::default()))
    }

    /// Total bytes downloaded.
    pub fn total_bytes(&self) -> u64 {
        self.images.iter().map(|i| i.bytes).sum()
    }
}

enum State {
    /// About to download image `i` of batch `b`.
    Downloading {
        batch: u32,
        image: u32,
    },
    /// Sleeping out the post-download transfer time, then continuing.
    Transferring {
        batch: u32,
        image: u32,
        until: SimTime,
    },
    /// Pausing between batches.
    Pausing {
        next_batch: u32,
        until: SimTime,
    },
    Done,
}

/// The downloader thread of the picture gallery.
pub struct ImageViewer {
    config: ViewerConfig,
    state: State,
    log: Rc<RefCell<ViewerLog>>,
}

impl ImageViewer {
    /// A viewer with the given workload, logging into `log`.
    pub fn new(config: ViewerConfig, log: Rc<RefCell<ViewerLog>>) -> Self {
        ImageViewer {
            config,
            state: State::Downloading { batch: 0, image: 0 },
            log,
        }
    }

    /// The quality-scaled request size: the viewer divides its willing
    /// spend across the images left in the batch, converts that per-image
    /// budget into a quality fraction against its cost estimate, and clamps
    /// to the interlaced-PNG floor ("requests partial data from the remote
    /// interlaced PNG images", §5.3).
    fn request_bytes(&self, level: Energy, images_remaining: u32) -> u64 {
        if !self.config.adaptive {
            return self.config.image_bytes;
        }
        let budget = level
            .clamp_non_negative()
            .scale_ppm(self.config.spend_fraction_ppm);
        let per_image = budget.as_microjoules() / images_remaining.max(1) as i64;
        let full = self.config.full_image_cost.as_microjoules().max(1);
        let frac_ppm = ((per_image as i128) * 1_000_000 / full as i128)
            .clamp(self.config.min_quality_ppm as i128, 1_000_000) as u64;
        ((self.config.image_bytes as u128) * (frac_ppm as u128) / 1_000_000) as u64
    }

    fn pause_for(&self, finished_batch: u32) -> SimDuration {
        self.config
            .first_pause
            .saturating_sub(self.config.pause_step * finished_batch as u64)
    }
}

impl Program for ImageViewer {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        // Sample the reserve on every step: this is the figures' line.
        let level = ctx.level(ctx.active_reserve()).unwrap_or(Energy::ZERO);
        self.log
            .borrow_mut()
            .reserve_samples
            .push((ctx.now(), level));

        match self.state {
            State::Downloading { batch, image } => {
                let remaining = self.config.images_per_batch - image;
                let bytes = self.request_bytes(level, remaining);
                match ctx.download(bytes) {
                    Ok(grant) => {
                        let now = ctx.now();
                        let after = ctx.level(ctx.active_reserve()).unwrap_or(Energy::ZERO);
                        self.log.borrow_mut().images.push(ImageRecord {
                            at: now,
                            bytes,
                            reserve_after: after,
                            batch,
                        });
                        self.state = State::Transferring {
                            batch,
                            image,
                            until: now + grant.duration,
                        };
                        Step::SleepUntil(now + grant.duration)
                    }
                    Err(KernelError::Graph(cinder_core::GraphError::InsufficientResources {
                        ..
                    })) => {
                        // Fig 10's stall: wait for the tap to refill.
                        self.log.borrow_mut().stalled += self.config.stall_backoff;
                        Step::SleepUntil(ctx.now() + self.config.stall_backoff)
                    }
                    Err(_) => Step::Exit,
                }
            }
            State::Transferring {
                batch,
                image,
                until,
            } => {
                if ctx.now() < until {
                    return Step::SleepUntil(until);
                }
                let next_image = image + 1;
                if next_image < self.config.images_per_batch {
                    self.state = State::Downloading {
                        batch,
                        image: next_image,
                    };
                    return Step::Yield;
                }
                let next_batch = batch + 1;
                if next_batch >= self.config.batches {
                    self.log.borrow_mut().finished_at = Some(ctx.now());
                    self.state = State::Done;
                    return Step::Exit;
                }
                let until = ctx.now() + self.pause_for(next_batch);
                self.state = State::Pausing { next_batch, until };
                Step::SleepUntil(until)
            }
            State::Pausing { next_batch, until } => {
                if ctx.now() < until {
                    return Step::SleepUntil(until);
                }
                self.state = State::Downloading {
                    batch: next_batch,
                    image: 0,
                };
                Step::Yield
            }
            State::Done => Step::Exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_core::{Actor, GraphConfig, RateSpec};
    use cinder_hw::LaptopNet;
    use cinder_kernel::{Kernel, KernelConfig};
    use cinder_label::Label;
    use cinder_sim::Power;

    /// Builds the §6.2 rig: downloader reserve fed at a constant rate on
    /// the laptop platform.
    fn rig(config: ViewerConfig) -> (Kernel, Rc<RefCell<ViewerLog>>) {
        let mut k = Kernel::new(KernelConfig {
            graph: GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
            laptop: Some(LaptopNet::t60p()),
            battery: Energy::from_joules(50_000),
            ..KernelConfig::default()
        });
        let battery = k.battery();
        let r = k
            .graph_mut()
            .create_reserve(&Actor::kernel(), "downloader", Label::default_label())
            .unwrap();
        // Seed + feed the downloader's reserve.
        k.graph_mut()
            .transfer(
                &Actor::kernel(),
                battery,
                r,
                Energy::from_microjoules(200_000),
            )
            .unwrap();
        k.graph_mut()
            .create_tap(
                &Actor::kernel(),
                "dl-tap",
                battery,
                r,
                RateSpec::constant(Power::from_microwatts(4_000)),
                Label::default_label(),
            )
            .unwrap();
        let log = ViewerLog::shared();
        k.spawn_unprivileged("viewer", Box::new(ImageViewer::new(config, log.clone())), r);
        (k, log)
    }

    #[test]
    fn non_adaptive_viewer_stalls_and_crawls() {
        let (mut k, log) = rig(ViewerConfig::fig10());
        k.run_until(SimTime::from_secs(3_000));
        let log = log.borrow();
        assert!(
            log.finished_at.is_some(),
            "fig10 run must finish within 3000 s"
        );
        // Every image is full size.
        assert!(log.images.iter().all(|i| i.bytes == 2_831_155));
        // And the reserve bottomed out: real stalls happened.
        assert!(
            log.stalled > SimDuration::from_secs(10),
            "stalled {:?}",
            log.stalled
        );
    }

    #[test]
    fn adaptive_viewer_is_several_times_faster() {
        let (mut k10, log10) = rig(ViewerConfig::fig10());
        k10.run_until(SimTime::from_secs(3_000));
        let (mut k11, log11) = rig(ViewerConfig::fig11());
        k11.run_until(SimTime::from_secs(3_000));
        let t10 = log10
            .borrow()
            .finished_at
            .expect("fig10 finishes")
            .as_secs_f64();
        let t11 = log11
            .borrow()
            .finished_at
            .expect("fig11 finishes")
            .as_secs_f64();
        // Paper: ~5×; assert the conservative ≥3× (shape criterion).
        assert!(
            t10 / t11 >= 3.0,
            "adaptive {t11}s vs non-adaptive {t10}s (ratio {})",
            t10 / t11
        );
    }

    #[test]
    fn adaptive_viewer_never_empties_reserve() {
        let (mut k, log) = rig(ViewerConfig::fig11());
        k.run_until(SimTime::from_secs(3_000));
        let log = log.borrow();
        assert!(log.finished_at.is_some());
        // "the level of energy present in the reserve dropped below the
        // threshold, but never to zero"
        assert!(log.stalled.is_zero(), "adaptive stalled {:?}", log.stalled);
        assert!(log.reserve_samples.iter().all(|&(_, l)| !l.is_negative()));
        // Quality was actually scaled down under pressure.
        assert!(log.images.iter().any(|i| i.bytes < 2_831_155));
        // But the interlacing floor kept every request renderable (≥ 2%).
        assert!(log.images.iter().all(|i| i.bytes >= 2_831_155 / 50));
    }

    #[test]
    fn adaptive_downloads_less_data() {
        let (mut k10, log10) = rig(ViewerConfig::fig10());
        k10.run_until(SimTime::from_secs(3_000));
        let (mut k11, log11) = rig(ViewerConfig::fig11());
        k11.run_until(SimTime::from_secs(3_000));
        assert!(log11.borrow().total_bytes() < log10.borrow().total_bytes());
    }
}
