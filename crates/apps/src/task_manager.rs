//! The task manager and the foreground/background power policy.
//!
//! §5.4 / Fig 7: every application reserve is fed by two taps — one from a
//! *foreground* reserve (high rate, but set to 0 while the app is
//! backgrounded) and one from a *background* reserve (always on, low rate).
//! "The task manager is the creator of the tap connecting the application
//! to the foreground reserve and, by default, is the only thread privileged
//! to modify the parameters on the tap" — reproduced here with an integrity
//! category only the manager's actor owns.

use cinder_core::{Actor, RateSpec, ReserveId, TapId};
use cinder_kernel::{Ctx, Kernel, KernelError, Program, Step, ThreadId};
use cinder_label::{Label, Level, PrivilegeSet};
use cinder_sim::{Power, SimTime};

/// Topology parameters for the fg/bg experiment.
#[derive(Debug, Clone, Copy)]
pub struct FgBgConfig {
    /// The foreground tap rate granted to the focused app (Fig 12a:
    /// 137 mW; Fig 12b: 300 mW).
    pub fg_rate: Power,
    /// Total background power shared by all apps (Fig 12: 14 mW).
    pub bg_total: Power,
    /// Number of applications.
    pub apps: usize,
}

impl FgBgConfig {
    /// Fig 12a: the foreground tap matches the CPU's cost exactly.
    pub fn fig12a() -> Self {
        FgBgConfig {
            fg_rate: Power::from_milliwatts(137),
            bg_total: Power::from_milliwatts(14),
            apps: 2,
        }
    }

    /// Fig 12b: an over-provisioned 300 mW foreground tap (hoarding).
    pub fn fig12b() -> Self {
        FgBgConfig {
            fg_rate: Power::from_milliwatts(300),
            ..FgBgConfig::fig12a()
        }
    }
}

/// Handles to the built topology.
#[derive(Debug, Clone)]
pub struct FgBgHandles {
    /// The high-rate foreground reserve.
    pub fg_reserve: ReserveId,
    /// The low-rate background reserve.
    pub bg_reserve: ReserveId,
    /// Per-app reserves.
    pub app_reserves: Vec<ReserveId>,
    /// Per-app foreground taps (manager-controlled).
    pub fg_taps: Vec<TapId>,
    /// Per-app background taps (always on).
    pub bg_taps: Vec<TapId>,
    /// The manager's security identity (owns the tap-integrity category).
    pub manager_actor: Actor,
}

/// Builds the Fig 7 topology for `config.apps` applications. Returns the
/// handles; spawn app threads on `app_reserves` and a [`TaskManager`] with
/// `manager_actor`.
pub fn build_fg_bg(kernel: &mut Kernel, config: FgBgConfig) -> Result<FgBgHandles, KernelError> {
    let k = Actor::kernel();
    let battery = kernel.battery();
    let cat = kernel.alloc_category();
    let tap_label = Label::with(&[(cat, Level::L0)]);
    let manager_actor = Actor::new(Label::default_label(), PrivilegeSet::with(&[cat]));

    let g = kernel.graph_mut();
    let fg_reserve = g.create_reserve(&k, "foreground", Label::default_label())?;
    let bg_reserve = g.create_reserve(&k, "background", Label::default_label())?;
    g.create_tap(
        &k,
        "battery→fg",
        battery,
        fg_reserve,
        RateSpec::constant(config.fg_rate),
        tap_label.clone(),
    )?;
    g.create_tap(
        &k,
        "battery→bg",
        battery,
        bg_reserve,
        RateSpec::constant(config.bg_total),
        tap_label.clone(),
    )?;

    let per_app_bg =
        Power::from_microwatts(config.bg_total.as_microwatts() / config.apps.max(1) as u64);
    let mut app_reserves = Vec::new();
    let mut fg_taps = Vec::new();
    let mut bg_taps = Vec::new();
    for i in 0..config.apps {
        let app = g.create_reserve(&k, &format!("app{i}"), Label::default_label())?;
        // Foreground tap starts OFF (rate 0): everyone begins backgrounded.
        let fg_tap = g.create_tap(
            &k,
            &format!("fg→app{i}"),
            fg_reserve,
            app,
            RateSpec::constant(Power::ZERO),
            tap_label.clone(),
        )?;
        let bg_tap = g.create_tap(
            &k,
            &format!("bg→app{i}"),
            bg_reserve,
            app,
            RateSpec::constant(per_app_bg),
            tap_label.clone(),
        )?;
        app_reserves.push(app);
        fg_taps.push(fg_tap);
        bg_taps.push(bg_tap);
    }
    Ok(FgBgHandles {
        fg_reserve,
        bg_reserve,
        app_reserves,
        fg_taps,
        bg_taps,
        manager_actor,
    })
}

/// A focus change: at `at`, the app with index `Some(i)` becomes
/// foreground (everyone else backgrounds); `None` backgrounds everyone.
pub type FocusEvent = (SimTime, Option<usize>);

/// The task manager program: walks a focus schedule, toggling foreground
/// taps (Fig 12: A foregrounded during 10–20 s, B during 30–40 s).
pub struct TaskManager {
    fg_taps: Vec<TapId>,
    fg_rate: Power,
    schedule: Vec<FocusEvent>,
    next: usize,
}

impl TaskManager {
    /// A manager driving `fg_taps` per `schedule` (sorted by time).
    pub fn new(handles: &FgBgHandles, fg_rate: Power, mut schedule: Vec<FocusEvent>) -> Self {
        schedule.sort_by_key(|(t, _)| *t);
        TaskManager {
            fg_taps: handles.fg_taps.clone(),
            fg_rate,
            schedule,
            next: 0,
        }
    }
}

impl Program for TaskManager {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        while self.next < self.schedule.len() && self.schedule[self.next].0 <= ctx.now() {
            let (_, focus) = self.schedule[self.next];
            self.next += 1;
            for (i, &tap) in self.fg_taps.iter().enumerate() {
                let rate = if focus == Some(i) {
                    self.fg_rate
                } else {
                    Power::ZERO
                };
                // The manager owns the taps' integrity category, so this is
                // the one thread that may re-rate them (§5.4).
                ctx.set_tap_rate(tap, RateSpec::constant(rate))
                    .expect("manager owns the tap label");
            }
        }
        match self.schedule.get(self.next) {
            Some(&(t, _)) => Step::SleepUntil(t),
            None => Step::Exit,
        }
    }
}

/// Spawns the manager thread with a small funded reserve of its own (it
/// must be schedulable to act, but its consumption is negligible).
pub fn spawn_manager(
    kernel: &mut Kernel,
    handles: &FgBgHandles,
    fg_rate: Power,
    schedule: Vec<FocusEvent>,
) -> Result<ThreadId, KernelError> {
    let k = Actor::kernel();
    let battery = kernel.battery();
    let g = kernel.graph_mut();
    let mgr_reserve = g.create_reserve(&k, "task-manager", Label::default_label())?;
    g.transfer(&k, battery, mgr_reserve, cinder_sim::Energy::from_joules(1))?;
    let manager = TaskManager::new(handles, fg_rate, schedule);
    let actor = handles.manager_actor.clone();
    Ok(kernel.spawn("task-manager", Box::new(manager), mgr_reserve, actor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spinner::Spinner;
    use cinder_core::GraphConfig;
    use cinder_kernel::KernelConfig;
    use cinder_sim::Energy;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig {
            graph: GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
            ..KernelConfig::default()
        })
    }

    #[test]
    fn apps_cannot_touch_manager_taps() {
        let mut k = kernel();
        let h = build_fg_bg(&mut k, FgBgConfig::fig12a()).unwrap();
        // An unprivileged app actor cannot re-rate its own foreground tap.
        let app_actor = Actor::unprivileged();
        let err = k
            .graph_mut()
            .set_tap_rate(
                &app_actor,
                h.fg_taps[0],
                RateSpec::constant(Power::from_watts(5)),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            cinder_core::GraphError::PermissionDenied { .. }
        ));
        // The manager can.
        assert!(k
            .graph_mut()
            .set_tap_rate(
                &h.manager_actor,
                h.fg_taps[0],
                RateSpec::constant(Power::from_milliwatts(137)),
            )
            .is_ok());
    }

    #[test]
    fn fig12a_focus_switches_power() {
        let mut k = kernel();
        let cfg = FgBgConfig::fig12a();
        let h = build_fg_bg(&mut k, cfg).unwrap();
        let a = k.spawn_unprivileged("A", Box::new(Spinner::new()), h.app_reserves[0]);
        let b = k.spawn_unprivileged("B", Box::new(Spinner::new()), h.app_reserves[1]);
        spawn_manager(
            &mut k,
            &h,
            cfg.fg_rate,
            vec![
                (SimTime::from_secs(10), Some(0)),
                (SimTime::from_secs(20), None),
                (SimTime::from_secs(30), Some(1)),
                (SimTime::from_secs(40), None),
            ],
        )
        .unwrap();
        // Background phase: both crawl at ~7 mW.
        k.run_until(SimTime::from_secs(10));
        let ea = k.thread_power_estimate(a).as_milliwatts_f64();
        assert!(ea < 20.0, "A bg estimate {ea} mW");
        // A in foreground: ~137 mW; B still ~7 mW.
        k.run_until(SimTime::from_secs(20));
        let ea = k.thread_power_estimate(a).as_milliwatts_f64();
        let eb = k.thread_power_estimate(b).as_milliwatts_f64();
        assert!((ea - 137.0).abs() < 15.0, "A fg estimate {ea} mW");
        assert!(eb < 20.0, "B bg estimate {eb} mW");
        // B's turn.
        k.run_until(SimTime::from_secs(40));
        let eb = k.thread_power_estimate(b).as_milliwatts_f64();
        assert!((eb - 137.0).abs() < 15.0, "B fg estimate {eb} mW");
        assert!(k.graph().totals().conserved());
    }

    #[test]
    fn fig12b_overprovision_lets_apps_hoard() {
        let mut k = kernel();
        let cfg = FgBgConfig::fig12b();
        let h = build_fg_bg(&mut k, cfg).unwrap();
        let _a = k.spawn_unprivileged("A", Box::new(Spinner::new()), h.app_reserves[0]);
        spawn_manager(
            &mut k,
            &h,
            cfg.fg_rate,
            vec![
                (SimTime::from_secs(10), Some(0)),
                (SimTime::from_secs(20), None),
            ],
        )
        .unwrap();
        k.run_until(SimTime::from_secs(20));
        // A received 300 mW for 10 s but the CPU only costs 137 mW: it
        // banked the difference (~1.6 J).
        let banked = k.graph().reserve(h.app_reserves[0]).unwrap().balance();
        assert!(
            banked > Energy::from_millijoules(1_200),
            "A banked {banked}"
        );
    }
}
