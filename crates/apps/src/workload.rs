//! The workload seam: one trait between application topologies and any
//! driver that runs them.
//!
//! The fleet's device driver used to be a monolithic `match` over its
//! workload enum; [`WorkloadProgram`] replaces that with a pluggable
//! boundary owned by the crate that owns the applications. A workload
//! gets two hooks — [`WorkloadProgram::configure`] to shape the kernel
//! before boot (e.g. the gallery's laptop NIC) and
//! [`WorkloadProgram::install`] to build its reserves, taps, stacks, and
//! threads inside it — and hands back an [`InstalledWorkload`] whose
//! [`WorkloadProbe`] the driver queries after the run for app-level
//! telemetry (completed operations, application-path bytes). New
//! workloads (the peripheral-driven [`crate::navigator`] and
//! [`crate::screen_on`]) plug in without touching the driver.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use cinder_core::{Actor, RateSpec, ReserveId, TapId};
use cinder_faults::{FaultConfig, OutageSpec};
use cinder_hw::LaptopNet;
use cinder_kernel::{Kernel, KernelConfig, KernelError, Program, ThreadId};
use cinder_label::Label;
use cinder_net::{CoopNetd, UncoopStack};
use cinder_sim::{Energy, Power, SimDuration, SimTime};

use cinder_offload::OffloadProfile;

use crate::browser::{build_browser, BrowserConfig};
use crate::image_viewer::{ImageViewer, ViewerConfig, ViewerLog};
use crate::navigator::{NavLog, Navigator, NavigatorConfig};
use crate::offloader::{OffloadLog, Offloader, OffloaderConfig, TraceBackend};
use crate::pollers::{build_pollers_with_retry, PeriodicPoller, PollerLog};
use crate::screen_on::{BrowseLog, ScreenOn, ScreenOnConfig};
use crate::spinner::Spinner;

/// The shared-backend economy a driver hands to offload-capable
/// workloads: the backend profile plus the horizon the trace must cover.
/// Plain data — the workload rebuilds the identical trace from it, which
/// is what keeps the backend deterministic across worker layouts.
#[derive(Debug, Clone, Copy)]
pub struct OffloadSetup {
    /// Backend sizing and item shape.
    pub profile: OffloadProfile,
    /// Simulation horizon the trace must span.
    pub horizon: SimDuration,
    /// Fleet-shared backend outage windows baked into the trace, if the
    /// scenario injects them.
    pub outages: Option<OutageSpec>,
}

impl OffloadSetup {
    /// The default profile over a one-hour horizon (standalone runs).
    pub fn nominal() -> Self {
        OffloadSetup {
            profile: OffloadProfile::default(),
            horizon: SimDuration::from_secs(3_600),
            outages: None,
        }
    }
}

/// Per-device parameters a driver passes through to the workload: jitter
/// scales, the optional §9 data plan, and the offload economy if the
/// scenario runs one.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadEnv {
    /// Tap-rate scale in ppm (1_000_000 = nominal).
    pub rate_scale_ppm: u64,
    /// Interval scale in ppm (staggers periodic work across a fleet).
    pub interval_scale_ppm: u64,
    /// §9 data-plan size in bytes, if the device carries one.
    pub data_plan_bytes: Option<u64>,
    /// Shared-backend offload economy, if the scenario runs one.
    pub offload: Option<OffloadSetup>,
    /// The scenario's fault model, if it injects any — workloads read
    /// the retry policy off it and opt into backoff.
    pub faults: Option<FaultConfig>,
}

impl WorkloadEnv {
    /// No jitter, no plan, no offload economy.
    pub fn nominal() -> Self {
        WorkloadEnv {
            rate_scale_ppm: 1_000_000,
            interval_scale_ppm: 1_000_000,
            data_plan_bytes: None,
            offload: None,
            faults: None,
        }
    }

    /// The retry policy the scenario's fault model prescribes, if any.
    pub fn retry(&self) -> Option<cinder_faults::RetryPolicy> {
        self.faults.and_then(|f| f.retry)
    }

    /// Scales a nominal tap rate by the device's rate jitter.
    pub fn scale(&self, p: Power) -> Power {
        p.scale_ppm(self.rate_scale_ppm)
    }

    /// Scales a nominal interval by the device's interval jitter.
    pub fn interval(&self, base: SimDuration) -> SimDuration {
        SimDuration::from_micros(base.as_micros() * self.interval_scale_ppm / 1_000_000)
    }
}

/// What a driver reads off a finished workload.
pub trait WorkloadProbe {
    /// Completed application operations (polls sent / pages / images /
    /// fixes).
    fn ops(&self, kernel: &Kernel) -> u64;

    /// Application-path bytes that never cross the radio (the gallery's
    /// NIC downloads); zero means "use the radio's byte counters".
    fn app_net_bytes(&self, _kernel: &Kernel) -> u64 {
        0
    }

    /// Backoff retries the workload's resilience layer scheduled (0 for
    /// workloads without one).
    fn retries(&self, _kernel: &Kernel) -> u64 {
        0
    }

    /// Work items abandoned after the retry budget ran out.
    fn retries_exhausted(&self, _kernel: &Kernel) -> u64 {
        0
    }
}

/// A shared backlight-drive ceiling (ppm of full drive) a policy driver
/// writes and a screen-driving workload reads when it sets its drive —
/// the "hint" half of the policy seam. `FULL_DRIVE_PPM` means uncapped.
pub type DriveCap = Rc<Cell<u64>>;

/// A throttleable feed a workload exposes to the policy engine: the tap,
/// the reserve it fills, its nominal (jitter-scaled) rate, and whether
/// the feed funds background work a policy may demote when the user is
/// away.
#[derive(Debug, Clone, Copy)]
pub struct PolicyTapHandle {
    /// The tap to re-rate.
    pub tap: TapId,
    /// The reserve the tap feeds (its level is a policy observable).
    pub reserve: ReserveId,
    /// The rate the workload installed.
    pub nominal: Power,
    /// True for feeds funding background work (pollers, hogs).
    pub background: bool,
}

/// A restartable workload thread: everything a fault supervisor needs to
/// kill it and bring a fresh instance back. `make` rebuilds the program
/// in its initial state, sharing the workload's logs (an `Rc` capture),
/// so a transient crash resets in-progress work but keeps telemetry.
pub struct RespawnHandle {
    /// The live thread (a supervisor updates this after each respawn).
    pub thread: ThreadId,
    /// The reserve the respawned program runs under.
    pub reserve: ReserveId,
    /// Thread name, reused on respawn.
    pub name: String,
    /// Builds a fresh program in its initial state.
    pub make: Box<dyn Fn() -> Box<dyn Program>>,
}

/// A workload's handles back to the driver.
pub struct InstalledWorkload {
    /// The §9 plan reserve, when the workload installed one.
    pub plan_reserve: Option<ReserveId>,
    /// Post-run telemetry reader.
    pub probe: Box<dyn WorkloadProbe>,
    /// The workload's natural activity period, if it has one (the pollers'
    /// scaled poll interval). A fleet driver probing for steady states uses
    /// it as the epoch length: probing much finer wastes probe scans,
    /// probing much coarser classifies whole active periods as Dynamic.
    /// `None` means "no obvious period" — the driver picks a default.
    pub steady_hint: Option<SimDuration>,
    /// The feeds a policy engine may observe and re-rate, in install
    /// order. Empty for workloads that own their rates (the browser's
    /// internal taps are its own business).
    pub policy_taps: Vec<PolicyTapHandle>,
    /// The backlight-cap hint cell, for workloads that drive the screen.
    pub drive_cap: Option<DriveCap>,
    /// Threads a fault supervisor may kill and respawn. Empty for
    /// workloads that don't support transient-crash injection.
    pub respawns: Vec<RespawnHandle>,
}

impl InstalledWorkload {
    fn plain(probe: Box<dyn WorkloadProbe>) -> Self {
        InstalledWorkload {
            plan_reserve: None,
            probe,
            steady_hint: None,
            policy_taps: Vec::new(),
            drive_cap: None,
            respawns: Vec::new(),
        }
    }
}

/// One of the application studies, as a pluggable device workload.
pub trait WorkloadProgram {
    /// Shapes the kernel configuration before boot (default: no change).
    fn configure(&self, _config: &mut KernelConfig) {}

    /// Builds the workload's topology — reserves, taps, network stack,
    /// threads — inside the freshly booted kernel.
    fn install(
        &self,
        kernel: &mut Kernel,
        env: &WorkloadEnv,
    ) -> Result<InstalledWorkload, KernelError>;
}

/// A probe with nothing app-level to report.
struct NullProbe;

impl WorkloadProbe for NullProbe {
    fn ops(&self, _kernel: &Kernel) -> u64 {
        0
    }
}

/// Creates a reserve seeded with `seed` and fed `feed` from the battery —
/// the standard funding shape every tap-throttled workload uses. Returns
/// the reserve and its feed tap so workloads can hand the tap to the
/// policy engine.
fn seeded_tapped_reserve(
    kernel: &mut Kernel,
    name: &str,
    seed: Energy,
    feed: Power,
) -> Result<(ReserveId, TapId), KernelError> {
    let root = Actor::kernel();
    let battery = kernel.battery();
    let g = kernel.graph_mut();
    let r = g.create_reserve(&root, name, Label::default_label())?;
    if seed.is_positive() {
        g.transfer(&root, battery, r, seed)?;
    }
    let tap = g.create_tap(
        &root,
        &format!("{name}-tap"),
        battery,
        r,
        RateSpec::constant(feed),
        Label::default_label(),
    )?;
    Ok((r, tap))
}

// ----- the §5/§6 studies ---------------------------------------------------

/// §6.4's mail + RSS pollers, cooperative (netd) or not.
pub struct PollersWorkload {
    /// Use the cooperative netd stack.
    pub coop: bool,
}

struct PollerProbe {
    log: Rc<RefCell<PollerLog>>,
}

impl WorkloadProbe for PollerProbe {
    fn ops(&self, _kernel: &Kernel) -> u64 {
        self.log.borrow().sends.len() as u64
    }

    fn retries(&self, _kernel: &Kernel) -> u64 {
        self.log.borrow().retries
    }

    fn retries_exhausted(&self, _kernel: &Kernel) -> u64 {
        self.log.borrow().gave_up
    }
}

impl WorkloadProgram for PollersWorkload {
    fn install(
        &self,
        kernel: &mut Kernel,
        env: &WorkloadEnv,
    ) -> Result<InstalledWorkload, KernelError> {
        if self.coop {
            let netd = CoopNetd::with_defaults(kernel.graph_mut());
            kernel.install_net(Box::new(netd));
        } else {
            kernel.install_net(Box::new(UncoopStack::new()));
        }
        let feed = env.scale(Power::from_microwatts(37_500));
        let retry = env.retry();
        let rss_interval = env.interval(SimDuration::from_secs(60));
        let mail_interval = env.interval(SimDuration::from_secs(60));
        let handles = build_pollers_with_retry(kernel, feed, rss_interval, mail_interval, retry)?;
        // §9 in-kernel: the device carries a NetworkBytes root pool whose
        // plan reserve gates both pollers' sends online — blocked-on-bytes
        // is kernel state, not an offline replay.
        let plan_reserve = match env.data_plan_bytes {
            Some(bytes) => Some(kernel.install_byte_plan(bytes, &[handles.rss, handles.mail])?),
            None => None,
        };
        let rss_log = handles.log.clone();
        let mail_log = handles.log.clone();
        let respawns = vec![
            RespawnHandle {
                thread: handles.rss,
                reserve: handles.rss_reserve,
                name: "rss".into(),
                make: Box::new(move || {
                    Box::new(
                        PeriodicPoller::new(
                            SimTime::ZERO,
                            rss_interval,
                            256,
                            8_192,
                            rss_log.clone(),
                        )
                        .with_retry(retry),
                    )
                }),
            },
            RespawnHandle {
                thread: handles.mail,
                reserve: handles.mail_reserve,
                name: "mail".into(),
                make: Box::new(move || {
                    Box::new(
                        PeriodicPoller::new(
                            SimTime::from_secs(15),
                            mail_interval,
                            512,
                            4_096,
                            mail_log.clone(),
                        )
                        .with_retry(retry),
                    )
                }),
            },
        ];
        Ok(InstalledWorkload {
            plan_reserve,
            probe: Box::new(PollerProbe { log: handles.log }),
            steady_hint: Some(env.interval(SimDuration::from_secs(60))),
            // Both pollers are classic background work: first in line for
            // away-time demotion.
            policy_taps: vec![
                PolicyTapHandle {
                    tap: handles.rss_tap,
                    reserve: handles.rss_reserve,
                    nominal: feed,
                    background: true,
                },
                PolicyTapHandle {
                    tap: handles.mail_tap,
                    reserve: handles.mail_reserve,
                    nominal: feed,
                    background: true,
                },
            ],
            drive_cap: None,
            respawns,
        })
    }
}

/// §5.2's browser with isolated plugin and ad-block extension (Fig 6b).
pub struct BrowserWorkload;

impl WorkloadProgram for BrowserWorkload {
    fn install(
        &self,
        kernel: &mut Kernel,
        env: &WorkloadEnv,
    ) -> Result<InstalledWorkload, KernelError> {
        let base = BrowserConfig::fig6b();
        build_browser(
            kernel,
            BrowserConfig {
                browser_tap: env.scale(base.browser_tap),
                plugin_tap: env.scale(base.plugin_tap),
                extension_tap: env.scale(base.extension_tap),
                ..base
            },
        )?;
        Ok(InstalledWorkload::plain(Box::new(NullProbe)))
    }
}

/// §5.3/§6.2's energy-aware picture gallery on the laptop platform.
pub struct GalleryWorkload {
    /// Scale image quality to the reserve level (Fig 11 vs Fig 10).
    pub adaptive: bool,
}

struct ViewerProbe {
    log: Rc<RefCell<ViewerLog>>,
}

impl WorkloadProbe for ViewerProbe {
    fn ops(&self, _kernel: &Kernel) -> u64 {
        self.log.borrow().images.len() as u64
    }

    fn app_net_bytes(&self, _kernel: &Kernel) -> u64 {
        self.log.borrow().total_bytes()
    }
}

impl WorkloadProgram for GalleryWorkload {
    fn configure(&self, config: &mut KernelConfig) {
        config.laptop = Some(LaptopNet::t60p());
    }

    fn install(
        &self,
        kernel: &mut Kernel,
        env: &WorkloadEnv,
    ) -> Result<InstalledWorkload, KernelError> {
        let feed = env.scale(Power::from_microwatts(4_000));
        let (r, tap) = seeded_tapped_reserve(
            kernel,
            "downloader",
            Energy::from_microjoules(200_000),
            feed,
        )?;
        let log = ViewerLog::shared();
        let config = if self.adaptive {
            ViewerConfig::fig11()
        } else {
            ViewerConfig::fig10()
        };
        kernel.spawn_unprivileged("viewer", Box::new(ImageViewer::new(config, log.clone())), r);
        Ok(InstalledWorkload {
            policy_taps: vec![PolicyTapHandle {
                tap,
                reserve: r,
                nominal: feed,
                background: true,
            }],
            ..InstalledWorkload::plain(Box::new(ViewerProbe { log }))
        })
    }
}

/// A background CPU hog throttled behind a tap (the Fig 9 shape).
pub struct SpinnerWorkload;

impl WorkloadProgram for SpinnerWorkload {
    fn install(
        &self,
        kernel: &mut Kernel,
        env: &WorkloadEnv,
    ) -> Result<InstalledWorkload, KernelError> {
        let feed = env.scale(Power::from_microwatts(68_500));
        let (r, tap) = seeded_tapped_reserve(kernel, "hog", Energy::ZERO, feed)?;
        let tid = kernel.spawn_unprivileged("hog", Box::new(Spinner::new()), r);
        Ok(InstalledWorkload {
            policy_taps: vec![PolicyTapHandle {
                tap,
                reserve: r,
                nominal: feed,
                background: true,
            }],
            respawns: vec![RespawnHandle {
                thread: tid,
                reserve: r,
                name: "hog".into(),
                make: Box::new(|| Box::new(Spinner::new())),
            }],
            ..InstalledWorkload::plain(Box::new(NullProbe))
        })
    }
}

// ----- the peripheral workloads --------------------------------------------

/// Duty-cycled GPS fixes under a tapped reserve (see [`crate::navigator`]).
pub struct NavigatorWorkload;

struct NavigatorProbe {
    log: Rc<RefCell<NavLog>>,
}

impl WorkloadProbe for NavigatorProbe {
    fn ops(&self, _kernel: &Kernel) -> u64 {
        self.log.borrow().fixes.len() as u64
    }
}

impl WorkloadProgram for NavigatorWorkload {
    fn install(
        &self,
        kernel: &mut Kernel,
        env: &WorkloadEnv,
    ) -> Result<InstalledWorkload, KernelError> {
        // ~50 mW sustains the nominal 10 s / 60 s duty cycle; the jittered
        // feed leaves some devices stretching their fix interval.
        let feed = env.scale(Power::from_microwatts(52_500));
        let (r, tap) = seeded_tapped_reserve(kernel, "gps", Energy::from_joules(20), feed)?;
        let log = NavLog::shared();
        let nav = Navigator::new(NavigatorConfig::fleet_default(), r, log.clone());
        kernel.spawn_unprivileged("nav", Box::new(nav), r);
        Ok(InstalledWorkload {
            // Navigation is user-facing: the lifetime controller may scale
            // it, but away-time demotion leaves it alone.
            policy_taps: vec![PolicyTapHandle {
                tap,
                reserve: r,
                nominal: feed,
                background: false,
            }],
            ..InstalledWorkload::plain(Box::new(NavigatorProbe { log }))
        })
    }
}

/// Backlit browsing sessions under a tapped reserve (see
/// [`crate::screen_on`]).
pub struct ScreenOnWorkload;

struct ScreenOnProbe {
    log: Rc<RefCell<BrowseLog>>,
}

impl WorkloadProbe for ScreenOnProbe {
    fn ops(&self, _kernel: &Kernel) -> u64 {
        self.log.borrow().pages
    }
}

impl WorkloadProgram for ScreenOnWorkload {
    fn install(
        &self,
        kernel: &mut Kernel,
        env: &WorkloadEnv,
    ) -> Result<InstalledWorkload, KernelError> {
        // A deficit feed against full brightness: sessions dim as the
        // reserve sags, and the dimmed draw fits back inside the feed.
        let feed = env.scale(Power::from_microwatts(190_000));
        let (r, tap) = seeded_tapped_reserve(kernel, "screen", Energy::from_joules(40), feed)?;
        let log = BrowseLog::shared();
        let app = ScreenOn::new(ScreenOnConfig::fleet_default(), r, log.clone());
        let drive_cap = app.drive_cap_handle();
        kernel.spawn_unprivileged("browse", Box::new(app), r);
        Ok(InstalledWorkload {
            // The screen feed is user-facing; the backlight hint cell is
            // where presence policy lands.
            policy_taps: vec![PolicyTapHandle {
                tap,
                reserve: r,
                nominal: feed,
                background: false,
            }],
            drive_cap: Some(drive_cap),
            ..InstalledWorkload::plain(Box::new(ScreenOnProbe { log }))
        })
    }
}

// ----- the offload economy -------------------------------------------------

/// The cloud-offload client (see [`crate::offloader`]): periodic work
/// items priced local-vs-remote against a shared backend trace.
pub struct OffloaderWorkload;

struct OffloaderProbe {
    log: Rc<RefCell<OffloadLog>>,
}

impl WorkloadProbe for OffloaderProbe {
    fn ops(&self, _kernel: &Kernel) -> u64 {
        self.log.borrow().items
    }

    fn retries(&self, _kernel: &Kernel) -> u64 {
        self.log.borrow().retries
    }

    fn retries_exhausted(&self, _kernel: &Kernel) -> u64 {
        self.log.borrow().retries_exhausted
    }
}

impl WorkloadProgram for OffloaderWorkload {
    fn install(
        &self,
        kernel: &mut Kernel,
        env: &WorkloadEnv,
    ) -> Result<InstalledWorkload, KernelError> {
        // The radio path is the cooperative netd: offload round trips pay
        // real radio joules out of the device's reserve through the pool.
        let netd = CoopNetd::with_defaults(kernel.graph_mut());
        kernel.install_net(Box::new(netd));
        let setup = env.offload.unwrap_or_else(OffloadSetup::nominal);
        let backend = match setup.outages {
            Some(spec) => TraceBackend::build_with_outages(setup.profile, setup.horizon, spec),
            None => TraceBackend::build(setup.profile, setup.horizon),
        };
        kernel.install_offload(Box::new(backend));
        // 30 J of headroom plus a 60 mW feed: enough to keep the remote
        // path fundable at the nominal cadence, tight enough that the
        // reserve level is a live signal for the break-even policy.
        let feed = env.scale(Power::from_microwatts(60_000));
        let (r, tap) = seeded_tapped_reserve(kernel, "offload", Energy::from_joules(30), feed)?;
        let interval = env.interval(setup.profile.request_interval);
        let config = OffloaderConfig {
            interval,
            ..OffloaderConfig::from_profile(&setup.profile)
        };
        let retry = env.retry();
        let log = OffloadLog::shared();
        let tid = kernel.spawn_unprivileged(
            "offloader",
            Box::new(Offloader::new(config, log.clone()).with_retry(retry)),
            r,
        );
        let plan_reserve = match env.data_plan_bytes {
            Some(bytes) => Some(kernel.install_byte_plan(bytes, &[tid])?),
            None => None,
        };
        let respawn_log = log.clone();
        Ok(InstalledWorkload {
            plan_reserve,
            probe: Box::new(OffloaderProbe { log }),
            steady_hint: Some(interval),
            // Work items are deferrable compute: background by nature.
            policy_taps: vec![PolicyTapHandle {
                tap,
                reserve: r,
                nominal: feed,
                background: true,
            }],
            drive_cap: None,
            respawns: vec![RespawnHandle {
                thread: tid,
                reserve: r,
                name: "offloader".into(),
                make: Box::new(move || {
                    Box::new(Offloader::new(config, respawn_log.clone()).with_retry(retry))
                }),
            }],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_sim::SimTime;

    fn run(workload: &dyn WorkloadProgram, secs: u64) -> (Kernel, InstalledWorkload) {
        let mut config = KernelConfig {
            seed: 11,
            idle_skip: true,
            sched: cinder_core::SchedulerConfig {
                quantum: SimDuration::from_millis(100),
                ..cinder_core::SchedulerConfig::default()
            },
            ..KernelConfig::default()
        };
        workload.configure(&mut config);
        let mut kernel = Kernel::new(config);
        let installed = workload
            .install(&mut kernel, &WorkloadEnv::nominal())
            .expect("root installs the workload");
        kernel.run_until(SimTime::from_secs(secs));
        (kernel, installed)
    }

    #[test]
    fn every_workload_installs_and_produces_energy() {
        let workloads: Vec<Box<dyn WorkloadProgram>> = vec![
            Box::new(PollersWorkload { coop: true }),
            Box::new(PollersWorkload { coop: false }),
            Box::new(BrowserWorkload),
            Box::new(GalleryWorkload { adaptive: true }),
            Box::new(SpinnerWorkload),
            Box::new(NavigatorWorkload),
            Box::new(ScreenOnWorkload),
            Box::new(OffloaderWorkload),
        ];
        for w in &workloads {
            let (kernel, _) = run(w.as_ref(), 120);
            assert!(kernel.meter().total_energy().is_positive());
            assert!(kernel.graph().totals().conserved());
        }
    }

    #[test]
    fn probes_count_operations() {
        let (kernel, installed) = run(&PollersWorkload { coop: false }, 600);
        assert!(installed.probe.ops(&kernel) >= 8);
        assert_eq!(installed.probe.app_net_bytes(&kernel), 0);

        let (kernel, installed) = run(&NavigatorWorkload, 600);
        assert!(installed.probe.ops(&kernel) >= 5);

        let (kernel, installed) = run(&ScreenOnWorkload, 600);
        assert!(installed.probe.ops(&kernel) >= 20);

        let (kernel, installed) = run(&GalleryWorkload { adaptive: true }, 1_200);
        assert!(installed.probe.ops(&kernel) >= 8);
        assert!(installed.probe.app_net_bytes(&kernel) > 100_000);
    }

    #[test]
    fn env_scaling_is_exact() {
        let env = WorkloadEnv {
            rate_scale_ppm: 900_000,
            interval_scale_ppm: 1_100_000,
            ..WorkloadEnv::nominal()
        };
        assert_eq!(
            env.scale(Power::from_microwatts(100_000)),
            Power::from_microwatts(90_000)
        );
        assert_eq!(
            env.interval(SimDuration::from_secs(60)),
            SimDuration::from_micros(66_000_000)
        );
    }
}
