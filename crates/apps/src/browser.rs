//! The web browser, its plugin, and the ad-block extension.
//!
//! §5.2 / Fig 6: the browser is granted a rate of energy; it further
//! subdivides its own allotment so a plugin "cannot starve other plugins or
//! even the browser itself". Fig 6a uses a plain 70 mW tap; Fig 6b adds
//! 0.1× *backward proportional* taps so unused energy is reclaimed: the
//! plugin reserve equilibrates at 700 mJ (10 s of its 70 mW feed) and the
//! browser's at 7,000 mJ.
//!
//! The extension (ad blocker) runs as its own process with a subdivided
//! reserve; the browser messages it and simply renders the unaugmented page
//! when the extension is too starved to answer (§5.2's links2-based
//! browser).

use cinder_core::{RateSpec, ReserveId, TapId};
use cinder_kernel::{Ctx, Kernel, KernelError, Program, Step, ThreadId};
use cinder_label::{Label, Level};
use cinder_sim::{Power, SimDuration};

use crate::spinner::Spinner;

/// Topology parameters for the browser experiment.
#[derive(Debug, Clone, Copy)]
pub struct BrowserConfig {
    /// The browser's feed from the battery (Fig 6: ~694 mW ≈ 6 h on 15 kJ).
    pub browser_tap: Power,
    /// The plugin's feed from the browser's reserve (Fig 6: 70 mW = 10%).
    pub plugin_tap: Power,
    /// Backward proportional reclamation fraction (Fig 6b: `Some(0.1)`).
    pub backward_fraction: Option<f64>,
    /// Feed for the ad-block extension process.
    pub extension_tap: Power,
}

impl BrowserConfig {
    /// Fig 6a: plain forward taps only.
    pub fn fig6a() -> Self {
        BrowserConfig {
            browser_tap: Power::from_milliwatts(694),
            plugin_tap: Power::from_milliwatts(70),
            backward_fraction: None,
            extension_tap: Power::from_milliwatts(20),
        }
    }

    /// Fig 6b: with 0.1× backward proportional reclamation.
    pub fn fig6b() -> Self {
        BrowserConfig {
            backward_fraction: Some(0.1),
            ..BrowserConfig::fig6a()
        }
    }
}

/// Everything `build_browser` created.
#[derive(Debug, Clone)]
pub struct BrowserHandles {
    /// The browser's reserve.
    pub browser_reserve: ReserveId,
    /// The plugin's subdivided reserve.
    pub plugin_reserve: ReserveId,
    /// The extension's subdivided reserve.
    pub extension_reserve: ReserveId,
    /// Browser thread.
    pub browser: ThreadId,
    /// Plugin thread (a hog, to exercise isolation).
    pub plugin: ThreadId,
    /// Extension thread.
    pub extension: ThreadId,
    /// The browser's battery tap.
    pub browser_tap: TapId,
    /// The plugin's feed tap.
    pub plugin_tap: TapId,
    /// Backward taps, if the Fig 6b topology was requested.
    pub backward_taps: Vec<TapId>,
}

/// The browser program: periodic page loads (compute bursts) plus an
/// ad-block request to the extension per page. If the extension has no
/// energy, the page renders unaugmented — the browser never blocks on it.
pub struct Browser {
    extension: Option<ThreadId>,
    extension_reserve: Option<ReserveId>,
    page_interval: SimDuration,
    page_work: SimDuration,
    /// Pages rendered without ad blocking because the extension was starved.
    pub pages_unaugmented: u64,
    /// Total pages rendered.
    pub pages: u64,
    next_page_due: bool,
}

impl Browser {
    /// A browser loading a page every 2 s, each costing 500 ms of CPU.
    pub fn new(extension: Option<ThreadId>, extension_reserve: Option<ReserveId>) -> Self {
        Browser {
            extension,
            extension_reserve,
            page_interval: SimDuration::from_secs(2),
            page_work: SimDuration::from_millis(500),
            pages_unaugmented: 0,
            pages: 0,
            next_page_due: true,
        }
    }
}

impl Program for Browser {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        if self.next_page_due {
            self.next_page_due = false;
            self.pages += 1;
            // Ask the extension to filter the page, if it can afford to.
            if let (Some(ext), Some(ext_r)) = (self.extension, self.extension_reserve) {
                let responsive = ctx.level(ext_r).map(|l| l.is_positive()).unwrap_or(false);
                if responsive {
                    let _ = ctx.msg_send(ext, SimDuration::from_millis(50));
                } else {
                    self.pages_unaugmented += 1;
                }
            }
            return Step::compute(self.page_work);
        }
        self.next_page_due = true;
        Step::SleepUntil(ctx.now() + self.page_interval)
    }
}

/// The extension: processes ad-block requests when messaged; otherwise
/// blocks. Its CPU work is billed to its own subdivided reserve.
pub struct Extension;

impl Program for Extension {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        match ctx.msg_take() {
            Some(work) => Step::compute(work),
            None => Step::Block,
        }
    }
}

/// Builds the Fig 6 topology: battery → browser reserve → {plugin,
/// extension} reserves, with optional backward-proportional reclamation,
/// and spawns the three processes. The plugin is a flat-out hog to
/// demonstrate isolation.
pub fn build_browser(
    kernel: &mut Kernel,
    config: BrowserConfig,
) -> Result<BrowserHandles, KernelError> {
    let k = cinder_core::Actor::kernel();
    let battery = kernel.battery();
    // The browser protects its reserves with an integrity category it owns.
    let cat = kernel.alloc_category();
    let tap_label = Label::with(&[(cat, Level::L0)]);

    let g = kernel.graph_mut();
    let browser_reserve = g.create_reserve(&k, "browser", Label::default_label())?;
    let plugin_reserve = g.create_reserve(&k, "plugin", Label::default_label())?;
    let extension_reserve = g.create_reserve(&k, "extension", Label::default_label())?;
    let browser_tap = g.create_tap(
        &k,
        "battery→browser",
        battery,
        browser_reserve,
        RateSpec::constant(config.browser_tap),
        tap_label.clone(),
    )?;
    let plugin_tap = g.create_tap(
        &k,
        "browser→plugin",
        browser_reserve,
        plugin_reserve,
        RateSpec::constant(config.plugin_tap),
        tap_label.clone(),
    )?;
    g.create_tap(
        &k,
        "browser→extension",
        browser_reserve,
        extension_reserve,
        RateSpec::constant(config.extension_tap),
        tap_label.clone(),
    )?;
    let mut backward_taps = Vec::new();
    if let Some(fraction) = config.backward_fraction {
        for (name, reserve) in [
            ("browser⤺battery", browser_reserve),
            ("plugin⤺battery", plugin_reserve),
        ] {
            backward_taps.push(g.create_tap(
                &k,
                name,
                reserve,
                battery,
                RateSpec::proportional(fraction),
                tap_label.clone(),
            )?);
        }
    }

    let extension = kernel.spawn_unprivileged("extension", Box::new(Extension), extension_reserve);
    let browser = kernel.spawn_unprivileged(
        "browser",
        Box::new(Browser::new(Some(extension), Some(extension_reserve))),
        browser_reserve,
    );
    // A misbehaving plugin: spins as hard as its reserve allows.
    let plugin = kernel.spawn_unprivileged("plugin", Box::new(Spinner::new()), plugin_reserve);
    Ok(BrowserHandles {
        browser_reserve,
        plugin_reserve,
        extension_reserve,
        browser,
        plugin,
        extension,
        browser_tap,
        plugin_tap,
        backward_taps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_core::GraphConfig;
    use cinder_kernel::KernelConfig;
    use cinder_sim::{Energy, SimTime};

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig {
            graph: GraphConfig {
                decay: None,
                ..GraphConfig::default()
            },
            ..KernelConfig::default()
        })
    }

    #[test]
    fn plugin_hog_is_capped_at_its_tap() {
        let mut k = kernel();
        let h = build_browser(&mut k, BrowserConfig::fig6a()).unwrap();
        k.run_until(SimTime::from_secs(120));
        // The plugin spins flat out but averages ≈ its 70 mW feed.
        let est = k.thread_power_estimate(h.plugin).as_milliwatts_f64();
        assert!(est < 90.0, "plugin estimate {est} mW");
        let consumed = k.thread_consumed(h.plugin).as_joules_f64();
        // 120 s × 70 mW = 8.4 J upper bound (+ slack for startup).
        assert!(consumed <= 8.6, "plugin consumed {consumed} J");
    }

    #[test]
    fn browser_keeps_rendering_despite_plugin_hog() {
        let mut k = kernel();
        let h = build_browser(&mut k, BrowserConfig::fig6a()).unwrap();
        k.run_until(SimTime::from_secs(60));
        // Browser pages keep coming: ~1 per 2.5 s (page work + interval).
        let consumed = k.thread_consumed(h.browser);
        assert!(
            consumed > Energy::from_millijoules(500),
            "browser made progress: {consumed}"
        );
    }

    #[test]
    fn fig6b_plugin_reserve_equilibrates_at_700mj() {
        let mut k = kernel();
        let h = build_browser(&mut k, BrowserConfig::fig6b()).unwrap();
        // Kill the plugin so its reserve just fills: the backward tap must
        // cap it at ~700 mJ (70 mW ÷ 0.1/s).
        k.kill(h.plugin);
        k.run_until(SimTime::from_secs(300));
        let level = k
            .graph()
            .reserve(h.plugin_reserve)
            .unwrap()
            .balance()
            .as_joules_f64();
        assert!((level - 0.7).abs() < 0.05, "plugin reserve at {level} J");
    }

    #[test]
    fn fig6a_plugin_reserve_hoards_without_backward_tap() {
        let mut k = kernel();
        let h = build_browser(&mut k, BrowserConfig::fig6a()).unwrap();
        k.kill(h.plugin);
        k.run_until(SimTime::from_secs(300));
        let level = k
            .graph()
            .reserve(h.plugin_reserve)
            .unwrap()
            .balance()
            .as_joules_f64();
        // Without reclamation (and decay disabled) the idle reserve grows
        // right past the Fig 6b equilibrium — the §5.2.1 problem.
        assert!(level > 10.0, "plugin reserve at {level} J");
    }

    #[test]
    fn starved_extension_degrades_gracefully() {
        let mut k = kernel();
        let mut cfg = BrowserConfig::fig6a();
        cfg.extension_tap = Power::ZERO; // starve the extension entirely
        let h = build_browser(&mut k, cfg).unwrap();
        k.run_until(SimTime::from_secs(30));
        // The browser never blocked: pages rendered, all unaugmented.
        let browser_consumed = k.thread_consumed(h.browser);
        assert!(browser_consumed > Energy::from_millijoules(500));
        assert_eq!(
            k.graph()
                .reserve(h.extension_reserve)
                .unwrap()
                .stats()
                .consumed,
            Energy::ZERO
        );
    }
}
