//! Screen-on browsing: the backlight held by a reserve.
//!
//! The paper measures the Dream's 555 mW backlight as the platform's
//! single biggest managed draw (§4.2). `ScreenOn` models interactive
//! browsing sessions on the kernel's reserve-gated peripheral layer: the
//! backlight is funded by a dedicated reserve, a session alternates short
//! page-render bursts with reading pauses under the lit screen, and the
//! program *dims* to a configured drive level when the reserve sags (the
//! screen-dimming energy pattern). If the reserve empties outright the
//! kernel forces the screen dark and the session ends early.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use cinder_core::ReserveId;
use cinder_hw::FULL_DRIVE_PPM;
use cinder_kernel::{Ctx, PeripheralKind, Program, Step};
use cinder_sim::{Energy, SimDuration, SimTime};

use crate::workload::DriveCap;

/// Screen-on browsing tuning.
#[derive(Debug, Clone, Copy)]
pub struct ScreenOnConfig {
    /// Screen-on session length.
    pub session: SimDuration,
    /// Dark gap between sessions.
    pub gap: SimDuration,
    /// CPU burst to render a page.
    pub page_work: SimDuration,
    /// Reading pause per page, screen lit.
    pub page_read: SimDuration,
    /// Reserve level below which the session dims to `dim_ppm`.
    pub dim_mark: Energy,
    /// The dimmed drive level (ppm of full brightness).
    pub dim_ppm: u64,
    /// Back-off when the screen cannot be lit at all.
    pub retry_backoff: SimDuration,
}

impl ScreenOnConfig {
    /// The fleet study's shape: 2-minute sessions every 5 minutes, 8 s a
    /// page, dimming to 40% below 30 J.
    pub fn fleet_default() -> Self {
        ScreenOnConfig {
            session: SimDuration::from_secs(120),
            gap: SimDuration::from_secs(180),
            page_work: SimDuration::from_millis(50),
            page_read: SimDuration::from_secs(8),
            dim_mark: Energy::from_joules(30),
            dim_ppm: 400_000,
            retry_backoff: SimDuration::from_secs(30),
        }
    }
}

/// Shared browsing telemetry.
#[derive(Debug, Default)]
pub struct BrowseLog {
    /// Pages rendered under a lit screen.
    pub pages: u64,
    /// Sessions completed to their full length.
    pub sessions: u64,
    /// Sessions the program dimmed mid-way.
    pub dimmed_sessions: u64,
    /// Sessions the kernel cut short by forcing the screen dark.
    pub dark_sessions: u64,
}

impl BrowseLog {
    /// A fresh shared log.
    pub fn shared() -> Rc<RefCell<BrowseLog>> {
        Rc::new(RefCell::new(BrowseLog::default()))
    }
}

enum State {
    /// Screen dark; next wake starts a session.
    Idle { acquired: bool },
    /// A page burst is rendering; `end` is the session deadline.
    Working { end: SimTime },
    /// Reading a rendered page under the lit screen.
    Reading { end: SimTime },
}

/// The screen-on browsing program.
pub struct ScreenOn {
    config: ScreenOnConfig,
    reserve: ReserveId,
    state: State,
    dimmed: bool,
    log: Rc<RefCell<BrowseLog>>,
    /// Policy-written drive ceiling; sessions never brighten past it.
    drive_cap: DriveCap,
}

impl ScreenOn {
    /// A browser lighting its screen from `reserve`.
    pub fn new(config: ScreenOnConfig, reserve: ReserveId, log: Rc<RefCell<BrowseLog>>) -> Self {
        ScreenOn {
            config,
            reserve,
            state: State::Idle { acquired: false },
            dimmed: false,
            log,
            drive_cap: Rc::new(Cell::new(FULL_DRIVE_PPM)),
        }
    }

    /// The shared drive-cap cell a policy driver writes (starts uncapped).
    pub fn drive_cap_handle(&self) -> DriveCap {
        self.drive_cap.clone()
    }

    /// Ends the current session and sleeps the dark gap.
    fn end_session(&mut self, ctx: &mut Ctx<'_>, completed: bool) -> Step {
        if ctx.peripheral_enabled(PeripheralKind::Backlight) {
            ctx.peripheral_disable(PeripheralKind::Backlight)
                .expect("the browser controls its own screen");
        }
        let mut log = self.log.borrow_mut();
        if completed {
            log.sessions += 1;
        } else {
            log.dark_sessions += 1;
        }
        self.state = State::Idle { acquired: true };
        Step::SleepUntil(ctx.now() + self.config.gap)
    }
}

impl Program for ScreenOn {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        match self.state {
            State::Idle { acquired } => {
                if !acquired
                    && ctx
                        .peripheral_acquire(PeripheralKind::Backlight, self.reserve)
                        .is_err()
                {
                    return Step::Exit;
                }
                // Sessions start as bright as the policy cap allows; dim is
                // re-derived from the level as the session runs.
                self.dimmed = false;
                let _ = ctx.peripheral_set_drive(
                    PeripheralKind::Backlight,
                    FULL_DRIVE_PPM.min(self.drive_cap.get()),
                );
                match ctx.peripheral_enable(PeripheralKind::Backlight) {
                    Ok(()) => {
                        self.state = State::Working {
                            end: ctx.now() + self.config.session,
                        };
                        Step::compute(self.config.page_work)
                    }
                    Err(_) => {
                        self.state = State::Idle { acquired: true };
                        Step::SleepUntil(ctx.now() + self.config.retry_backoff)
                    }
                }
            }
            State::Working { end } => {
                // The page burst just finished rendering.
                if !ctx.peripheral_enabled(PeripheralKind::Backlight) {
                    return self.end_session(ctx, false);
                }
                self.log.borrow_mut().pages += 1;
                if !self.dimmed {
                    let level = ctx.level(self.reserve).unwrap_or(Energy::ZERO);
                    if level < self.config.dim_mark {
                        self.dimmed = true;
                        self.log.borrow_mut().dimmed_sessions += 1;
                        let _ = ctx.peripheral_set_drive(
                            PeripheralKind::Backlight,
                            self.config.dim_ppm.min(self.drive_cap.get()),
                        );
                    }
                }
                self.state = State::Reading { end };
                Step::SleepUntil(ctx.now() + self.config.page_read)
            }
            State::Reading { end } => {
                if !ctx.peripheral_enabled(PeripheralKind::Backlight) {
                    return self.end_session(ctx, false);
                }
                if ctx.now() >= end {
                    return self.end_session(ctx, true);
                }
                self.state = State::Working { end };
                Step::compute(self.config.page_work)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_core::{Actor, RateSpec};
    use cinder_kernel::{Kernel, KernelConfig};
    use cinder_label::Label;
    use cinder_sim::Power;

    fn rig(feed_uw: u64, seed_uj: i64) -> (Kernel, ReserveId, Rc<RefCell<BrowseLog>>) {
        let mut k = Kernel::new(KernelConfig {
            seed: 4,
            idle_skip: true,
            ..KernelConfig::default()
        });
        let root = Actor::kernel();
        let battery = k.battery();
        let r = k
            .graph_mut()
            .create_reserve(&root, "screen", Label::default_label())
            .unwrap();
        k.graph_mut()
            .transfer(&root, battery, r, Energy::from_microjoules(seed_uj))
            .unwrap();
        k.graph_mut()
            .create_tap(
                &root,
                "screen-feed",
                battery,
                r,
                RateSpec::constant(Power::from_microwatts(feed_uw)),
                Label::default_label(),
            )
            .unwrap();
        let log = BrowseLog::shared();
        let app = ScreenOn::new(ScreenOnConfig::fleet_default(), r, log.clone());
        k.spawn_unprivileged("browse", Box::new(app), r);
        (k, r, log)
    }

    #[test]
    fn funded_screen_browses_full_sessions() {
        let (mut k, _, log) = rig(400_000, 80_000_000);
        k.run_until(SimTime::from_secs(900));
        let log = log.borrow();
        // Three 5-minute cycles: three full sessions, ~15 pages each.
        assert_eq!(log.sessions, 3, "{log:?}");
        assert!(log.pages >= 40, "{log:?}");
        assert_eq!(log.dark_sessions, 0);
        assert!(k.peripheral_energy(PeripheralKind::Backlight) >= Energy::from_joules(150));
    }

    #[test]
    fn sagging_reserve_dims_before_it_dies() {
        // A deficit feed: the level sags under the dim mark, the program
        // dims, and the dimmed draw then fits inside the feed.
        let (mut k, r, log) = rig(190_000, 40_000_000);
        k.run_until(SimTime::from_secs(1_800));
        let log = log.borrow();
        assert!(log.dimmed_sessions >= 1, "{log:?}");
        assert!(
            log.sessions >= 3,
            "dimming should save the sessions: {log:?}"
        );
        let _ = r;
    }

    #[test]
    fn empty_reserve_forces_the_screen_dark() {
        let (mut k, _, log) = rig(60_000, 25_000_000);
        k.run_until(SimTime::from_secs(1_800));
        let log = log.borrow();
        assert!(log.dark_sessions >= 1, "{log:?}");
        assert!(k.peripheral_forced_shutdowns(PeripheralKind::Backlight) >= 1);
    }
}
