//! The applications of the Cinder paper's §5, as simulated programs.
//!
//! Each module reproduces one of the paper's application studies:
//!
//! * [`mod@energywrap`] — §5.1's sandboxing utility: wrap *any* program with a
//!   reserve fed by a rate-limited tap (Fig 5).
//! * [`spinner`] — the CPU hogs of the isolation experiment (Fig 9),
//!   including the forking process B that subdivides its power to children.
//! * [`browser`] — §5.2's web browser with an isolated, rate-limited plugin
//!   and an ad-block extension process (Fig 6a/6b).
//! * [`image_viewer`] — §5.3's energy-aware network picture gallery, with
//!   and without adaptive quality scaling (Figs 10/11).
//! * [`task_manager`] — §5.4's foreground/background power policy (Fig 7,
//!   Fig 12).
//! * [`pollers`] — §6.4's periodic mail checker and RSS downloader
//!   (Figs 13/14, Table 1).
//!
//! Beyond the paper's studies, two workloads drive the kernel's
//! reserve-gated peripheral layer, and a trait makes all of them pluggable:
//!
//! * [`navigator`] — duty-cycled GPS fixes whose interval stretches as the
//!   receiver's reserve drops.
//! * [`offloader`] — the cloud-offload client: periodic work items priced
//!   local-vs-remote by the break-even policy against a shared backend
//!   trace, shipped through the kernel's `offload` syscall.
//! * [`screen_on`] — backlit browsing sessions that dim when the screen's
//!   reserve sags and go dark when the kernel forces the backlight down.
//! * [`workload`] — the [`WorkloadProgram`] seam drivers (the fleet, the
//!   examples) use to install any of the above without a hard-coded match.

pub mod browser;
pub mod energywrap;
pub mod image_viewer;
pub mod navigator;
pub mod offloader;
pub mod pollers;
pub mod screen_on;
pub mod spinner;
pub mod task_manager;
pub mod workload;

pub use browser::{build_browser, BrowserConfig, BrowserHandles};
pub use energywrap::energywrap;
pub use image_viewer::{ImageViewer, ViewerConfig, ViewerLog};
pub use navigator::{NavLog, Navigator, NavigatorConfig};
pub use offloader::{OffloadLog, Offloader, OffloaderConfig, TraceBackend};
pub use pollers::{
    build_pollers, build_pollers_with_retry, PeriodicPoller, PollerHandles, PollerLog,
};
pub use screen_on::{BrowseLog, ScreenOn, ScreenOnConfig};
pub use spinner::{ForkPlan, ForkingSpinner, Spinner};
pub use task_manager::{build_fg_bg, FgBgConfig, FgBgHandles, TaskManager};
pub use workload::{
    BrowserWorkload, DriveCap, GalleryWorkload, InstalledWorkload, NavigatorWorkload, OffloadSetup,
    OffloaderWorkload, PolicyTapHandle, PollersWorkload, RespawnHandle, ScreenOnWorkload,
    SpinnerWorkload, WorkloadEnv, WorkloadProbe, WorkloadProgram,
};
