//! The applications of the Cinder paper's §5, as simulated programs.
//!
//! Each module reproduces one of the paper's application studies:
//!
//! * [`mod@energywrap`] — §5.1's sandboxing utility: wrap *any* program with a
//!   reserve fed by a rate-limited tap (Fig 5).
//! * [`spinner`] — the CPU hogs of the isolation experiment (Fig 9),
//!   including the forking process B that subdivides its power to children.
//! * [`browser`] — §5.2's web browser with an isolated, rate-limited plugin
//!   and an ad-block extension process (Fig 6a/6b).
//! * [`image_viewer`] — §5.3's energy-aware network picture gallery, with
//!   and without adaptive quality scaling (Figs 10/11).
//! * [`task_manager`] — §5.4's foreground/background power policy (Fig 7,
//!   Fig 12).
//! * [`pollers`] — §6.4's periodic mail checker and RSS downloader
//!   (Figs 13/14, Table 1).

pub mod browser;
pub mod energywrap;
pub mod image_viewer;
pub mod pollers;
pub mod spinner;
pub mod task_manager;

pub use browser::{build_browser, BrowserConfig, BrowserHandles};
pub use energywrap::energywrap;
pub use image_viewer::{ImageViewer, ViewerConfig, ViewerLog};
pub use pollers::{build_pollers, PeriodicPoller, PollerHandles, PollerLog};
pub use spinner::{ForkPlan, ForkingSpinner, Spinner};
pub use task_manager::{build_fg_bg, FgBgConfig, FgBgHandles, TaskManager};
