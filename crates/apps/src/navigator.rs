//! The navigator: duty-cycled GPS fixes under a reserve.
//!
//! The paper names the GPS among the "most energy hungry, dynamic, and
//! informative components" (§4.1) but never evaluates a workload for it.
//! `Navigator` is that workload, built on the kernel's reserve-gated
//! peripheral layer: the receiver is funded by a dedicated reserve (fed by
//! a tap from the battery), each fix holds it lit for a fixed window, and
//! the *interval between fixes stretches as the reserve drops* — the
//! sensor duty-cycling pattern energy-pattern catalogues describe, driven
//! by exactly the reserve-level polling the paper's gallery uses (§5.3).
//! If the reserve empties mid-fix the kernel forces the receiver down and
//! the fix is lost.

use std::cell::RefCell;
use std::rc::Rc;

use cinder_core::ReserveId;
use cinder_kernel::{Ctx, PeripheralKind, Program, Step};
use cinder_sim::{Energy, SimDuration, SimTime};

/// Navigator tuning.
#[derive(Debug, Clone, Copy)]
pub struct NavigatorConfig {
    /// How long the receiver stays lit per fix.
    pub fix_duration: SimDuration,
    /// Sleep between fixes with a healthy reserve.
    pub base_interval: SimDuration,
    /// Reserve level below which the interval doubles.
    pub low_mark: Energy,
    /// Reserve level below which the interval quadruples.
    pub critical_mark: Energy,
    /// Back-off when the receiver cannot even be lit.
    pub retry_backoff: SimDuration,
}

impl NavigatorConfig {
    /// The fleet study's shape: 10 s fixes, nominally every 60 s, adapting
    /// below 10 J / 4 J.
    pub fn fleet_default() -> Self {
        NavigatorConfig {
            fix_duration: SimDuration::from_secs(10),
            base_interval: SimDuration::from_secs(60),
            low_mark: Energy::from_joules(10),
            critical_mark: Energy::from_joules(4),
            retry_backoff: SimDuration::from_secs(30),
        }
    }
}

/// Shared navigator telemetry.
#[derive(Debug, Default)]
pub struct NavLog {
    /// Completion times of successful fixes.
    pub fixes: Vec<SimTime>,
    /// Fixes lost to a kernel forced shutdown mid-fix.
    pub aborted_fixes: u64,
    /// Sleeps that were stretched beyond the base interval (adaptation
    /// engaging).
    pub stretched_sleeps: u64,
}

impl NavLog {
    /// A fresh shared log.
    pub fn shared() -> Rc<RefCell<NavLog>> {
        Rc::new(RefCell::new(NavLog::default()))
    }
}

enum State {
    /// Not yet acquired the receiver.
    Boot,
    /// Receiver lit; sleeping through the fix window.
    Fixing,
    /// Receiver dark; sleeping until the next fix.
    Idle,
}

/// The navigator program.
pub struct Navigator {
    config: NavigatorConfig,
    reserve: ReserveId,
    state: State,
    log: Rc<RefCell<NavLog>>,
}

impl Navigator {
    /// A navigator funding its receiver from `reserve`.
    pub fn new(config: NavigatorConfig, reserve: ReserveId, log: Rc<RefCell<NavLog>>) -> Self {
        Navigator {
            config,
            reserve,
            state: State::Boot,
            log,
        }
    }

    /// The sleep the current reserve level earns: base, doubled below the
    /// low mark, quadrupled below the critical mark.
    fn interval_for(&self, level: Energy) -> SimDuration {
        if level < self.config.critical_mark {
            self.config.base_interval * 4
        } else if level < self.config.low_mark {
            self.config.base_interval * 2
        } else {
            self.config.base_interval
        }
    }

    /// Tries to light the receiver; returns the step either way.
    fn start_fix(&mut self, ctx: &mut Ctx<'_>) -> Step {
        match ctx.peripheral_enable(PeripheralKind::Gps) {
            Ok(()) => {
                self.state = State::Fixing;
                Step::SleepUntil(ctx.now() + self.config.fix_duration)
            }
            Err(_) => {
                self.state = State::Idle;
                Step::SleepUntil(ctx.now() + self.config.retry_backoff)
            }
        }
    }
}

impl Program for Navigator {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        match self.state {
            State::Boot => {
                if ctx
                    .peripheral_acquire(PeripheralKind::Gps, self.reserve)
                    .is_err()
                {
                    return Step::Exit;
                }
                self.start_fix(ctx)
            }
            State::Fixing => {
                // Woken at the end of the fix window — unless the kernel
                // forced the receiver down when the reserve drained.
                if ctx.peripheral_enabled(PeripheralKind::Gps) {
                    ctx.peripheral_disable(PeripheralKind::Gps)
                        .expect("the navigator controls its own receiver");
                    self.log.borrow_mut().fixes.push(ctx.now());
                } else {
                    self.log.borrow_mut().aborted_fixes += 1;
                }
                let level = ctx.level(self.reserve).unwrap_or(Energy::ZERO);
                let sleep = self.interval_for(level);
                if sleep > self.config.base_interval {
                    self.log.borrow_mut().stretched_sleeps += 1;
                }
                self.state = State::Idle;
                Step::SleepUntil(ctx.now() + sleep)
            }
            State::Idle => self.start_fix(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_core::{Actor, RateSpec};
    use cinder_kernel::{Kernel, KernelConfig};
    use cinder_label::Label;
    use cinder_sim::Power;

    fn rig(feed_uw: u64, seed_uj: i64) -> (Kernel, ReserveId, Rc<RefCell<NavLog>>) {
        let mut k = Kernel::new(KernelConfig {
            seed: 3,
            idle_skip: true,
            ..KernelConfig::default()
        });
        let root = Actor::kernel();
        let battery = k.battery();
        let r = k
            .graph_mut()
            .create_reserve(&root, "gps", Label::default_label())
            .unwrap();
        k.graph_mut()
            .transfer(&root, battery, r, Energy::from_microjoules(seed_uj))
            .unwrap();
        k.graph_mut()
            .create_tap(
                &root,
                "gps-feed",
                battery,
                r,
                RateSpec::constant(Power::from_microwatts(feed_uw)),
                Label::default_label(),
            )
            .unwrap();
        let log = NavLog::shared();
        let nav = Navigator::new(NavigatorConfig::fleet_default(), r, log.clone());
        k.spawn_unprivileged("nav", Box::new(nav), r);
        (k, r, log)
    }

    #[test]
    fn healthy_reserve_fixes_on_the_base_cadence() {
        let (mut k, _, log) = rig(60_000, 30_000_000);
        k.run_until(SimTime::from_secs(600));
        let log = log.borrow();
        // ~70 s start-to-start: 8 fixes in 10 minutes.
        assert!((7..=9).contains(&log.fixes.len()), "fixes: {:?}", log.fixes);
        assert_eq!(log.aborted_fixes, 0);
        assert_eq!(log.stretched_sleeps, 0);
        assert!(k.peripheral_energy(PeripheralKind::Gps) >= Energy::from_joules(24));
    }

    #[test]
    fn starving_reserve_stretches_the_interval() {
        // 20 mW feed cannot sustain a 50 mW duty cycle: the reserve sags
        // and the navigator adapts.
        let (mut k, _, log) = rig(20_000, 12_000_000);
        k.run_until(SimTime::from_secs(1_800));
        let log = log.borrow();
        assert!(log.stretched_sleeps >= 3, "no adaptation: {log:?}");
        assert!(!log.fixes.is_empty());
    }

    #[test]
    fn empty_reserve_aborts_fixes_via_forced_shutdown() {
        // A trickle feed lights the receiver but cannot hold it for a full
        // fix: the kernel cuts it mid-window.
        let (mut k, _, log) = rig(5_000, 2_000_000);
        k.run_until(SimTime::from_secs(1_800));
        let log = log.borrow();
        assert!(
            log.aborted_fixes >= 1,
            "forced shutdown must abort a fix: {log:?}"
        );
        assert!(k.peripheral_forced_shutdowns(PeripheralKind::Gps) >= 1);
    }
}
