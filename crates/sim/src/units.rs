//! Typed energy and power quantities.
//!
//! Cinder's evaluation hinges on exact accounting: Fig 9 checks that
//! per-process estimates sum to the measured total, and the reserve/tap graph
//! must conserve energy (what leaves a source reserve arrives at the sink, or
//! is recorded as consumed). To make those invariants *exactly* testable, all
//! quantities are integers:
//!
//! * [`Energy`] is signed microjoules (`i64`). Signed because the paper lets
//!   threads "debit their own reserves up to or into debt" for
//!   after-the-fact billing of received packets (§5.5.2).
//! * [`Power`] is unsigned microwatts (`u64`); rates are never negative
//!   (direction is expressed by a tap's source/sink orientation).
//!
//! Multiplying power by time uses 128-bit intermediates, so no realistic
//! scenario overflows: the 15 kJ battery of Fig 1 is 1.5e10 µJ, ~9 orders of
//! magnitude below `i64::MAX`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use crate::time::SimDuration;

/// A quantity of energy in integer microjoules (may be negative: debt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Energy(i64);

/// A power (energy rate) in integer microwatts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Power(u64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0);

    /// Creates an energy from microjoules.
    pub const fn from_microjoules(uj: i64) -> Self {
        Energy(uj)
    }

    /// Creates an energy from millijoules.
    pub const fn from_millijoules(mj: i64) -> Self {
        Energy(mj * 1_000)
    }

    /// Creates an energy from whole joules.
    pub const fn from_joules(j: i64) -> Self {
        Energy(j * 1_000_000)
    }

    /// Creates an energy from fractional joules, rounding to the nearest
    /// microjoule.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not finite or does not fit in an `i64` microjoule
    /// count.
    pub fn from_joules_f64(j: f64) -> Self {
        assert!(j.is_finite(), "invalid energy: {j}");
        let uj = (j * 1e6).round();
        assert!(
            uj >= i64::MIN as f64 && uj <= i64::MAX as f64,
            "energy out of range: {j} J"
        );
        Energy(uj as i64)
    }

    /// Microjoules.
    pub const fn as_microjoules(self) -> i64 {
        self.0
    }

    /// Joules, as a float (for display and plotting).
    pub fn as_joules_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// True if negative (a reserve in debt).
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// True if exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two energies.
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }

    /// The larger of two energies.
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }

    /// Clamps to the non-negative range.
    pub fn clamp_non_negative(self) -> Energy {
        Energy(self.0.max(0))
    }

    /// Saturating subtraction (never panics).
    pub fn saturating_sub(self, other: Energy) -> Energy {
        Energy(self.0.saturating_sub(other.0))
    }

    /// Scales by a parts-per-million factor using 128-bit intermediates,
    /// truncating toward zero.
    ///
    /// Used by proportional taps and the anti-hoarding decay, where exactness
    /// of the *pair* (amount removed, amount delivered) matters more than the
    /// rounding direction.
    pub fn scale_ppm(self, ppm: u64) -> Energy {
        let scaled = (self.0 as i128) * (ppm as i128) / 1_000_000;
        Energy(scaled as i64)
    }

    /// The average power that would consume this energy over `d`.
    ///
    /// Returns [`Power::ZERO`] for non-positive energies or a zero duration.
    pub fn average_power_over(self, d: SimDuration) -> Power {
        if self.0 <= 0 || d.is_zero() {
            return Power::ZERO;
        }
        let uw = (self.0 as i128) * 1_000_000 / (d.as_micros() as i128);
        Power(uw as u64)
    }
}

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0);

    /// Creates a power from microwatts.
    pub const fn from_microwatts(uw: u64) -> Self {
        Power(uw)
    }

    /// Creates a power from milliwatts.
    pub const fn from_milliwatts(mw: u64) -> Self {
        Power(mw * 1_000)
    }

    /// Creates a power from whole watts.
    pub const fn from_watts(w: u64) -> Self {
        Power(w * 1_000_000)
    }

    /// Microwatts.
    pub const fn as_microwatts(self) -> u64 {
        self.0
    }

    /// Watts, as a float (for display and plotting).
    pub fn as_watts_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Milliwatts, as a float (the figures' y-axes use mW).
    pub fn as_milliwatts_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The exact energy delivered at this power over `d`, truncated to a
    /// whole microjoule.
    ///
    /// Callers that need drift-free accumulation across many small intervals
    /// (e.g. tap flow ticks) should use [`Power::energy_over_with_remainder`].
    pub fn energy_over(self, d: SimDuration) -> Energy {
        let uj = (self.0 as u128) * (d.as_micros() as u128) / 1_000_000;
        Energy(uj as i64)
    }

    /// Drift-free integration: computes the energy delivered over `d`,
    /// carrying sub-microjoule residue in `remainder_uj_us` (µJ·µs units).
    ///
    /// Across any sequence of calls the total delivered energy differs from
    /// the true product by less than one microjoule.
    pub fn energy_over_with_remainder(self, d: SimDuration, remainder_uj_us: &mut u64) -> Energy {
        let total = (self.0 as u128) * (d.as_micros() as u128) + (*remainder_uj_us as u128);
        let whole = total / 1_000_000;
        *remainder_uj_us = (total % 1_000_000) as u64;
        Energy(whole as i64)
    }

    /// Scales by a parts-per-million factor, truncating.
    pub fn scale_ppm(self, ppm: u64) -> Power {
        Power(((self.0 as u128) * (ppm as u128) / 1_000_000) as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Power) -> Power {
        Power(self.0.saturating_sub(other.0))
    }

    /// The smaller of two powers.
    pub fn min(self, other: Power) -> Power {
        Power(self.0.min(other.0))
    }

    /// The larger of two powers.
    pub fn max(self, other: Power) -> Power {
        Power(self.0.max(other.0))
    }
}

impl Add for Energy {
    type Output = Energy;

    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;

    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl SubAssign for Energy {
    fn sub_assign(&mut self, rhs: Energy) {
        self.0 -= rhs.0;
    }
}

impl Neg for Energy {
    type Output = Energy;

    fn neg(self) -> Energy {
        Energy(-self.0)
    }
}

impl Mul<i64> for Energy {
    type Output = Energy;

    fn mul(self, rhs: i64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, |a, b| a + b)
    }
}

impl Add for Power {
    type Output = Power;

    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;

    fn sub(self, rhs: Power) -> Power {
        assert!(rhs.0 <= self.0, "power underflow: {self} - {rhs}");
        Power(self.0 - rhs.0)
    }
}

impl SubAssign for Power {
    fn sub_assign(&mut self, rhs: Power) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Power {
    type Output = Power;

    fn mul(self, rhs: u64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}J", self.as_joules_f64())
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}mW", self.as_milliwatts_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors() {
        assert_eq!(Energy::from_joules(2).as_microjoules(), 2_000_000);
        assert_eq!(Energy::from_millijoules(2).as_microjoules(), 2_000);
        assert_eq!(Energy::from_joules_f64(9.5).as_microjoules(), 9_500_000);
        assert_eq!(Power::from_watts(1).as_microwatts(), 1_000_000);
        assert_eq!(Power::from_milliwatts(137).as_microwatts(), 137_000);
    }

    #[test]
    fn paper_quantum_charge() {
        // 137 mW CPU for a 10 ms quantum = 1.37 mJ, the per-quantum charge
        // the Cinder scheduler applies.
        let e = Power::from_milliwatts(137).energy_over(SimDuration::from_millis(10));
        assert_eq!(e, Energy::from_microjoules(1_370));
    }

    #[test]
    fn energy_signed_arithmetic() {
        let a = Energy::from_microjoules(10);
        let b = Energy::from_microjoules(25);
        assert_eq!((a - b).as_microjoules(), -15);
        assert!((a - b).is_negative());
        assert_eq!((a - b).clamp_non_negative(), Energy::ZERO);
        assert_eq!(-a, Energy::from_microjoules(-10));
    }

    #[test]
    fn average_power_roundtrip() {
        let e = Energy::from_joules(9); // 9 J over 20 s = 450 mW.
        let p = e.average_power_over(SimDuration::from_secs(20));
        assert_eq!(p, Power::from_milliwatts(450));
        assert_eq!(
            Energy::ZERO.average_power_over(SimDuration::from_secs(1)),
            Power::ZERO
        );
        assert_eq!(e.average_power_over(SimDuration::ZERO), Power::ZERO);
    }

    #[test]
    fn scale_ppm_truncates_toward_zero() {
        assert_eq!(
            Energy::from_microjoules(999)
                .scale_ppm(500_000)
                .as_microjoules(),
            499
        );
        assert_eq!(
            Energy::from_microjoules(-999)
                .scale_ppm(500_000)
                .as_microjoules(),
            -499
        );
        assert_eq!(
            Power::from_microwatts(1_000)
                .scale_ppm(100_000)
                .as_microwatts(),
            100
        );
    }

    #[test]
    fn remainder_integration_is_drift_free() {
        // 1 µW over 3 µs steps: naive integer math would deliver 0 forever.
        let p = Power::from_microwatts(1);
        let mut rem = 0u64;
        let mut total = Energy::ZERO;
        for _ in 0..1_000_000 {
            total += p.energy_over_with_remainder(SimDuration::from_micros(3), &mut rem);
        }
        // True value: 3 s at 1 µW = 3 µJ.
        assert_eq!(total, Energy::from_microjoules(3));
    }

    #[test]
    fn sums() {
        let e: Energy = [1, 2, 3].iter().map(|&j| Energy::from_joules(j)).sum();
        assert_eq!(e, Energy::from_joules(6));
        let p: Power = [1, 2].iter().map(|&w| Power::from_watts(w)).sum();
        assert_eq!(p, Power::from_watts(3));
    }

    proptest! {
        #[test]
        fn remainder_never_loses_more_than_one_uj(
            uw in 0u64..10_000_000,
            steps in proptest::collection::vec(1u64..100_000, 1..50),
        ) {
            let p = Power::from_microwatts(uw);
            let mut rem = 0u64;
            let mut total: i128 = 0;
            let mut elapsed: u128 = 0;
            for s in &steps {
                let d = SimDuration::from_micros(*s);
                total += p.energy_over_with_remainder(d, &mut rem).as_microjoules() as i128;
                elapsed += *s as u128;
            }
            let exact = (uw as u128) * elapsed / 1_000_000;
            prop_assert!((exact as i128 - total) <= 1);
            prop_assert!(total <= exact as i128);
        }

        #[test]
        fn energy_over_matches_f64(uw in 0u64..100_000_000, us in 0u64..100_000_000) {
            let p = Power::from_microwatts(uw);
            let d = SimDuration::from_micros(us);
            let exact = (uw as u128) * (us as u128) / 1_000_000;
            prop_assert_eq!(p.energy_over(d).as_microjoules() as u128, exact);
        }
    }
}
