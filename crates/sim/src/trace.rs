//! Named time series and CSV output.
//!
//! Every figure in the paper is a time series (power vs time, reserve level
//! vs time) or a small table. The benchmark harness collects its outputs as
//! [`Series`] values grouped in a [`TraceSet`], prints them in the shape the
//! paper reports, and writes CSV files so they can be re-plotted.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::time::SimTime;

/// A single named time series: `(time, value)` samples plus a unit string.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    unit: String,
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Creates an empty series. `unit` labels the y-axis (e.g. `"mW"`).
    pub fn new(name: impl Into<String>, unit: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            unit: unit.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The y-axis unit.
    pub fn unit(&self) -> &str {
        &self.unit
    }

    /// Appends a sample. Samples should be pushed in non-decreasing time
    /// order; this is asserted in debug builds.
    pub fn push(&mut self, t: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|(last, _)| *last <= t),
            "series {} sampled out of order",
            self.name
        );
        self.points.push((t, value));
    }

    /// The recorded samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The maximum value, if any samples exist.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).reduce(f64::max)
    }

    /// The minimum value, if any samples exist.
    pub fn min_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).reduce(f64::min)
    }

    /// The value at percentile `p` (in `[0, 100]`) of the *sampled values*,
    /// ignoring time weighting, or `None` if the series is empty.
    ///
    /// Uses linear interpolation between order statistics (the common
    /// "exclusive of neither endpoint" definition): `percentile(0)` is the
    /// minimum, `percentile(100)` the maximum, `percentile(50)` the median.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a finite value in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let values: Vec<f64> = self.points.iter().map(|&(_, v)| v).collect();
        percentile_of(&values, p)
    }

    /// A [`Summary`] of the sampled values, or `None` if the series is
    /// empty.
    pub fn summary(&self) -> Option<Summary> {
        let values: Vec<f64> = self.points.iter().map(|&(_, v)| v).collect();
        Summary::from_values(&values)
    }

    /// The time-weighted mean value over the sampled span (step
    /// interpolation), or `None` with fewer than two samples.
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].0.as_secs_f64() - w[0].0.as_secs_f64();
            area += w[0].1 * dt;
        }
        let span = self.points.last().unwrap().0.as_secs_f64() - self.points[0].0.as_secs_f64();
        (span > 0.0).then(|| area / span)
    }

    /// Renders the series as CSV with a `time_s,<name>_<unit>` header.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "time_s,{}_{}", self.name, self.unit);
        for (t, v) in &self.points {
            let _ = writeln!(out, "{:.6},{v}", t.as_secs_f64());
        }
        out
    }
}

/// The value at percentile `p` (in `[0, 100]`) of `values`, with linear
/// interpolation between order statistics; `None` on an empty slice.
///
/// This is the primitive behind [`Series::percentile`] and
/// [`Summary::from_values`]; fleet aggregation calls it directly on
/// per-device scalars.
///
/// # Boundary semantics
///
/// The rank is `p/100 × (n−1)`, so the small-`n` cases every aggregation
/// edge hits are fully defined:
///
/// * empty slice → `None` for any `p` (never a panic);
/// * one element `x` → `Some(x)` for **every** `p` — the single order
///   statistic is simultaneously min, median, and max;
/// * two elements `[a, b]` (sorted) → linear interpolation along the
///   segment: `percentile(p) = a + (b − a) × p/100`, so `p50` is the exact
///   midpoint `(a+b)/2` and `p90` sits at `a + 0.9(b−a)`.
///
/// # Panics
///
/// Panics if `p` is not a finite value in `[0, 100]`.
pub fn percentile_of(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(percentile_of_sorted(&sorted, p))
}

/// [`percentile_of`] over an already-sorted, non-empty slice — the single
/// home of the interpolation formula, shared by [`Series::percentile`] and
/// [`Summary::from_values`].
///
/// # Panics
///
/// Panics if `p` is not a finite value in `[0, 100]` or `sorted` is empty.
fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(
        p.is_finite() && (0.0..=100.0).contains(&p),
        "percentile out of range: {p}"
    );
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Distribution summary of a set of sampled values: the shape fleet reports
/// quote for battery lifetime and tail power (p50/p90/p99).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest value.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarises `values`; `None` on an empty slice.
    ///
    /// Inherits [`percentile_of`]'s boundary semantics: a singleton's
    /// summary has `min == p50 == p90 == p99 == max == mean`, and a pair's
    /// percentiles interpolate linearly between the two values.
    pub fn from_values(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Summary {
            min: sorted[0],
            p50: percentile_of_sorted(&sorted, 50.0),
            p90: percentile_of_sorted(&sorted, 90.0),
            p99: percentile_of_sorted(&sorted, 99.0),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        })
    }
}

/// Quotes `s` as a JSON string literal (`"` and `\` escaped, control
/// characters escaped numerically). The single escaping routine behind
/// every hand-rolled JSON emitter in the workspace — the benchmark
/// harness's summary files and the fleet aggregate report.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A collection of related series (one experiment's output), keyed by name.
#[derive(Debug, Default, Clone)]
pub struct TraceSet {
    series: BTreeMap<String, Series>,
}

impl TraceSet {
    /// Creates an empty trace set.
    pub fn new() -> Self {
        TraceSet::default()
    }

    /// Inserts (or replaces) a series.
    pub fn insert(&mut self, series: Series) {
        self.series.insert(series.name().to_string(), series);
    }

    /// Looks up a series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Iterates over the contained series in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Series> {
        self.series.values()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if no series are present.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Writes each series as `<dir>/<prefix>_<series-name>.csv`.
    ///
    /// Creates `dir` if needed. Series names are sanitised to
    /// `[A-Za-z0-9_-]` for the file name.
    pub fn write_csv_dir(&self, dir: &Path, prefix: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        for s in self.series.values() {
            let safe: String = s
                .name()
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            fs::write(dir.join(format!("{prefix}_{safe}.csv")), s.to_csv())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> Series {
        let mut s = Series::new("power", "mW");
        s.push(SimTime::from_secs(0), 100.0);
        s.push(SimTime::from_secs(1), 200.0);
        s.push(SimTime::from_secs(3), 50.0);
        s
    }

    #[test]
    fn push_and_stats() {
        let s = sample_series();
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_value(), Some(200.0));
        assert_eq!(s.min_value(), Some(50.0));
    }

    #[test]
    fn time_weighted_mean_uses_step_interpolation() {
        // 100 for 1 s then 200 for 2 s => (100 + 400) / 3.
        let s = sample_series();
        let m = s.time_weighted_mean().unwrap();
        assert!((m - 500.0 / 3.0).abs() < 1e-9, "mean = {m}");
    }

    #[test]
    fn mean_requires_two_samples() {
        let mut s = Series::new("x", "u");
        assert_eq!(s.time_weighted_mean(), None);
        s.push(SimTime::ZERO, 1.0);
        assert_eq!(s.time_weighted_mean(), None);
    }

    #[test]
    fn percentile_on_known_distribution() {
        // Values 0, 1, …, 100 → percentile(p) is exactly p.
        let mut s = Series::new("ramp", "u");
        for i in 0..=100u64 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(s.percentile(p), Some(p));
        }
        // Interpolation between order statistics: two samples 0 and 10.
        let mut two = Series::new("two", "u");
        two.push(SimTime::ZERO, 0.0);
        two.push(SimTime::from_secs(1), 10.0);
        assert_eq!(two.percentile(50.0), Some(5.0));
        assert_eq!(two.percentile(90.0), Some(9.0));
    }

    #[test]
    fn percentile_empty_and_singleton() {
        let empty = Series::new("e", "u");
        assert_eq!(empty.percentile(50.0), None);
        assert_eq!(empty.summary(), None);
        let mut one = Series::new("o", "u");
        one.push(SimTime::ZERO, 7.0);
        assert_eq!(one.percentile(0.0), Some(7.0));
        assert_eq!(one.percentile(100.0), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile_of(&[1.0], 101.0);
    }

    /// The documented boundary semantics at tiny inputs: `None` when
    /// empty, the lone element at every `p` for singletons, and exact
    /// linear interpolation `a + (b − a) × p/100` for pairs — in both
    /// `percentile_of` and the `Summary` built on it.
    #[test]
    fn percentile_boundary_semantics_are_pinned() {
        for p in [0.0, 37.5, 50.0, 99.0, 100.0] {
            assert_eq!(percentile_of(&[], p), None);
            assert_eq!(percentile_of(&[7.25], p), Some(7.25));
        }
        let pair = [2.0, 10.0];
        for p in [0.0, 25.0, 50.0, 90.0, 100.0] {
            // Mirrors the interpolation expression bit-for-bit: with two
            // elements, rank = p/100 and frac = rank.
            assert_eq!(percentile_of(&pair, p), Some(2.0 + 8.0 * (p / 100.0)));
        }
        assert_eq!(Summary::from_values(&[]), None);
        let one = Summary::from_values(&[7.25]).unwrap();
        assert_eq!(
            (one.min, one.p50, one.p90, one.p99, one.max, one.mean),
            (7.25, 7.25, 7.25, 7.25, 7.25, 7.25)
        );
        let two = Summary::from_values(&pair).unwrap();
        assert_eq!((two.min, two.p50, two.max, two.mean), (2.0, 6.0, 10.0, 6.0));
        assert_eq!(two.p90, 2.0 + 8.0 * (90.0 / 100.0));
        assert_eq!(two.p99, 2.0 + 8.0 * (99.0 / 100.0));
    }

    #[test]
    fn summary_matches_known_distribution() {
        let values: Vec<f64> = (0..=100).map(f64::from).collect();
        let s = Summary::from_values(&values).unwrap();
        assert_eq!(s.min, 0.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.0);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("quo\"te"), "\"quo\\\"te\"");
        assert_eq!(json_string("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\u000abreak\"");
    }

    #[test]
    fn summary_ignores_input_order() {
        let a = Summary::from_values(&[3.0, 1.0, 2.0]).unwrap();
        let b = Summary::from_values(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.p50, 2.0);
        assert_eq!(a.mean, 2.0);
    }

    #[test]
    fn csv_format() {
        let s = sample_series();
        let csv = s.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_s,power_mW"));
        assert_eq!(lines.next(), Some("0.000000,100"));
    }

    #[test]
    fn trace_set_roundtrip() {
        let mut ts = TraceSet::new();
        ts.insert(sample_series());
        assert_eq!(ts.len(), 1);
        assert!(ts.get("power").is_some());
        assert!(ts.get("missing").is_none());
    }

    #[test]
    fn write_csv_dir_creates_files() {
        let dir = std::env::temp_dir().join(format!("cinder_trace_test_{}", std::process::id()));
        let mut ts = TraceSet::new();
        ts.insert(sample_series());
        ts.write_csv_dir(&dir, "fig0").unwrap();
        let content = std::fs::read_to_string(dir.join("fig0_power.csv")).unwrap();
        assert!(content.starts_with("time_s,power_mW"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
