//! A deterministic priority event queue.
//!
//! The kernel run loop and the hardware models schedule future work (tap flow
//! ticks, radio timeouts, thread wake-ups, poller alarms) on this queue.
//! Events at equal times pop in insertion order, so simulations are fully
//! deterministic regardless of payload contents.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: ordered by time, then by insertion sequence.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // breaking ties by insertion order (lower seq first).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timed events with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use cinder_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// let (t, what) = q.pop().unwrap();
/// assert_eq!((t, what), (SimTime::from_secs(1), "sooner"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// The time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Removes every pending event in pop order (time, then FIFO).
    ///
    /// Used by fault injection to rework the schedule wholesale (e.g. a
    /// link flap stalling in-flight deliveries). Re-scheduling entries in
    /// the returned order preserves the FIFO tie-break among equal-time
    /// events, so a drain-and-requeue round trip is order-neutral.
    pub fn drain_all(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.pop() {
            out.push(e);
        }
        out
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        assert!(q.pop_due(SimTime::from_secs(9)).is_none());
        assert!(q.pop_due(SimTime::from_secs(10)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_and_requeue_is_order_neutral() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, 'a');
        q.schedule(SimTime::ZERO, 'z');
        q.schedule(t, 'b');
        let drained = q.drain_all();
        assert!(q.is_empty());
        assert_eq!(
            drained,
            vec![(SimTime::ZERO, 'z'), (t, 'a'), (t, 'b')],
            "drain yields pop order"
        );
        for (at, e) in drained {
            q.schedule(at, e);
        }
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['z', 'a', 'b']);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
