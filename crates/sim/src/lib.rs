//! Deterministic discrete-event simulation substrate for the Cinder
//! reproduction.
//!
//! The original Cinder system ran on real hardware (an HTC Dream) and was
//! measured with an external Agilent E3644A DC power supply. This crate
//! provides the laboratory that replaces that testbed:
//!
//! * [`time`] — virtual time in integer microseconds ([`SimTime`],
//!   [`SimDuration`]), immune to wall-clock noise.
//! * [`units`] — typed energy ([`Energy`], integer microjoules) and power
//!   ([`Power`], integer microwatts) quantities with exact integer
//!   arithmetic, so energy-conservation invariants can be asserted exactly.
//! * [`event`] — a generic priority event queue with deterministic FIFO
//!   tie-breaking.
//! * [`rng`] — a seeded random source ([`SimRng`]) so every experiment is
//!   bit-reproducible.
//! * [`meter`] — a [`PowerMeter`] modelled on the paper's Agilent setup:
//!   exact event-driven energy integration plus periodic (200 ms) samples
//!   for plotting.
//! * [`trace`] — named time series with CSV output, used by the benchmark
//!   harness to regenerate the paper's figures.
//!
//! # Examples
//!
//! ```
//! use cinder_sim::{Energy, Power, SimDuration, SimTime};
//!
//! let quantum = SimDuration::from_millis(10);
//! let cpu = Power::from_milliwatts(137); // HTC Dream CPU-busy power.
//! let cost = cpu.energy_over(quantum);
//! assert_eq!(cost, Energy::from_microjoules(1_370));
//! ```

pub mod event;
pub mod meter;
pub mod rng;
pub mod time;
pub mod trace;
pub mod units;

pub use event::EventQueue;
pub use meter::PowerMeter;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{json_string, percentile_of, Series, Summary, TraceSet};
pub use units::{Energy, Power};
