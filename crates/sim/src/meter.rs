//! A simulated DC power meter.
//!
//! The paper measured the HTC Dream with an Agilent E3644A power supply,
//! sampling voltage and current roughly every 200 ms (§4.2). [`PowerMeter`]
//! plays that role: hardware models report instantaneous power changes
//! (`set_power`), the meter integrates energy *exactly* between changes, and
//! it optionally records periodic samples for plotting — the "measured"
//! (dotted) lines in Figs 4, 12 and 13.
//!
//! Exact integration matters because Table 1 compares total joules between
//! two 20-minute runs; sampling error would blur the 12.5% headline number.

use crate::time::{SimDuration, SimTime};
use crate::trace::Series;
use crate::units::{Energy, Power};

/// Default sampling cadence of the Agilent E3644A setup in the paper.
pub const AGILENT_SAMPLE_INTERVAL: SimDuration = SimDuration::from_millis(200);

/// An event-driven power meter with exact energy integration and optional
/// periodic sampling.
///
/// # Examples
///
/// ```
/// use cinder_sim::{PowerMeter, Power, SimTime};
///
/// let mut meter = PowerMeter::new(Power::from_milliwatts(699)); // idle draw
/// meter.set_power(SimTime::from_secs(10), Power::from_milliwatts(836));
/// meter.advance(SimTime::from_secs(20));
/// // 699 mW * 10 s + 836 mW * 10 s = 15.35 J
/// assert_eq!(meter.total_energy().as_microjoules(), 15_350_000);
/// ```
#[derive(Debug)]
pub struct PowerMeter {
    current: Power,
    now: SimTime,
    /// Exact accumulated energy in µJ·µs, i.e. µW·µs products.
    accum_uw_us: u128,
    sampler: Option<Sampler>,
}

#[derive(Debug)]
struct Sampler {
    interval: SimDuration,
    next_at: SimTime,
    trace: Series,
}

/// A snapshot of the meter's accumulated energy, for measuring intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeterCheckpoint {
    accum_uw_us: u128,
    at: SimTime,
}

impl PowerMeter {
    /// Creates a meter reading `initial` power at t = 0, without sampling.
    pub fn new(initial: Power) -> Self {
        PowerMeter {
            current: initial,
            now: SimTime::ZERO,
            accum_uw_us: 0,
            sampler: None,
        }
    }

    /// Enables periodic sampling into a trace named `name` (unit: watts),
    /// starting at the current time.
    pub fn enable_sampling(&mut self, name: &str, interval: SimDuration) {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        self.sampler = Some(Sampler {
            interval,
            next_at: self.now,
            trace: Series::new(name, "W"),
        });
    }

    /// The power currently being drawn.
    pub fn current_power(&self) -> Power {
        self.current
    }

    /// The meter's notion of "now".
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Integrates up to `t` and changes the measured power.
    ///
    /// Consecutive calls with an unchanged power are deduplicated: the
    /// meter defers the integration (constant power integrates linearly,
    /// so catching up at the next change — or at the next explicit
    /// [`PowerMeter::advance`] — yields the identical µJ·µs accumulator),
    /// and any samples falling inside the deferred span are emitted by that
    /// catch-up with the same times and values. Totals, checkpoints, and
    /// traces are byte-identical to the undeduplicated meter *after* an
    /// `advance`; callers that read mid-stream (the kernel run loop closes
    /// every `run_until` with one) must advance first.
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the meter's current time.
    pub fn set_power(&mut self, t: SimTime, power: Power) {
        if power == self.current {
            debug_assert!(t >= self.now, "meter time went backwards");
            return;
        }
        self.advance(t);
        self.current = power;
    }

    /// Integrates the current power up to `t`, emitting any due samples.
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the meter's current time.
    pub fn advance(&mut self, t: SimTime) {
        assert!(t >= self.now, "meter time went backwards");
        // Emit samples strictly inside (now, t]; each sample reports the
        // instantaneous power, like the real supply's readback.
        if let Some(s) = &mut self.sampler {
            while s.next_at <= t {
                s.trace.push(s.next_at, self.current.as_watts_f64());
                s.next_at += s.interval;
            }
        }
        let dt = t.since(self.now);
        self.accum_uw_us += (self.current.as_microwatts() as u128) * (dt.as_micros() as u128);
        self.now = t;
    }

    /// Adds an instantaneous energy event (e.g. the per-byte cost of a
    /// packet burst too short to resolve as a power step).
    ///
    /// # Panics
    ///
    /// Panics if `e` is negative.
    pub fn add_energy(&mut self, e: Energy) {
        assert!(!e.is_negative(), "cannot meter negative energy");
        self.accum_uw_us += (e.as_microjoules() as u128) * 1_000_000;
    }

    /// Total energy measured since construction, truncated to microjoules.
    pub fn total_energy(&self) -> Energy {
        Energy::from_microjoules((self.accum_uw_us / 1_000_000) as i64)
    }

    /// Takes a checkpoint; pair with [`PowerMeter::energy_since`].
    pub fn checkpoint(&self) -> MeterCheckpoint {
        MeterCheckpoint {
            accum_uw_us: self.accum_uw_us,
            at: self.now,
        }
    }

    /// Energy measured since `cp` was taken.
    pub fn energy_since(&self, cp: MeterCheckpoint) -> Energy {
        Energy::from_microjoules(((self.accum_uw_us - cp.accum_uw_us) / 1_000_000) as i64)
    }

    /// Average power since `cp` was taken, or zero if no time has elapsed.
    pub fn average_power_since(&self, cp: MeterCheckpoint) -> Power {
        self.energy_since(cp)
            .average_power_over(self.now.saturating_since(cp.at))
    }

    /// The sampled trace, if sampling was enabled.
    pub fn trace(&self) -> Option<&Series> {
        self.sampler.as_ref().map(|s| &s.trace)
    }

    /// Consumes the meter, returning the sampled trace, if any.
    pub fn into_trace(self) -> Option<Series> {
        self.sampler.map(|s| s.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_constant_power_exactly() {
        let mut m = PowerMeter::new(Power::from_milliwatts(699));
        m.advance(SimTime::from_secs(1201));
        // 0.699 W * 1201 s = 839.499 J: the idle floor under Table 1.
        assert_eq!(m.total_energy(), Energy::from_microjoules(839_499_000));
    }

    #[test]
    fn integrates_step_changes() {
        let mut m = PowerMeter::new(Power::from_watts(1));
        m.set_power(SimTime::from_secs(2), Power::from_watts(3));
        m.advance(SimTime::from_secs(4));
        assert_eq!(m.total_energy(), Energy::from_joules(2 + 6));
    }

    #[test]
    fn checkpoint_measures_interval() {
        let mut m = PowerMeter::new(Power::from_watts(2));
        m.advance(SimTime::from_secs(5));
        let cp = m.checkpoint();
        m.advance(SimTime::from_secs(8));
        assert_eq!(m.energy_since(cp), Energy::from_joules(6));
        assert_eq!(m.average_power_since(cp), Power::from_watts(2));
    }

    #[test]
    fn sampling_records_agilent_style_trace() {
        let mut m = PowerMeter::new(Power::from_watts(1));
        m.enable_sampling("measured", AGILENT_SAMPLE_INTERVAL);
        m.advance(SimTime::from_secs(1));
        let trace = m.trace().unwrap();
        // Samples at 0.0, 0.2, ..., 1.0 s inclusive.
        assert_eq!(trace.len(), 6);
        assert!(trace.points().iter().all(|&(_, v)| v == 1.0));
    }

    #[test]
    fn samples_capture_power_at_sample_instant() {
        let mut m = PowerMeter::new(Power::from_watts(1));
        m.enable_sampling("measured", SimDuration::from_millis(200));
        m.set_power(SimTime::from_millis(100), Power::from_watts(5));
        m.advance(SimTime::from_millis(400));
        let pts = m.trace().unwrap().points().to_vec();
        // t=0 sampled at 1 W (before the step), t=0.2 and t=0.4 at 5 W.
        assert_eq!(pts[0].1, 1.0);
        assert_eq!(pts[1].1, 5.0);
        assert_eq!(pts[2].1, 5.0);
    }

    #[test]
    #[should_panic(expected = "meter time went backwards")]
    fn rejects_backwards_time() {
        let mut m = PowerMeter::new(Power::ZERO);
        m.advance(SimTime::from_secs(2));
        m.advance(SimTime::from_secs(1));
    }

    #[test]
    fn zero_power_measures_zero() {
        let mut m = PowerMeter::new(Power::ZERO);
        m.advance(SimTime::from_secs(1000));
        assert_eq!(m.total_energy(), Energy::ZERO);
    }

    /// The set_power dedupe must be invisible: a meter fed a redundant
    /// `set_power` every "quantum" (the kernel run-loop pattern) produces a
    /// byte-identical trace and total to one that integrates the same power
    /// history with explicit advances.
    #[test]
    fn redundant_set_power_is_byte_identical() {
        let mut deduped = PowerMeter::new(Power::from_milliwatts(699));
        let mut reference = PowerMeter::new(Power::from_milliwatts(699));
        deduped.enable_sampling("measured", AGILENT_SAMPLE_INTERVAL);
        reference.enable_sampling("measured", AGILENT_SAMPLE_INTERVAL);
        // 10 ms quanta for 2 s; the power only actually changes twice.
        for q in 0..200u64 {
            let t = SimTime::from_millis(10 * q);
            let p = match q {
                50..=99 => Power::from_milliwatts(836),
                _ => Power::from_milliwatts(699),
            };
            deduped.set_power(t, p); // mostly redundant calls
            if p != reference.current_power() {
                reference.set_power(t, p);
            } else {
                reference.advance(t); // the undeduplicated behaviour
            }
            if q == 120 {
                deduped.add_energy(Energy::from_millijoules(3));
                reference.add_energy(Energy::from_millijoules(3));
            }
        }
        let end = SimTime::from_secs(2);
        deduped.advance(end);
        reference.advance(end);
        assert_eq!(deduped.total_energy(), reference.total_energy());
        assert_eq!(
            deduped.trace().unwrap().points(),
            reference.trace().unwrap().points()
        );
    }

    #[test]
    fn instant_energy_adds_to_total() {
        let mut m = PowerMeter::new(Power::from_watts(1));
        m.advance(SimTime::from_secs(1));
        m.add_energy(Energy::from_millijoules(500));
        m.advance(SimTime::from_secs(2));
        assert_eq!(m.total_energy(), Energy::from_millijoules(2_500));
    }
}
