//! Seeded randomness for reproducible experiments.
//!
//! The paper's radio measurements have real-world jitter: activation costs
//! ranged from 8.8 J to 11.9 J around a 9.5 J mean, with occasional outliers
//! (Fig 4's "penultimate transition"). [`SimRng`] reproduces that texture
//! deterministically: the same seed always yields the same experiment, so
//! every figure in `EXPERIMENTS.md` is bit-reproducible.

/// A deterministic random source for simulation noise.
///
/// Implemented as xoshiro256** seeded through SplitMix64 — self-contained
/// so the workspace builds without the `rand` crate (the build environment
/// has no network access). The stream is stable across runs and platforms.
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SimRng {
            state: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256** (Blackman & Vigna, public domain).
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty uniform range [{lo}, {hi})");
        let x = lo + self.unit() * (hi - lo);
        // `lo + unit()*(hi-lo)` can round up to exactly `hi` (e.g. when the
        // ulp at `lo` exceeds `hi - lo`); keep the documented half-open
        // contract by stepping back below `hi`.
        if x >= hi {
            hi.next_down().max(lo)
        } else {
            x
        }
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty uniform range [{lo}, {hi})");
        // Lemire-style widening multiply keeps the draw unbiased enough for
        // simulation noise without a rejection loop.
        let span = hi - lo;
        lo + (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
    }

    /// Derives an independent child generator for stream `stream_id`.
    ///
    /// Fleet simulations give every device its own stream derived from one
    /// fleet seed: `SimRng::seed_from_u64(fleet_seed).split(device_id)`.
    /// The child is a pure function of the parent's *current* state and the
    /// stream id (the parent is not advanced), so distinct ids yield
    /// decorrelated, reproducible streams and a device's stream does not
    /// depend on how many siblings were created before it.
    pub fn split(&self, stream_id: u64) -> SimRng {
        // Hash the parent state down to one word, then run two SplitMix64
        // rounds over (state-hash, stream_id). SplitMix64 is a bijection on
        // u64, so distinct stream ids can never collapse to the same child
        // seed for a given parent.
        let mut z = self.state[0]
            ^ self.state[1].rotate_left(17)
            ^ self.state[2].rotate_left(31)
            ^ self.state[3].rotate_left(47);
        for salt in [0xa076_1d64_78bd_642f_u64, stream_id] {
            z = z.wrapping_add(salt).wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
        }
        SimRng::seed_from_u64(z)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// A normal deviate via the Box-Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Box-Muller: u1 in (0, 1] so ln is finite.
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// A normal deviate clipped to `[lo, hi]`.
    ///
    /// Matches how the paper reports radio activation cost: a central value
    /// with observed minimum and maximum bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clipped_normal(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid clip range [{lo}, {hi}]");
        self.normal(mean, std_dev).clamp(lo, hi)
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRng").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.unit().to_bits()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.unit().to_bits()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let n = r.uniform_u64(10, 20);
            assert!((10..20).contains(&n));
        }
    }

    #[test]
    fn clipped_normal_respects_bounds() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = r.clipped_normal(9.5, 0.7, 8.8, 11.9);
            assert!((8.8..=11.9).contains(&x));
        }
    }

    #[test]
    fn normal_mean_is_close() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.normal(9.5, 0.7)).sum();
        let mean = sum / n as f64;
        assert!((mean - 9.5).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn split_streams_are_deterministic() {
        let parent_a = SimRng::seed_from_u64(99);
        let parent_b = SimRng::seed_from_u64(99);
        let mut child_a = parent_a.split(7);
        let mut child_b = parent_b.split(7);
        for _ in 0..100 {
            assert_eq!(child_a.unit().to_bits(), child_b.unit().to_bits());
        }
    }

    #[test]
    fn split_does_not_advance_parent() {
        let mut with_split = SimRng::seed_from_u64(5);
        let mut without = SimRng::seed_from_u64(5);
        let _ = with_split.split(3);
        for _ in 0..16 {
            assert_eq!(with_split.unit().to_bits(), without.unit().to_bits());
        }
    }

    #[test]
    fn split_streams_do_not_overlap_on_first_outputs() {
        // The fleet acceptance shape: thousands of device streams from one
        // seed, none of whose opening draws coincide.
        let parent = SimRng::seed_from_u64(2026);
        let mut seen = std::collections::HashSet::new();
        for id in 0..4096u64 {
            let mut child = parent.split(id);
            let first = (child.next_u64(), child.next_u64());
            assert!(seen.insert(first), "stream {id} repeats {first:?}");
        }
    }

    #[test]
    fn split_differs_from_parent_stream() {
        let parent = SimRng::seed_from_u64(40);
        let mut child = parent.split(0);
        let mut parent = parent;
        let pv: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let cv: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(pv, cv);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(17);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Rough frequency check.
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
