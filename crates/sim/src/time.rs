//! Virtual time for the simulator.
//!
//! All simulation time is integer microseconds. The paper's experiments span
//! up to ~2500 simulated seconds (Fig 10); `u64` microseconds gives headroom
//! of ~584,000 years, so overflow is not a practical concern and arithmetic
//! here panics on overflow in debug builds like any Rust integer math.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in microseconds from the start of
/// the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for plotting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulation time never runs
    /// backwards, so this indicates a logic error.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier} > {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float (for plotting and rate math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The shorter of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The longer of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// How many whole `step`s fit in this duration.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn div_duration(self, step: SimDuration) -> u64 {
        assert!(!step.is_zero(), "division by zero duration");
        self.0 / step.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(rhs.0 <= self.0, "duration underflow: {self} - {rhs}");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.2).as_micros(), 200_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_micros(), 10_500_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_on_backwards_time() {
        let t = SimTime::from_secs(1);
        let _ = t.since(SimTime::from_secs(2));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(100);
        let b = SimDuration::from_millis(30);
        assert_eq!((a - b).as_micros(), 70_000);
        assert_eq!((a + b).as_micros(), 130_000);
        assert_eq!(a * 3, SimDuration::from_millis(300));
        assert_eq!(a / 4, SimDuration::from_millis(25));
        assert_eq!(a.div_duration(b), 3);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{}", SimDuration::from_micros(1)), "0.000001s");
    }
}
