//! The fault plan's kernel wiring: scheduled adversity in, telemetry out.
//!
//! `cinder-faults` keeps schedules pure — a [`FaultPlan`] is a value
//! derived from the device seed's child stream. This module owns
//! everything impure about executing one: taking the radio link down
//! through [`Kernel::fault_link_down`] at flap starts (the kernel itself
//! schedules the matching `LinkUp`), killing and respawning workload
//! threads through the [`cinder_apps::RespawnHandle`] seam at crash
//! instants, and installing the battery-aging tap that drains capacity
//! fade through the typed graph. The device driver calls
//! [`FaultRuntime::apply`] only between run spans at quantum-aligned
//! boundaries, and clamps every span to [`FaultRuntime::next_boundary`]
//! — the same shape as the policy runtime's tick clamp — which is what
//! keeps fault-heavy fleets byte-identical across worker counts,
//! fast-forward on/off, and checkpoint splits.

use cinder_apps::RespawnHandle;
use cinder_core::{Actor, RateSpec};
use cinder_faults::{align_up, FaultConfig, FaultPlan};
use cinder_kernel::Kernel;
use cinder_label::Label;
use cinder_sim::{Energy, SimDuration, SimTime};

use crate::scenario::DeviceSpec;

/// One device's live fault injector: the pure schedule plus the cursors
/// and counters of its execution.
pub struct FaultRuntime {
    config: FaultConfig,
    plan: FaultPlan,
    /// The device's scheduler quantum (respawn instants align to it).
    quantum: SimDuration,
    /// Next unapplied flap window (index into `plan.flaps`).
    next_flap: usize,
    /// Next unapplied crash (index into `plan.crashes`).
    next_crash: usize,
    /// Scheduled respawns as `(due, respawn-handle index)`, in kill
    /// order — crash instants strictly increase, so this order is
    /// deterministic.
    pending_respawns: Vec<(SimTime, usize)>,
    /// The fade sink reserve, when aging is configured: its balance *is*
    /// the capacity fade drained so far.
    fade_sink: Option<cinder_core::ReserveId>,
    /// Kills actually landed (a crash whose victim is already down is
    /// skipped, not double-counted).
    pub crashes: u64,
    /// Fresh program instances brought back by the supervisor.
    pub restarts: u64,
}

impl FaultRuntime {
    /// Builds the runtime for one device: the plan from the device seed's
    /// fault stream, and — when aging is configured — a decay-exempt fade
    /// sink fed from the battery by a constant parasitic tap.
    pub fn new(config: FaultConfig, spec: &DeviceSpec, kernel: &mut Kernel) -> Self {
        let plan = FaultPlan::generate(spec.seed, spec.quantum, spec.horizon, &config);
        let fade_sink = (!config.fade_power.is_zero()).then(|| {
            let root = Actor::kernel();
            let battery = kernel.battery();
            let g = kernel.graph_mut();
            let sink = g
                .create_reserve(&root, "battery-fade", Label::default_label())
                .expect("root installs the fade sink");
            g.create_tap(
                &root,
                "battery-fade-tap",
                battery,
                sink,
                RateSpec::constant(config.fade_power),
                Label::default_label(),
            )
            .expect("root installs the fade tap");
            // Fade is lost capacity, not hoarded energy: exempt the sink
            // from anti-hoarding decay so its balance stays the exact
            // closed-form `fade_power × now`.
            g.set_decay_exempt(&root, sink, true)
                .expect("root exempts the fade sink");
            sink
        });
        FaultRuntime {
            config,
            plan,
            quantum: spec.quantum,
            next_flap: 0,
            next_crash: 0,
            pending_respawns: Vec::new(),
            fade_sink,
            crashes: 0,
            restarts: 0,
        }
    }

    /// The device's schedule (the driver reads exact link-down time off
    /// it at extraction).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Capacity fade drained so far: the sink's exact balance.
    pub fn fade(&self, kernel: &Kernel) -> Energy {
        self.fade_sink
            .and_then(|sink| kernel.graph().reserve(sink).map(|r| r.balance()))
            .unwrap_or(Energy::ZERO)
    }

    /// The next instant the injector must act, if any; the device loop
    /// never lets a run span cross it (the policy tick clamp's shape).
    /// Flap *ends* need no boundary — `LinkUp` is a kernel event.
    pub fn next_boundary(&self) -> Option<SimTime> {
        let flap = self.plan.flaps.get(self.next_flap).map(|w| w.0);
        let crash = self.plan.crashes.get(self.next_crash).map(|c| c.at);
        let respawn = self.pending_respawns.iter().map(|&(at, _)| at).min();
        [flap, crash, respawn].into_iter().flatten().min()
    }

    /// Applies everything due at or before `now`: flap starts, kills, and
    /// respawns. Must be called between run spans (the kernel parked at a
    /// quantum boundary); the span clamp guarantees nothing is late.
    pub fn apply(&mut self, kernel: &mut Kernel, respawns: &mut [RespawnHandle], now: SimTime) {
        while let Some(&(start, stop)) = self.plan.flaps.get(self.next_flap) {
            if start > now {
                break;
            }
            kernel.fault_link_down(stop, self.config.flap_semantics);
            self.next_flap += 1;
        }
        while let Some(&crash) = self.plan.crashes.get(self.next_crash) {
            if crash.at > now {
                break;
            }
            self.next_crash += 1;
            if respawns.is_empty() {
                continue; // workload exposes nothing restartable
            }
            let idx = (crash.victim % respawns.len() as u64) as usize;
            if kernel.thread_exited(respawns[idx].thread) {
                continue; // already down (exited, or a pending respawn)
            }
            kernel.kill(respawns[idx].thread);
            self.crashes += 1;
            let due = align_up(now + self.config.crash_restart_delay, self.quantum);
            self.pending_respawns.push((due, idx));
        }
        let mut i = 0;
        while i < self.pending_respawns.len() {
            let (due, idx) = self.pending_respawns[i];
            if due > now {
                i += 1;
                continue;
            }
            self.pending_respawns.remove(i);
            let handle = &mut respawns[idx];
            let name = handle.name.clone();
            let tid = kernel.spawn_unprivileged(&name, (handle.make)(), handle.reserve);
            handle.thread = tid;
            self.restarts += 1;
        }
    }
}
