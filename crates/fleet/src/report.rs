//! The aggregator: fleet percentiles, histograms, and CSV/JSON export.
//!
//! Per-device [`DeviceReport`]s roll up into a [`FleetSummary`] —
//! p50/p90/p99 battery lifetime, tail power, radio and starvation
//! distributions, quota exhaustion counts — and export as CSV (one row per
//! device, plus [`cinder_sim::trace`] series over the device index) and a
//! deterministic JSON summary. All writers propagate [`io::Result`] so a
//! read-only output directory is a diagnosable error, not a panic.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use cinder_sim::{json_string, Series, SimDuration, SimTime, Summary, TraceSet};

use crate::device::DeviceReport;
use crate::scenario::Scenario;
use crate::slab::ReportSlab;

/// A finished fleet run: ordered per-device telemetry plus scenario
/// identity.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Scenario name.
    pub scenario: String,
    /// The fleet seed the run used.
    pub seed: u64,
    /// Per-device horizon.
    pub horizon: SimDuration,
    /// Columnar per-device telemetry; row `i` is device `i`.
    pub devices: ReportSlab,
}

/// Aggregate distributions over the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Device count.
    pub devices: usize,
    /// Projected battery lifetime distribution, hours.
    pub lifetime_h: Option<Summary>,
    /// Average platform power distribution, milliwatts (its p99 is the
    /// fleet's tail power).
    pub avg_power_mw: Option<Summary>,
    /// Radio activation count distribution.
    pub radio_activations: Option<Summary>,
    /// Starvation time distribution, seconds.
    pub starved_s: Option<Summary>,
    /// Total energy the whole fleet drew, joules.
    pub fleet_energy_j: f64,
    /// Devices whose §9 data plan ran out (a send blocked on bytes in the
    /// kernel).
    pub quota_exhausted: usize,
    /// Total sends across the fleet that the kernel held on byte quotas.
    pub bytes_blocked_sends: u64,
    /// Devices holding at least one reserve in debt at the horizon.
    pub devices_in_debt: usize,
    /// Total energy drained by reserve-gated peripherals (backlight + GPS)
    /// across the fleet, joules.
    pub peripheral_energy_j: f64,
    /// Total forced peripheral shutdowns (empty reserve → hardware down)
    /// across the fleet.
    pub forced_shutdowns: u64,
    /// Σ `offload` syscalls across the fleet.
    pub offload_attempts: u64,
    /// Σ offload requests the shared backend admitted.
    pub offload_accepted: u64,
    /// Σ offloads completed by a backend response in time.
    pub offload_completed: u64,
    /// Σ offloads refused up front (backend full, plan uncovered).
    pub offload_rejected: u64,
    /// Σ offloads whose deadline fired before the response.
    pub offload_timed_out: u64,
    /// Per-device mean offload request latency distribution, seconds
    /// (devices with at least one completed offload).
    pub offload_latency_s: Option<Summary>,
    /// Joules per completed offload request: total energy of the devices
    /// that attempted offloads, divided by the fleet's completed requests
    /// (0 when nothing completed).
    pub joules_per_request: f64,
    /// Σ tap/drive re-rates the policy engines applied across the fleet.
    pub policy_rerates: u64,
    /// Σ background-demotion edges across the fleet.
    pub policy_demotions: u64,
    /// Devices whose projected lifetime covered the policy's target.
    pub lifetime_target_hits: usize,
    /// Σ user-model seconds per presence state (Active, Ambient, Away,
    /// Asleep) across the fleet.
    pub presence_s: [u64; 4],
    /// Σ radio link flaps the fault injector landed.
    pub link_flaps: u64,
    /// Σ exact link-down time across the fleet, µs.
    pub link_down_us: u64,
    /// Σ in-flight bytes lost to drop-semantics flaps.
    pub flap_lost_bytes: u64,
    /// Σ transient app kills the fault supervisors landed.
    pub crashes: u64,
    /// Σ program instances respawned after a crash.
    pub restarts: u64,
    /// Σ backoff retries the resilience layers scheduled.
    pub retries: u64,
    /// Σ work items abandoned after the retry budget ran out.
    pub retries_exhausted: u64,
    /// Total battery capacity fade the aging taps drained, joules.
    pub fade_j: f64,
}

impl FleetReport {
    /// Assembles a report (the slab's row order *is* the device-id order).
    pub fn new(scenario: &Scenario, devices: ReportSlab) -> FleetReport {
        FleetReport {
            scenario: scenario.name.clone(),
            seed: scenario.seed,
            horizon: scenario.horizon,
            devices,
        }
    }

    /// Average platform power of device `d` in milliwatts.
    fn avg_power_mw(&self, d: &DeviceReport) -> f64 {
        d.total_energy_uj as f64 / self.horizon.as_secs_f64() / 1_000.0
    }

    /// The aggregate distributions.
    pub fn summary(&self) -> FleetSummary {
        let collect = |f: &dyn Fn(&DeviceReport) -> f64| -> Vec<f64> {
            self.devices.iter().map(|d| f(&d)).collect()
        };
        let offload_completed: u64 = self.devices.iter().map(|d| d.offload_completed).sum();
        FleetSummary {
            devices: self.devices.len(),
            lifetime_h: Summary::from_values(&collect(&|d| d.lifetime_h)),
            avg_power_mw: Summary::from_values(&collect(&|d| self.avg_power_mw(d))),
            radio_activations: Summary::from_values(&collect(&|d| d.radio_activations as f64)),
            starved_s: Summary::from_values(&collect(&|d| d.starved_s)),
            fleet_energy_j: self
                .devices
                .iter()
                .map(|d| d.total_energy_uj as f64 / 1e6)
                .sum(),
            quota_exhausted: self.devices.iter().filter(|d| d.quota_exhausted).count(),
            bytes_blocked_sends: self.devices.iter().map(|d| d.bytes_blocked_sends).sum(),
            devices_in_debt: self.devices.iter().filter(|d| d.debt_reserves > 0).count(),
            peripheral_energy_j: self
                .devices
                .iter()
                .map(|d| (d.backlight_energy_uj + d.gps_energy_uj) as f64 / 1e6)
                .sum(),
            forced_shutdowns: self
                .devices
                .iter()
                .map(|d| d.backlight_shutdowns + d.gps_shutdowns)
                .sum(),
            offload_attempts: self.devices.iter().map(|d| d.offload_attempts).sum(),
            offload_accepted: self.devices.iter().map(|d| d.offload_accepted).sum(),
            offload_completed,
            offload_rejected: self.devices.iter().map(|d| d.offload_rejected).sum(),
            offload_timed_out: self.devices.iter().map(|d| d.offload_timed_out).sum(),
            offload_latency_s: Summary::from_values(
                &self
                    .devices
                    .iter()
                    .filter(|d| d.offload_completed > 0)
                    .map(|d| d.offload_latency_us as f64 / d.offload_completed as f64 / 1e6)
                    .collect::<Vec<f64>>(),
            ),
            joules_per_request: if offload_completed == 0 {
                0.0
            } else {
                self.devices
                    .iter()
                    .filter(|d| d.offload_attempts > 0)
                    .map(|d| d.total_energy_uj as f64 / 1e6)
                    .sum::<f64>()
                    / offload_completed as f64
            },
            policy_rerates: self.devices.iter().map(|d| d.policy_rerates).sum(),
            policy_demotions: self.devices.iter().map(|d| d.policy_demotions).sum(),
            lifetime_target_hits: self
                .devices
                .iter()
                .filter(|d| d.lifetime_target_hit)
                .count(),
            presence_s: self.devices.iter().fold([0u64; 4], |acc, d| {
                [
                    acc[0] + d.presence_active_s,
                    acc[1] + d.presence_ambient_s,
                    acc[2] + d.presence_away_s,
                    acc[3] + d.presence_asleep_s,
                ]
            }),
            link_flaps: self.devices.iter().map(|d| d.link_flaps).sum(),
            link_down_us: self.devices.iter().map(|d| d.link_down_us).sum(),
            flap_lost_bytes: self.devices.iter().map(|d| d.flap_lost_bytes).sum(),
            crashes: self.devices.iter().map(|d| d.crashes).sum(),
            restarts: self.devices.iter().map(|d| d.restarts).sum(),
            retries: self.devices.iter().map(|d| d.retries).sum(),
            retries_exhausted: self.devices.iter().map(|d| d.retries_exhausted).sum(),
            fade_j: self.devices.iter().map(|d| d.fade_uj).sum::<i64>() as f64 / 1e6,
        }
    }

    /// A fixed-width histogram of projected lifetimes: `bins` buckets over
    /// `[min, max]`, returned as `(bucket_low_h, count)`.
    pub fn lifetime_histogram(&self, bins: usize) -> Vec<(f64, usize)> {
        let finite: Vec<f64> = self
            .devices
            .lifetimes_h()
            .iter()
            .copied()
            .filter(|l| l.is_finite())
            .collect();
        let (Some(&min), Some(&max)) = (
            finite.iter().min_by(|a, b| a.total_cmp(b)),
            finite.iter().max_by(|a, b| a.total_cmp(b)),
        ) else {
            return Vec::new();
        };
        let bins = bins.max(1);
        let width = ((max - min) / bins as f64).max(f64::EPSILON);
        let mut hist = vec![0usize; bins];
        for l in &finite {
            let i = (((l - min) / width) as usize).min(bins - 1);
            hist[i] += 1;
        }
        hist.into_iter()
            .enumerate()
            .map(|(i, count)| (min + i as f64 * width, count))
            .collect()
    }

    /// Per-device CSV: one row per device, ordered by id.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "device,workload,battery_uj,battery_remaining_uj,total_energy_uj,cpu_energy_uj,\
             backlight_energy_uj,gps_energy_uj,backlight_shutdowns,gps_shutdowns,\
             lifetime_h,avg_power_mw,radio_activations,radio_active_s,net_bytes,ops,starved_s,\
             debt_reserves,quota_exhausted,quota_remaining_bytes,bytes_blocked_sends,\
             offload_attempts,offload_accepted,offload_completed,offload_rejected,\
             offload_timed_out,offload_latency_us,policy_rerates,policy_demotions,\
             presence_active_s,presence_ambient_s,presence_away_s,presence_asleep_s,\
             lifetime_target_hit,link_flaps,link_down_us,flap_lost_bytes,crashes,restarts,\
             retries,retries_exhausted,fade_uj\n",
        );
        for d in &self.devices {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},{},{:.6},{},{},{:.6},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                d.id,
                d.workload,
                d.battery_capacity_uj,
                d.battery_remaining_uj,
                d.total_energy_uj,
                d.cpu_energy_uj,
                d.backlight_energy_uj,
                d.gps_energy_uj,
                d.backlight_shutdowns,
                d.gps_shutdowns,
                d.lifetime_h,
                self.avg_power_mw(&d),
                d.radio_activations,
                d.radio_active_s,
                d.net_bytes,
                d.ops,
                d.starved_s,
                d.debt_reserves,
                d.quota_exhausted,
                d.quota_remaining_bytes,
                d.bytes_blocked_sends,
                d.offload_attempts,
                d.offload_accepted,
                d.offload_completed,
                d.offload_rejected,
                d.offload_timed_out,
                d.offload_latency_us,
                d.policy_rerates,
                d.policy_demotions,
                d.presence_active_s,
                d.presence_ambient_s,
                d.presence_away_s,
                d.presence_asleep_s,
                d.lifetime_target_hit,
                d.link_flaps,
                d.link_down_us,
                d.flap_lost_bytes,
                d.crashes,
                d.restarts,
                d.retries,
                d.retries_exhausted,
                d.fade_uj,
            );
        }
        out
    }

    /// Fleet-wide series over the *device index* (the trace machinery's
    /// time axis doubles as an ordinal axis: device `i` sits at `i`
    /// seconds), exportable through [`TraceSet::write_csv_dir`].
    pub fn trace_set(&self) -> TraceSet {
        let mut ts = TraceSet::new();
        let mut lifetime = Series::new("lifetime_by_device", "h");
        let mut power = Series::new("avg_power_by_device", "mW");
        let mut starved = Series::new("starved_by_device", "s");
        for d in &self.devices {
            let at = SimTime::from_secs(d.id);
            lifetime.push(at, d.lifetime_h);
            power.push(at, self.avg_power_mw(&d));
            starved.push(at, d.starved_s);
        }
        ts.insert(lifetime);
        ts.insert(power);
        ts.insert(starved);
        ts
    }

    /// Writes the per-device CSV and the trace series under `dir`,
    /// prefixed with the scenario name.
    pub fn write_csv_dir(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(
            dir.join(format!("{}_devices.csv", self.scenario)),
            self.to_csv(),
        )?;
        self.trace_set().write_csv_dir(dir, &self.scenario)
    }

    /// A deterministic JSON rendering of the aggregate summary (fixed key
    /// order, fixed float precision): the artefact the scale benchmark and
    /// CI compare byte-for-byte across thread counts.
    pub fn to_json(&self) -> String {
        let s = self.summary();
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"scenario\": {},", json_string(&self.scenario));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"devices\": {},", s.devices);
        let _ = writeln!(out, "  \"horizon_s\": {:.3},", self.horizon.as_secs_f64());
        let _ = writeln!(out, "  \"fleet_energy_j\": {:.6},", s.fleet_energy_j);
        let _ = writeln!(out, "  \"lifetime_h\": {},", summary_json(&s.lifetime_h));
        let _ = writeln!(
            out,
            "  \"avg_power_mw\": {},",
            summary_json(&s.avg_power_mw)
        );
        let _ = writeln!(
            out,
            "  \"radio_activations\": {},",
            summary_json(&s.radio_activations)
        );
        let _ = writeln!(out, "  \"starved_s\": {},", summary_json(&s.starved_s));
        let _ = writeln!(out, "  \"quota_exhausted\": {},", s.quota_exhausted);
        let _ = writeln!(out, "  \"bytes_blocked_sends\": {},", s.bytes_blocked_sends);
        let _ = writeln!(
            out,
            "  \"peripheral_energy_j\": {:.6},",
            s.peripheral_energy_j
        );
        let _ = writeln!(out, "  \"forced_shutdowns\": {},", s.forced_shutdowns);
        let _ = writeln!(out, "  \"offload_attempts\": {},", s.offload_attempts);
        let _ = writeln!(out, "  \"offload_accepted\": {},", s.offload_accepted);
        let _ = writeln!(out, "  \"offload_completed\": {},", s.offload_completed);
        let _ = writeln!(out, "  \"offload_rejected\": {},", s.offload_rejected);
        let _ = writeln!(out, "  \"offload_timed_out\": {},", s.offload_timed_out);
        let _ = writeln!(
            out,
            "  \"offload_latency_s\": {},",
            summary_json(&s.offload_latency_s)
        );
        let _ = writeln!(
            out,
            "  \"joules_per_request\": {:.6},",
            s.joules_per_request
        );
        let _ = writeln!(out, "  \"policy_rerates\": {},", s.policy_rerates);
        let _ = writeln!(out, "  \"policy_demotions\": {},", s.policy_demotions);
        let _ = writeln!(
            out,
            "  \"lifetime_target_hits\": {},",
            s.lifetime_target_hits
        );
        let _ = writeln!(
            out,
            "  \"presence_s\": [{}, {}, {}, {}],",
            s.presence_s[0], s.presence_s[1], s.presence_s[2], s.presence_s[3]
        );
        let _ = writeln!(out, "  \"link_flaps\": {},", s.link_flaps);
        let _ = writeln!(out, "  \"link_down_us\": {},", s.link_down_us);
        let _ = writeln!(out, "  \"flap_lost_bytes\": {},", s.flap_lost_bytes);
        let _ = writeln!(out, "  \"crashes\": {},", s.crashes);
        let _ = writeln!(out, "  \"restarts\": {},", s.restarts);
        let _ = writeln!(out, "  \"retries\": {},", s.retries);
        let _ = writeln!(out, "  \"retries_exhausted\": {},", s.retries_exhausted);
        let _ = writeln!(out, "  \"fade_j\": {:.6},", s.fade_j);
        let _ = writeln!(out, "  \"devices_in_debt\": {}", s.devices_in_debt);
        out.push_str("}\n");
        out
    }

    /// Writes [`FleetReport::to_json`] to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_json())
    }
}

/// The one JSON rendering of a distribution block, shared by the retained
/// report and the streaming summary so both emit the same shape.
pub(crate) fn summary_json(sum: &Option<Summary>) -> String {
    match sum {
        None => "null".to_string(),
        Some(s) => format!(
            "{{ \"min\": {:.6}, \"p50\": {:.6}, \"p90\": {:.6}, \"p99\": {:.6}, \
             \"max\": {:.6}, \"mean\": {:.6} }}",
            s.min, s.p50, s.p90, s.p99, s.max, s.mean
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Workload;

    fn device(id: u64, lifetime_h: f64, energy_uj: i64) -> DeviceReport {
        DeviceReport {
            id,
            workload: Workload::Spinner.tag(),
            battery_capacity_uj: 15_000_000_000,
            battery_remaining_uj: 14_000_000_000,
            total_energy_uj: energy_uj,
            cpu_energy_uj: energy_uj / 10,
            backlight_energy_uj: id as i64 * 1_000_000,
            gps_energy_uj: 500_000,
            backlight_shutdowns: u64::from(id == 3),
            gps_shutdowns: u64::from(id == 3) * 2,
            lifetime_h,
            radio_activations: id,
            radio_active_s: 1.0,
            net_bytes: 100,
            ops: 3,
            starved_s: id as f64,
            debt_reserves: u32::from(id % 2 == 0),
            quota_exhausted: id == 1,
            quota_remaining_bytes: 0,
            bytes_blocked_sends: u64::from(id == 1) * 3,
            offload_attempts: id * 2,
            offload_accepted: id,
            offload_completed: id / 2,
            offload_rejected: id,
            offload_timed_out: id - id / 2,
            offload_latency_us: id / 2 * 600_000,
            policy_rerates: id * 3,
            policy_demotions: id,
            presence_active_s: 100,
            presence_ambient_s: 200,
            presence_away_s: 300,
            presence_asleep_s: 400,
            lifetime_target_hit: id >= 5,
            link_flaps: id,
            link_down_us: id * 1_000_000,
            flap_lost_bytes: id * 10,
            crashes: u64::from(id % 3 == 0),
            restarts: u64::from(id % 3 == 0),
            retries: id * 2,
            retries_exhausted: id / 4,
            fade_uj: 1_500_000,
        }
    }

    fn report() -> FleetReport {
        FleetReport {
            scenario: "unit".into(),
            seed: 9,
            horizon: SimDuration::from_secs(3_600),
            devices: (0..10)
                .map(|i| device(i, 4.0 + i as f64, 2_500_000_000))
                .collect(),
        }
    }

    #[test]
    fn summary_aggregates_distributions() {
        let s = report().summary();
        assert_eq!(s.devices, 10);
        let lifetime = s.lifetime_h.unwrap();
        assert_eq!(lifetime.min, 4.0);
        assert_eq!(lifetime.max, 13.0);
        assert_eq!(s.quota_exhausted, 1);
        assert_eq!(s.bytes_blocked_sends, 3);
        assert_eq!(s.devices_in_debt, 5);
        // Σ (id × 1 J) + 10 × 0.5 J of GPS.
        assert!((s.peripheral_energy_j - 50.0).abs() < 1e-9);
        assert_eq!(s.forced_shutdowns, 3);
        // 2500 J × 10 devices.
        assert!((s.fleet_energy_j - 25_000.0).abs() < 1e-9);
        // 2.5 MJ over 3600 s ≈ 694.4 mW for every device.
        let power = s.avg_power_mw.unwrap();
        assert!((power.mean - 694.444).abs() < 0.01, "{}", power.mean);
        // Offload totals: Σ 2id, Σ id, Σ id/2 over ids 0..10.
        assert_eq!(s.offload_attempts, 90);
        assert_eq!(s.offload_accepted, 45);
        assert_eq!(s.offload_completed, 20);
        assert_eq!(s.offload_rejected, 45);
        assert_eq!(s.offload_timed_out, 25);
        // Every completing device's mean latency is exactly 0.6 s.
        let lat = s.offload_latency_s.unwrap();
        assert!((lat.mean - 0.6).abs() < 1e-9, "{}", lat.mean);
        // 9 offloading devices × 2500 J over 20 completions.
        assert!((s.joules_per_request - 9.0 * 2_500.0 / 20.0).abs() < 1e-6);
        // Policy telemetry: Σ 3id, Σ id over ids 0..10; 5 devices hit.
        assert_eq!(s.policy_rerates, 135);
        assert_eq!(s.policy_demotions, 45);
        assert_eq!(s.lifetime_target_hits, 5);
        assert_eq!(s.presence_s, [1_000, 2_000, 3_000, 4_000]);
        // Fault telemetry: Σ id, Σ id × 1 s, Σ 10id; ids 0/3/6/9 crash.
        assert_eq!(s.link_flaps, 45);
        assert_eq!(s.link_down_us, 45_000_000);
        assert_eq!(s.flap_lost_bytes, 450);
        assert_eq!(s.crashes, 4);
        assert_eq!(s.restarts, 4);
        assert_eq!(s.retries, 90);
        assert_eq!(s.retries_exhausted, 8);
        // 1.5 J of fade per device.
        assert!((s.fade_j - 15.0).abs() < 1e-9, "{}", s.fade_j);
    }

    #[test]
    fn histogram_covers_all_finite_devices() {
        let h = report().lifetime_histogram(5);
        assert_eq!(h.len(), 5);
        assert_eq!(h.iter().map(|&(_, c)| c).sum::<usize>(), 10);
        assert_eq!(h[0].0, 4.0);
    }

    #[test]
    fn histogram_of_empty_fleet_is_empty() {
        let empty = FleetReport {
            devices: ReportSlab::new(),
            ..report()
        };
        assert!(empty.lifetime_histogram(4).is_empty());
        assert_eq!(empty.summary().lifetime_h, None);
    }

    #[test]
    fn csv_has_one_row_per_device() {
        let csv = report().to_csv();
        assert_eq!(csv.lines().count(), 11); // header + 10 devices
        assert!(csv.starts_with("device,workload,"));
        assert!(csv.contains(",spinner,"));
    }

    #[test]
    fn json_is_deterministic_and_parses_shape() {
        let a = report().to_json();
        let b = report().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"p99\""));
        assert!(a.contains("\"quota_exhausted\": 1"));
        assert!(a.trim_end().ends_with('}'));
    }

    #[test]
    fn write_csv_dir_round_trips() {
        let dir = std::env::temp_dir().join(format!("cinder_fleet_test_{}", std::process::id()));
        report().write_csv_dir(&dir).unwrap();
        let devices = fs::read_to_string(dir.join("unit_devices.csv")).unwrap();
        assert!(devices.starts_with("device,workload,"));
        let series = fs::read_to_string(dir.join("unit_lifetime_by_device.csv")).unwrap();
        assert!(series.starts_with("time_s,lifetime_by_device_h"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
