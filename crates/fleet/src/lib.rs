//! Population-scale Cinder studies: a *fleet* of independent, deterministic
//! device simulations with aggregate telemetry.
//!
//! The paper evaluates Cinder on a single HTC Dream; this crate spends the
//! simulator's speed on the regime fleet-level energy monitoring work
//! targets — thousands of heterogeneous devices, each running one of the
//! paper's §5/§6 application workloads with device-local parameter jitter.
//!
//! The layering sits strictly *above* the kernel:
//!
//! ```text
//!   scenario ──► specs ──► device driver (one Kernel each) ──► reports
//!      │                        ▲                                │
//!      │        sharded executor (std::thread workers,           │
//!      │        chunked work stealing, id-ordered results)       │
//!      └────────────────────────┴────────────────────────────────┤
//!                                              aggregator (percentiles,
//!                                              histograms, CSV/JSON)
//! ```
//!
//! # Determinism contract
//!
//! * One fleet seed fixes everything. Device `i` draws its parameters from
//!   [`cinder_sim::SimRng::split`]`(i)` — an independent child stream — so
//!   its behaviour does not depend on how many devices surround it.
//! * Devices never share state; each runs its own [`cinder_kernel::Kernel`]
//!   to the horizon (with the kernel's bit-exact idle fast-forward on).
//! * The executor assembles results **by device id**, so the aggregate
//!   report is byte-identical for *any* worker thread count — property
//!   tests in `tests/fleet_props.rs` enforce this.
//!
//! # Modules
//!
//! * [`scenario`] — the population model: workload mixture, battery and
//!   rate jitter, optional §9 data-plan quota.
//! * [`device`] — builds one kernel from a [`scenario::DeviceSpec`], runs
//!   it (steady epochs fast-forwarded, dynamic epochs stepped), and
//!   extracts a compact [`device::DeviceReport`].
//! * [`executor`] — shards devices across `std::thread` workers into a
//!   retained [`slab::ReportSlab`].
//! * [`slab`] — struct-of-arrays storage of per-device telemetry.
//! * [`stream`] — O(workers × bins) streaming aggregation with exact
//!   merges, plus deterministic checkpoint/resume.
//! * [`report`] — fleet percentiles (p50/p90/p99 lifetime, tail power) and
//!   CSV/JSON export via [`cinder_sim::trace`].
//! * [`policy_driver`] — kernel wiring for `cinder-policy`'s pure
//!   user-aware policies: observables in at grid-aligned ticks, tap
//!   re-rates and drive caps out through root syscalls.
//! * [`fault_driver`] — kernel wiring for `cinder-faults`' pure fault
//!   schedules: link flaps, kill/respawn supervision, and the battery
//!   aging tap, all at quantum-aligned span boundaries.

pub mod device;
pub mod executor;
pub mod fault_driver;
pub mod policy_driver;
pub mod report;
pub mod scenario;
pub mod slab;
pub mod stream;

pub use cinder_faults::{FaultConfig, FaultPlan, FlapSemantics, OutageSpec, RetryPolicy};
pub use cinder_policy::{PolicyConfig, PolicyVariant, PresenceState, PresenceTrace};
pub use device::{simulate_device, simulate_device_with, DeviceReport, DeviceScratch};
pub use executor::{run_fleet, run_fleet_with};
pub use fault_driver::FaultRuntime;
pub use policy_driver::PolicyRuntime;
pub use report::{FleetReport, FleetSummary};
pub use scenario::{DataPlan, DeviceSpec, Scenario, Workload};
pub use slab::ReportSlab;
pub use stream::{
    checkpoint_fleet, resume_fleet, stream_fleet, stream_fleet_span, stream_fleet_with,
    FleetCheckpoint, StreamReport, StreamSummary, CHECKPOINT_FORMAT,
};
