//! Streaming fleet aggregation and checkpoint/resume.
//!
//! The retained path ([`crate::executor::run_fleet_with`]) keeps every
//! [`DeviceReport`] — O(devices) memory — because the CSV exporter needs
//! the rows. Fleet-scale studies only need the *aggregate*: percentiles,
//! totals, exhaustion counts. This module folds each finished device into
//! a [`StreamSummary`] and drops the report on the floor, so a
//! million-device run costs O(workers × bins) memory.
//!
//! # Exactness and merge order
//!
//! The summary must be byte-identical for any worker count and any chunk
//! assignment, yet workers steal chunks nondeterministically and merge
//! their local summaries in arbitrary order. Every accumulator is
//! therefore *exactly* commutative and associative:
//!
//! * sums are integers (`i128`/`u128`) — float fields are fixed-pointed
//!   per device (`round(v × scale)`), a deterministic per-device map, so
//!   the integer total is independent of addition order;
//! * histogram bins are `u64` counts;
//! * `min`/`max` over finite `f64`s commute exactly.
//!
//! Means and percentiles are *derived at render time* from the merged
//! state, never accumulated in floating point. Percentiles interpolate
//! the fixed-bin histogram with the same `rank = p/100 × (n−1)`
//! convention as [`cinder_sim::Summary`]; they are estimates with one-bin
//! resolution (exact `min`/`max` bracket them), which is the price of
//! O(bins) memory.
//!
//! # Checkpoint/resume
//!
//! Device `i` draws everything from `root.split(i)`, so the RNG "stream
//! position" of a half-finished fleet *is* the next unsimulated device
//! id. A [`FleetCheckpoint`] is that cursor plus the summary state and
//! the scenario identity, serialised as deterministic text (floats as
//! `f64::to_bits` hex, so round-trips are bit-exact). Resuming replays
//! nothing: `run(0..k)` + checkpoint + `run(k..n)` merges to the same
//! bytes as one `run(0..n)` — a property test pins this down.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cinder_sim::{json_string, SimDuration, Summary};

use crate::device::{DeviceReport, DeviceScratch};
use crate::report::summary_json;
use crate::scenario::Scenario;

/// Histogram bins per channel. 256 bins over each channel's fixed range
/// gives sub-percent quantile resolution at O(bins) memory.
pub const STREAM_BINS: usize = 256;

/// Devices claimed per steal (mirrors the retained executor's chunking).
const CHUNK: usize = 16;

/// One streamed distribution: exact integer sum + exact min/max + a
/// fixed-bin histogram for quantile estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    /// Fixed-point scale: each observation contributes
    /// `round(v × scale)` to [`Channel::sum_fp`].
    scale: f64,
    /// Inclusive histogram low edge; values below clamp into bin 0.
    lo: f64,
    /// Histogram high edge; values above clamp into the last bin.
    hi: f64,
    /// Finite observations.
    count: u64,
    /// Non-finite observations (excluded from every statistic).
    nonfinite: u64,
    /// Exact fixed-point sum of finite observations.
    sum_fp: i128,
    /// Exact minimum (`+∞` until the first observation).
    min: f64,
    /// Exact maximum (`−∞` until the first observation).
    max: f64,
    /// Per-bin counts; edge bins absorb out-of-range values.
    counts: Vec<u64>,
}

impl Channel {
    fn new(scale: f64, lo: f64, hi: f64) -> Channel {
        assert!(hi > lo, "degenerate channel range [{lo}, {hi}]");
        Channel {
            scale,
            lo,
            hi,
            count: 0,
            nonfinite: 0,
            sum_fp: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            counts: vec![0; STREAM_BINS],
        }
    }

    fn width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Folds one observation in.
    fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            self.nonfinite += 1;
            return;
        }
        self.count += 1;
        self.sum_fp += (v * self.scale).round() as i128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let i = if v <= self.lo {
            0
        } else {
            (((v - self.lo) / self.width()) as usize).min(self.counts.len() - 1)
        };
        self.counts[i] += 1;
    }

    /// Exact merge; the two channels must share a configuration.
    fn merge(&mut self, other: &Channel) {
        assert_eq!(
            (self.scale, self.lo, self.hi, self.counts.len()),
            (other.scale, other.lo, other.hi, other.counts.len()),
            "merging differently-configured channels"
        );
        self.count += other.count;
        self.nonfinite += other.nonfinite;
        self.sum_fp += other.sum_fp;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Histogram-interpolated quantile estimate with the
    /// `rank = p/100 × (n−1)` convention; `None` on an empty channel.
    /// `quantile(0)` is the exact minimum, `quantile(100)` the exact
    /// maximum; interior quantiles are clamped to `[min, max]`.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!(
            p.is_finite() && (0.0..=100.0).contains(&p),
            "quantile out of range: {p}"
        );
        if self.count == 0 {
            return None;
        }
        if p == 0.0 {
            return Some(self.min);
        }
        if p == 100.0 {
            return Some(self.max);
        }
        let rank = p / 100.0 * (self.count - 1) as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = cum as f64;
            cum += c;
            if (cum as f64) > rank {
                // Spread the bin's c items uniformly across its width and
                // read off the in-bin position of the continuous rank.
                let pos = ((rank - before + 0.5) / c as f64).clamp(0.0, 1.0);
                let v = self.lo + (i as f64 + pos) * self.width();
                return Some(v.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Exact mean (integer sum ÷ count, descaled once).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_fp as f64 / self.scale / self.count as f64)
    }

    /// Renders the channel in [`cinder_sim::Summary`] shape
    /// (min/max/mean exact, percentiles histogram-estimated).
    pub fn summary(&self) -> Option<Summary> {
        (self.count > 0).then(|| Summary {
            min: self.min,
            p50: self.quantile(50.0).unwrap(),
            p90: self.quantile(90.0).unwrap(),
            p99: self.quantile(99.0).unwrap(),
            max: self.max,
            mean: self.mean().unwrap(),
        })
    }

    /// The histogram as `(bin_low_edge, count)` rows.
    pub fn bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = self.width();
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + i as f64 * w, c))
    }

    fn write_text(&self, name: &str, out: &mut String) {
        let _ = writeln!(out, "channel {name}");
        let _ = writeln!(
            out,
            "cfg {:016x} {:016x} {:016x}",
            self.scale.to_bits(),
            self.lo.to_bits(),
            self.hi.to_bits()
        );
        let _ = writeln!(out, "count {} {}", self.count, self.nonfinite);
        let _ = writeln!(out, "sum_fp {}", self.sum_fp);
        let _ = writeln!(
            out,
            "minmax {:016x} {:016x}",
            self.min.to_bits(),
            self.max.to_bits()
        );
        let mut counts = String::from("counts");
        for c in &self.counts {
            let _ = write!(counts, " {c}");
        }
        let _ = writeln!(out, "{counts}");
    }
}

/// The mergeable, checkpointable aggregate of a (partial) fleet run.
///
/// Construct with [`StreamSummary::new`], fold devices in with
/// [`StreamSummary::observe`], combine partial runs with
/// [`StreamSummary::merge`]. All state is exactly commutative (module
/// docs), so any observe/merge order over the same device set yields
/// bit-identical state.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// Per-device horizon (fixes the power denominator and the starvation
    /// histogram range).
    horizon: SimDuration,
    /// Devices folded in so far.
    pub devices: u64,
    /// Exact Σ total_energy_uj.
    total_energy_uj: i128,
    /// Exact Σ (backlight + GPS) µJ.
    peripheral_energy_uj: i128,
    /// Devices whose data plan ran out.
    quota_exhausted: u64,
    /// Σ sends held on byte quotas.
    bytes_blocked_sends: u128,
    /// Devices holding a reserve in debt at the horizon.
    devices_in_debt: u64,
    /// Σ forced peripheral shutdowns.
    forced_shutdowns: u128,
    /// Σ `offload` syscalls.
    offload_attempts: u128,
    /// Σ offload requests the shared backend admitted.
    offload_accepted: u128,
    /// Σ offloads completed by a backend response in time.
    offload_completed: u128,
    /// Σ offloads refused up front.
    offload_rejected: u128,
    /// Σ offloads whose deadline fired before the response.
    offload_timed_out: u128,
    /// Σ observed request latency over completed offloads, µs.
    offload_latency_us: u128,
    /// Σ total_energy_uj over devices that attempted offloads (the
    /// joules-per-request numerator).
    offload_energy_uj: i128,
    /// Σ tap/drive re-rates the policy engines applied.
    policy_rerates: u128,
    /// Σ background-demotion edges.
    policy_demotions: u128,
    /// Devices whose projected lifetime covered the policy's target.
    lifetime_target_hits: u64,
    /// Σ user-model seconds spent Active.
    presence_active_s: u128,
    /// Σ user-model seconds spent Ambient.
    presence_ambient_s: u128,
    /// Σ user-model seconds spent Away.
    presence_away_s: u128,
    /// Σ user-model seconds spent Asleep.
    presence_asleep_s: u128,
    /// Σ radio link flaps the fault injectors landed.
    link_flaps: u128,
    /// Σ exact link-down time, µs.
    link_down_us: u128,
    /// Σ in-flight bytes lost to drop-semantics flaps.
    flap_lost_bytes: u128,
    /// Σ transient app kills the fault supervisors landed.
    crashes: u128,
    /// Σ program instances respawned after a crash.
    restarts: u128,
    /// Σ backoff retries the resilience layers scheduled.
    retries: u128,
    /// Σ work items abandoned after the retry budget ran out.
    retries_exhausted: u128,
    /// Exact Σ battery capacity fade, µJ.
    fade_uj: i128,
    /// Projected lifetime distribution, hours.
    pub lifetime_h: Channel,
    /// Average platform power distribution, milliwatts.
    pub avg_power_mw: Channel,
    /// Radio activation count distribution.
    pub radio_activations: Channel,
    /// Starvation time distribution, seconds.
    pub starved_s: Channel,
    /// Per-device mean offload request latency, seconds (devices with at
    /// least one completed offload).
    pub offload_latency_s: Channel,
}

impl StreamSummary {
    /// An empty summary for runs over `horizon`.
    ///
    /// Histogram ranges are fixed up front (they must be, for exact
    /// merges): lifetimes 0–1000 h, power 0–5000 mW, activations
    /// 0–20000, starvation 0–horizon. Out-of-range values clamp into the
    /// edge bins — the exact min/max still bracket the distribution, only
    /// the tail quantile estimate coarsens.
    pub fn new(horizon: SimDuration) -> StreamSummary {
        StreamSummary {
            horizon,
            devices: 0,
            total_energy_uj: 0,
            peripheral_energy_uj: 0,
            quota_exhausted: 0,
            bytes_blocked_sends: 0,
            devices_in_debt: 0,
            forced_shutdowns: 0,
            offload_attempts: 0,
            offload_accepted: 0,
            offload_completed: 0,
            offload_rejected: 0,
            offload_timed_out: 0,
            offload_latency_us: 0,
            offload_energy_uj: 0,
            policy_rerates: 0,
            policy_demotions: 0,
            lifetime_target_hits: 0,
            presence_active_s: 0,
            presence_ambient_s: 0,
            presence_away_s: 0,
            presence_asleep_s: 0,
            link_flaps: 0,
            link_down_us: 0,
            flap_lost_bytes: 0,
            crashes: 0,
            restarts: 0,
            retries: 0,
            retries_exhausted: 0,
            fade_uj: 0,
            // µh fixed point: exact to a microhour per device.
            lifetime_h: Channel::new(1e6, 0.0, 1_000.0),
            avg_power_mw: Channel::new(1e6, 0.0, 5_000.0),
            radio_activations: Channel::new(1.0, 0.0, 20_000.0),
            // starved_s is integer µs rendered as seconds, so the 1e6
            // fixed point recovers the original integer exactly.
            starved_s: Channel::new(1e6, 0.0, horizon.as_secs_f64()),
            // Mean request latencies live well under a minute; the exact
            // min/max still bracket any outlier past the clamp.
            offload_latency_s: Channel::new(1e6, 0.0, 60.0),
        }
    }

    /// Folds one device's report into the summary.
    pub fn observe(&mut self, d: &DeviceReport) {
        self.devices += 1;
        self.total_energy_uj += d.total_energy_uj as i128;
        self.peripheral_energy_uj += (d.backlight_energy_uj + d.gps_energy_uj) as i128;
        self.quota_exhausted += u64::from(d.quota_exhausted);
        self.bytes_blocked_sends += u128::from(d.bytes_blocked_sends);
        self.devices_in_debt += u64::from(d.debt_reserves > 0);
        self.forced_shutdowns += u128::from(d.backlight_shutdowns + d.gps_shutdowns);
        self.offload_attempts += u128::from(d.offload_attempts);
        self.offload_accepted += u128::from(d.offload_accepted);
        self.offload_completed += u128::from(d.offload_completed);
        self.offload_rejected += u128::from(d.offload_rejected);
        self.offload_timed_out += u128::from(d.offload_timed_out);
        self.offload_latency_us += u128::from(d.offload_latency_us);
        if d.offload_attempts > 0 {
            self.offload_energy_uj += d.total_energy_uj as i128;
        }
        self.policy_rerates += u128::from(d.policy_rerates);
        self.policy_demotions += u128::from(d.policy_demotions);
        self.lifetime_target_hits += u64::from(d.lifetime_target_hit);
        self.presence_active_s += u128::from(d.presence_active_s);
        self.presence_ambient_s += u128::from(d.presence_ambient_s);
        self.presence_away_s += u128::from(d.presence_away_s);
        self.presence_asleep_s += u128::from(d.presence_asleep_s);
        self.link_flaps += u128::from(d.link_flaps);
        self.link_down_us += u128::from(d.link_down_us);
        self.flap_lost_bytes += u128::from(d.flap_lost_bytes);
        self.crashes += u128::from(d.crashes);
        self.restarts += u128::from(d.restarts);
        self.retries += u128::from(d.retries);
        self.retries_exhausted += u128::from(d.retries_exhausted);
        self.fade_uj += i128::from(d.fade_uj);
        if d.offload_completed > 0 {
            self.offload_latency_s
                .observe(d.offload_latency_us as f64 / d.offload_completed as f64 / 1e6);
        }
        self.lifetime_h.observe(d.lifetime_h);
        self.avg_power_mw
            .observe(d.total_energy_uj as f64 / self.horizon.as_secs_f64() / 1_000.0);
        self.radio_activations.observe(d.radio_activations as f64);
        self.starved_s.observe(d.starved_s);
    }

    /// Exact merge of two partial summaries over the same horizon.
    pub fn merge(&mut self, other: &StreamSummary) {
        assert_eq!(self.horizon, other.horizon, "merging different horizons");
        self.devices += other.devices;
        self.total_energy_uj += other.total_energy_uj;
        self.peripheral_energy_uj += other.peripheral_energy_uj;
        self.quota_exhausted += other.quota_exhausted;
        self.bytes_blocked_sends += other.bytes_blocked_sends;
        self.devices_in_debt += other.devices_in_debt;
        self.forced_shutdowns += other.forced_shutdowns;
        self.offload_attempts += other.offload_attempts;
        self.offload_accepted += other.offload_accepted;
        self.offload_completed += other.offload_completed;
        self.offload_rejected += other.offload_rejected;
        self.offload_timed_out += other.offload_timed_out;
        self.offload_latency_us += other.offload_latency_us;
        self.offload_energy_uj += other.offload_energy_uj;
        self.policy_rerates += other.policy_rerates;
        self.policy_demotions += other.policy_demotions;
        self.lifetime_target_hits += other.lifetime_target_hits;
        self.presence_active_s += other.presence_active_s;
        self.presence_ambient_s += other.presence_ambient_s;
        self.presence_away_s += other.presence_away_s;
        self.presence_asleep_s += other.presence_asleep_s;
        self.link_flaps += other.link_flaps;
        self.link_down_us += other.link_down_us;
        self.flap_lost_bytes += other.flap_lost_bytes;
        self.crashes += other.crashes;
        self.restarts += other.restarts;
        self.retries += other.retries;
        self.retries_exhausted += other.retries_exhausted;
        self.fade_uj += other.fade_uj;
        self.lifetime_h.merge(&other.lifetime_h);
        self.avg_power_mw.merge(&other.avg_power_mw);
        self.radio_activations.merge(&other.radio_activations);
        self.starved_s.merge(&other.starved_s);
        self.offload_latency_s.merge(&other.offload_latency_s);
    }

    /// Total fleet energy in joules (exact integer total, descaled once).
    pub fn fleet_energy_j(&self) -> f64 {
        self.total_energy_uj as f64 / 1e6
    }

    /// Total reserve-gated peripheral energy in joules.
    pub fn peripheral_energy_j(&self) -> f64 {
        self.peripheral_energy_uj as f64 / 1e6
    }

    /// Devices whose §9 data plan ran out.
    pub fn quota_exhausted(&self) -> u64 {
        self.quota_exhausted
    }

    /// Σ sends the kernel held on byte quotas.
    pub fn bytes_blocked_sends(&self) -> u128 {
        self.bytes_blocked_sends
    }

    /// Devices holding at least one reserve in debt at the horizon.
    pub fn devices_in_debt(&self) -> u64 {
        self.devices_in_debt
    }

    /// Σ forced peripheral shutdowns.
    pub fn forced_shutdowns(&self) -> u128 {
        self.forced_shutdowns
    }

    /// Σ `offload` syscalls across the fleet.
    pub fn offload_attempts(&self) -> u128 {
        self.offload_attempts
    }

    /// Σ offloads completed by a backend response in time.
    pub fn offload_completed(&self) -> u128 {
        self.offload_completed
    }

    /// Σ offloads refused up front.
    pub fn offload_rejected(&self) -> u128 {
        self.offload_rejected
    }

    /// Σ offloads whose deadline fired before the response.
    pub fn offload_timed_out(&self) -> u128 {
        self.offload_timed_out
    }

    /// Joules per completed offload request (exact integer totals,
    /// descaled once; 0 when nothing completed).
    pub fn joules_per_request(&self) -> f64 {
        if self.offload_completed == 0 {
            0.0
        } else {
            self.offload_energy_uj as f64 / 1e6 / self.offload_completed as f64
        }
    }

    /// Σ tap/drive re-rates the policy engines applied.
    pub fn policy_rerates(&self) -> u128 {
        self.policy_rerates
    }

    /// Σ background-demotion edges.
    pub fn policy_demotions(&self) -> u128 {
        self.policy_demotions
    }

    /// Devices whose projected lifetime covered the policy's target.
    pub fn lifetime_target_hits(&self) -> u64 {
        self.lifetime_target_hits
    }

    /// Σ user-model seconds per presence state (Active, Ambient, Away,
    /// Asleep).
    pub fn presence_s(&self) -> [u128; 4] {
        [
            self.presence_active_s,
            self.presence_ambient_s,
            self.presence_away_s,
            self.presence_asleep_s,
        ]
    }

    /// Σ radio link flaps the fault injectors landed.
    pub fn link_flaps(&self) -> u128 {
        self.link_flaps
    }

    /// Σ exact link-down time across the fleet, µs.
    pub fn link_down_us(&self) -> u128 {
        self.link_down_us
    }

    /// Σ in-flight bytes lost to drop-semantics flaps.
    pub fn flap_lost_bytes(&self) -> u128 {
        self.flap_lost_bytes
    }

    /// Σ transient app kills the fault supervisors landed.
    pub fn crashes(&self) -> u128 {
        self.crashes
    }

    /// Σ program instances respawned after a crash.
    pub fn restarts(&self) -> u128 {
        self.restarts
    }

    /// Σ backoff retries the resilience layers scheduled.
    pub fn retries(&self) -> u128 {
        self.retries
    }

    /// Σ work items abandoned after the retry budget ran out.
    pub fn retries_exhausted(&self) -> u128 {
        self.retries_exhausted
    }

    /// Total battery capacity fade in joules (exact integer total,
    /// descaled once).
    pub fn fade_j(&self) -> f64 {
        self.fade_uj as f64 / 1e6
    }

    fn channels(&self) -> [(&'static str, &Channel); 5] {
        [
            ("lifetime_h", &self.lifetime_h),
            ("avg_power_mw", &self.avg_power_mw),
            ("radio_activations", &self.radio_activations),
            ("starved_s", &self.starved_s),
            ("offload_latency_s", &self.offload_latency_s),
        ]
    }

    fn write_text(&self, out: &mut String) {
        let _ = writeln!(out, "horizon_us {}", self.horizon.as_micros());
        let _ = writeln!(out, "observed {}", self.devices);
        let _ = writeln!(out, "total_energy_uj {}", self.total_energy_uj);
        let _ = writeln!(out, "peripheral_energy_uj {}", self.peripheral_energy_uj);
        let _ = writeln!(out, "quota_exhausted {}", self.quota_exhausted);
        let _ = writeln!(out, "bytes_blocked_sends {}", self.bytes_blocked_sends);
        let _ = writeln!(out, "devices_in_debt {}", self.devices_in_debt);
        let _ = writeln!(out, "forced_shutdowns {}", self.forced_shutdowns);
        let _ = writeln!(out, "offload_attempts {}", self.offload_attempts);
        let _ = writeln!(out, "offload_accepted {}", self.offload_accepted);
        let _ = writeln!(out, "offload_completed {}", self.offload_completed);
        let _ = writeln!(out, "offload_rejected {}", self.offload_rejected);
        let _ = writeln!(out, "offload_timed_out {}", self.offload_timed_out);
        let _ = writeln!(out, "offload_latency_us {}", self.offload_latency_us);
        let _ = writeln!(out, "offload_energy_uj {}", self.offload_energy_uj);
        let _ = writeln!(out, "policy_rerates {}", self.policy_rerates);
        let _ = writeln!(out, "policy_demotions {}", self.policy_demotions);
        let _ = writeln!(out, "lifetime_target_hits {}", self.lifetime_target_hits);
        let _ = writeln!(out, "presence_active_s {}", self.presence_active_s);
        let _ = writeln!(out, "presence_ambient_s {}", self.presence_ambient_s);
        let _ = writeln!(out, "presence_away_s {}", self.presence_away_s);
        let _ = writeln!(out, "presence_asleep_s {}", self.presence_asleep_s);
        let _ = writeln!(out, "link_flaps {}", self.link_flaps);
        let _ = writeln!(out, "link_down_us {}", self.link_down_us);
        let _ = writeln!(out, "flap_lost_bytes {}", self.flap_lost_bytes);
        let _ = writeln!(out, "crashes {}", self.crashes);
        let _ = writeln!(out, "restarts {}", self.restarts);
        let _ = writeln!(out, "retries {}", self.retries);
        let _ = writeln!(out, "retries_exhausted {}", self.retries_exhausted);
        let _ = writeln!(out, "fade_uj {}", self.fade_uj);
        for (name, ch) in self.channels() {
            ch.write_text(name, out);
        }
    }
}

/// A streamed fleet run: scenario identity plus the aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Scenario name.
    pub scenario: String,
    /// Fleet seed.
    pub seed: u64,
    /// Per-device horizon.
    pub horizon: SimDuration,
    /// The aggregate.
    pub summary: StreamSummary,
}

impl StreamReport {
    /// Deterministic JSON in the same shape and key order as
    /// [`crate::FleetReport::to_json`] (percentiles are the streaming
    /// estimates; totals and min/max/mean are exact).
    pub fn to_json(&self) -> String {
        let s = &self.summary;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"scenario\": {},", json_string(&self.scenario));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"devices\": {},", s.devices);
        let _ = writeln!(out, "  \"horizon_s\": {:.3},", self.horizon.as_secs_f64());
        let _ = writeln!(out, "  \"fleet_energy_j\": {:.6},", s.fleet_energy_j());
        let _ = writeln!(
            out,
            "  \"lifetime_h\": {},",
            summary_json(&s.lifetime_h.summary())
        );
        let _ = writeln!(
            out,
            "  \"avg_power_mw\": {},",
            summary_json(&s.avg_power_mw.summary())
        );
        let _ = writeln!(
            out,
            "  \"radio_activations\": {},",
            summary_json(&s.radio_activations.summary())
        );
        let _ = writeln!(
            out,
            "  \"starved_s\": {},",
            summary_json(&s.starved_s.summary())
        );
        let _ = writeln!(out, "  \"quota_exhausted\": {},", s.quota_exhausted);
        let _ = writeln!(out, "  \"bytes_blocked_sends\": {},", s.bytes_blocked_sends);
        let _ = writeln!(
            out,
            "  \"peripheral_energy_j\": {:.6},",
            s.peripheral_energy_uj as f64 / 1e6
        );
        let _ = writeln!(out, "  \"forced_shutdowns\": {},", s.forced_shutdowns);
        let _ = writeln!(out, "  \"offload_attempts\": {},", s.offload_attempts);
        let _ = writeln!(out, "  \"offload_accepted\": {},", s.offload_accepted);
        let _ = writeln!(out, "  \"offload_completed\": {},", s.offload_completed);
        let _ = writeln!(out, "  \"offload_rejected\": {},", s.offload_rejected);
        let _ = writeln!(out, "  \"offload_timed_out\": {},", s.offload_timed_out);
        let _ = writeln!(
            out,
            "  \"offload_latency_s\": {},",
            summary_json(&s.offload_latency_s.summary())
        );
        let _ = writeln!(
            out,
            "  \"joules_per_request\": {:.6},",
            s.joules_per_request()
        );
        let _ = writeln!(out, "  \"policy_rerates\": {},", s.policy_rerates);
        let _ = writeln!(out, "  \"policy_demotions\": {},", s.policy_demotions);
        let _ = writeln!(
            out,
            "  \"lifetime_target_hits\": {},",
            s.lifetime_target_hits
        );
        let _ = writeln!(
            out,
            "  \"presence_s\": [{}, {}, {}, {}],",
            s.presence_active_s, s.presence_ambient_s, s.presence_away_s, s.presence_asleep_s
        );
        let _ = writeln!(out, "  \"link_flaps\": {},", s.link_flaps);
        let _ = writeln!(out, "  \"link_down_us\": {},", s.link_down_us);
        let _ = writeln!(out, "  \"flap_lost_bytes\": {},", s.flap_lost_bytes);
        let _ = writeln!(out, "  \"crashes\": {},", s.crashes);
        let _ = writeln!(out, "  \"restarts\": {},", s.restarts);
        let _ = writeln!(out, "  \"retries\": {},", s.retries);
        let _ = writeln!(out, "  \"retries_exhausted\": {},", s.retries_exhausted);
        let _ = writeln!(out, "  \"fade_j\": {:.6},", s.fade_j());
        let _ = writeln!(out, "  \"devices_in_debt\": {}", s.devices_in_debt);
        out.push_str("}\n");
        out
    }

    /// The four channel histograms as one deterministic CSV
    /// (`metric,bin_lo,count`, all bins, fixed order).
    pub fn histograms_csv(&self) -> String {
        let mut out = String::from("metric,bin_lo,count\n");
        for (name, ch) in self.summary.channels() {
            for (lo, c) in ch.bins() {
                let _ = writeln!(out, "{name},{lo:.6},{c}");
            }
        }
        out
    }
}

/// A paused streamed run: everything needed to finish it later in a fresh
/// process, serialised by [`FleetCheckpoint::to_text`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCheckpoint {
    /// Scenario name (identity check on resume).
    pub scenario: String,
    /// Fleet seed (identity check on resume).
    pub seed: u64,
    /// Total fleet size.
    pub fleet_devices: u32,
    /// Per-device horizon.
    pub horizon: SimDuration,
    /// First device id not yet simulated. Because device `i` draws
    /// everything from `root.split(i)` (a pure function of seed and id),
    /// this cursor *is* the per-device RNG stream position.
    pub next_device: u64,
    /// Aggregate over devices `0..next_device`.
    pub summary: StreamSummary,
}

/// The checkpoint format this build reads and writes. v1 predates the
/// offload economy's counters, v2 the policy engine's, v3 the fault
/// layer's; a summary restored through an old layout would silently zero
/// the missing accumulators, so old versions are rejected outright rather
/// than migrated. v4 also appends a `checksum` line (FNV-1a 64 over every
/// preceding byte) so truncated or bit-flipped files are rejected by name.
pub const CHECKPOINT_FORMAT: &str = "cinder-fleet-checkpoint v4";

/// FNV-1a 64-bit over the checkpoint body: cheap, dependency-free, and
/// stable across platforms — integrity against truncation and bit rot,
/// not an adversary.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FleetCheckpoint {
    /// Deterministic text serialisation. Floats travel as `f64::to_bits`
    /// hex, so `from_text(to_text(cp)) == cp` bit-for-bit. The
    /// second-to-last line checksums everything above it.
    pub fn to_text(&self) -> String {
        let mut out = String::from(CHECKPOINT_FORMAT);
        out.push('\n');
        let _ = writeln!(out, "scenario {}", json_string(&self.scenario));
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "fleet_devices {}", self.fleet_devices);
        let _ = writeln!(out, "next_device {}", self.next_device);
        self.summary.write_text(&mut out);
        let sum = fnv1a_64(out.as_bytes());
        let _ = writeln!(out, "checksum {sum:016x}");
        out.push_str("end\n");
        out
    }

    /// Parses [`FleetCheckpoint::to_text`] output. A checkpoint written by
    /// an older format version (v1–v3) is rejected with an error naming
    /// both versions — resuming it through the current layout would
    /// silently drop accumulators — and one whose checksum line is missing
    /// or does not match its body (truncation, bit flips) is rejected
    /// before any field is trusted.
    pub fn from_text(text: &str) -> Result<FleetCheckpoint, String> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        if header != CHECKPOINT_FORMAT {
            return Err(match header.strip_prefix("cinder-fleet-checkpoint ") {
                Some(version) => format!(
                    "checkpoint format {version} is not supported by this build \
                     (expected {CHECKPOINT_FORMAT}); re-run the checkpoint with a \
                     matching build instead of resuming it"
                ),
                None => format!("not a cinder-fleet checkpoint (first line `{header}`)"),
            });
        }
        // Verify integrity before trusting any field. The scenario name is
        // JSON-escaped onto a single line, so the last `\nchecksum ` in the
        // file is always the real checksum line.
        let body_end = text
            .rfind("\nchecksum ")
            .ok_or("checkpoint is missing its checksum line (truncated?)")?
            + 1;
        let stored_hex = text[body_end..]
            .lines()
            .next()
            .and_then(|line| line.strip_prefix("checksum "))
            .unwrap_or("");
        let stored = u64::from_str_radix(stored_hex, 16)
            .map_err(|_| format!("bad checksum `{stored_hex}`"))?;
        let computed = fnv1a_64(&text.as_bytes()[..body_end]);
        if stored != computed {
            return Err(format!(
                "checkpoint checksum mismatch: stored {stored:016x}, computed \
                 {computed:016x} — the file is truncated or corrupted"
            ));
        }
        let mut field = |key: &str| -> Result<String, String> {
            let line = lines.next().ok_or_else(|| format!("missing {key}"))?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| format!("expected `{key} …`, got `{line}`"))
        };
        let scenario = parse_json_string(&field("scenario")?)?;
        let seed = parse_num::<u64>(&field("seed")?)?;
        let fleet_devices = parse_num::<u32>(&field("fleet_devices")?)?;
        let next_device = parse_num::<u64>(&field("next_device")?)?;
        let horizon = SimDuration::from_micros(parse_num::<u64>(&field("horizon_us")?)?);

        let mut summary = StreamSummary::new(horizon);
        summary.devices = parse_num(&field("observed")?)?;
        summary.total_energy_uj = parse_num(&field("total_energy_uj")?)?;
        summary.peripheral_energy_uj = parse_num(&field("peripheral_energy_uj")?)?;
        summary.quota_exhausted = parse_num(&field("quota_exhausted")?)?;
        summary.bytes_blocked_sends = parse_num(&field("bytes_blocked_sends")?)?;
        summary.devices_in_debt = parse_num(&field("devices_in_debt")?)?;
        summary.forced_shutdowns = parse_num(&field("forced_shutdowns")?)?;
        summary.offload_attempts = parse_num(&field("offload_attempts")?)?;
        summary.offload_accepted = parse_num(&field("offload_accepted")?)?;
        summary.offload_completed = parse_num(&field("offload_completed")?)?;
        summary.offload_rejected = parse_num(&field("offload_rejected")?)?;
        summary.offload_timed_out = parse_num(&field("offload_timed_out")?)?;
        summary.offload_latency_us = parse_num(&field("offload_latency_us")?)?;
        summary.offload_energy_uj = parse_num(&field("offload_energy_uj")?)?;
        summary.policy_rerates = parse_num(&field("policy_rerates")?)?;
        summary.policy_demotions = parse_num(&field("policy_demotions")?)?;
        summary.lifetime_target_hits = parse_num(&field("lifetime_target_hits")?)?;
        summary.presence_active_s = parse_num(&field("presence_active_s")?)?;
        summary.presence_ambient_s = parse_num(&field("presence_ambient_s")?)?;
        summary.presence_away_s = parse_num(&field("presence_away_s")?)?;
        summary.presence_asleep_s = parse_num(&field("presence_asleep_s")?)?;
        summary.link_flaps = parse_num(&field("link_flaps")?)?;
        summary.link_down_us = parse_num(&field("link_down_us")?)?;
        summary.flap_lost_bytes = parse_num(&field("flap_lost_bytes")?)?;
        summary.crashes = parse_num(&field("crashes")?)?;
        summary.restarts = parse_num(&field("restarts")?)?;
        summary.retries = parse_num(&field("retries")?)?;
        summary.retries_exhausted = parse_num(&field("retries_exhausted")?)?;
        summary.fade_uj = parse_num(&field("fade_uj")?)?;
        for name in [
            "lifetime_h",
            "avg_power_mw",
            "radio_activations",
            "starved_s",
            "offload_latency_s",
        ] {
            let header = field("channel")?;
            if header != name {
                return Err(format!("expected channel {name}, got {header}"));
            }
            let cfg = field("cfg")?;
            let [scale, lo, hi] = parse_bits_row::<3>(&cfg)?;
            let mut ch = Channel::new(scale, lo, hi);
            let counts_line = {
                let count = field("count")?;
                let mut it = count.split(' ');
                ch.count = parse_num(it.next().unwrap_or(""))?;
                ch.nonfinite = parse_num(it.next().unwrap_or(""))?;
                ch.sum_fp = parse_num(&field("sum_fp")?)?;
                let [min, max] = parse_bits_row::<2>(&field("minmax")?)?;
                ch.min = min;
                ch.max = max;
                field("counts")?
            };
            let counts: Result<Vec<u64>, String> = counts_line.split(' ').map(parse_num).collect();
            ch.counts = counts?;
            if ch.counts.len() != STREAM_BINS {
                return Err(format!("expected {STREAM_BINS} bins for {name}"));
            }
            match name {
                "lifetime_h" => summary.lifetime_h = ch,
                "avg_power_mw" => summary.avg_power_mw = ch,
                "radio_activations" => summary.radio_activations = ch,
                "starved_s" => summary.starved_s = ch,
                _ => summary.offload_latency_s = ch,
            }
        }
        let _ = field("checksum")?;
        if lines.next() != Some("end") {
            return Err("missing end marker".into());
        }
        Ok(FleetCheckpoint {
            scenario,
            seed,
            fleet_devices,
            horizon,
            next_device,
            summary,
        })
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number `{s}`"))
}

/// Parses `N` space-separated `f64::to_bits` hex words.
fn parse_bits_row<const N: usize>(s: &str) -> Result<[f64; N], String> {
    let mut out = [0.0; N];
    let mut it = s.split(' ');
    for slot in &mut out {
        let word = it.next().ok_or_else(|| format!("short float row `{s}`"))?;
        let bits = u64::from_str_radix(word, 16).map_err(|_| format!("bad float bits `{word}`"))?;
        *slot = f64::from_bits(bits);
    }
    Ok(out)
}

/// Parses the `json_string` rendering back (enough for names we emit:
/// quoted, with `\"`/`\\`/`\n`/`\t` escapes).
fn parse_json_string(s: &str) -> Result<String, String> {
    let inner = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("bad string `{s}`"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(c @ ('"' | '\\')) => out.push(c),
            other => return Err(format!("bad escape `\\{other:?}`")),
        }
    }
    Ok(out)
}

/// Streams devices `[from, to)` of `scenario` across `threads` workers and
/// returns the merged summary. Memory is O(workers × bins): specs are
/// derived per device (`spec_for`), reports are folded and dropped.
pub fn stream_fleet_span(scenario: &Scenario, from: u64, to: u64, threads: usize) -> StreamSummary {
    let to = to.min(scenario.devices as u64);
    let from = from.min(to);
    let span = (to - from) as usize;
    let threads = threads.max(1).min(span.max(1));
    let cursor = AtomicUsize::new(0);
    let merged = Mutex::new(StreamSummary::new(scenario.horizon));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = DeviceScratch::default();
                let mut local = StreamSummary::new(scenario.horizon);
                loop {
                    let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= span {
                        break;
                    }
                    let end = (start + CHUNK).min(span);
                    for id in from + start as u64..from + end as u64 {
                        let spec = scenario.spec_for(id);
                        let report = crate::device::simulate_device_with(&spec, &mut scratch);
                        local.observe(&report);
                    }
                }
                // Merge order across workers is arbitrary; every
                // accumulator is exactly commutative, so the result is
                // byte-identical regardless.
                merged
                    .lock()
                    .expect("no worker panics while holding it")
                    .merge(&local);
            });
        }
    });

    merged.into_inner().expect("workers joined")
}

/// Streams the whole fleet on `threads` workers.
pub fn stream_fleet_with(scenario: &Scenario, threads: usize) -> StreamReport {
    StreamReport {
        scenario: scenario.name.clone(),
        seed: scenario.seed,
        horizon: scenario.horizon,
        summary: stream_fleet_span(scenario, 0, scenario.devices as u64, threads),
    }
}

/// Streams the whole fleet on all available cores.
pub fn stream_fleet(scenario: &Scenario) -> StreamReport {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    stream_fleet_with(scenario, threads)
}

/// Streams devices `0..upto` and packages the paused run as a checkpoint.
pub fn checkpoint_fleet(scenario: &Scenario, upto: u64, threads: usize) -> FleetCheckpoint {
    let upto = upto.min(scenario.devices as u64);
    FleetCheckpoint {
        scenario: scenario.name.clone(),
        seed: scenario.seed,
        fleet_devices: scenario.devices,
        horizon: scenario.horizon,
        next_device: upto,
        summary: stream_fleet_span(scenario, 0, upto, threads),
    }
}

/// Finishes a checkpointed run: simulates the remaining devices and merges
/// them into the checkpoint's summary. Errs if `checkpoint` was taken
/// against a different scenario identity.
pub fn resume_fleet(
    checkpoint: &FleetCheckpoint,
    scenario: &Scenario,
    threads: usize,
) -> Result<StreamReport, String> {
    let identity = (
        checkpoint.scenario == scenario.name,
        checkpoint.seed == scenario.seed,
        checkpoint.fleet_devices == scenario.devices,
        checkpoint.horizon == scenario.horizon,
    );
    if identity != (true, true, true, true) {
        return Err(format!(
            "checkpoint is for {}/seed {}/{} devices/{} s, not {}/seed {}/{} devices/{} s",
            checkpoint.scenario,
            checkpoint.seed,
            checkpoint.fleet_devices,
            checkpoint.horizon.as_secs_f64(),
            scenario.name,
            scenario.seed,
            scenario.devices,
            scenario.horizon.as_secs_f64(),
        ));
    }
    let mut summary = checkpoint.summary.clone();
    summary.merge(&stream_fleet_span(
        scenario,
        checkpoint.next_device,
        scenario.devices as u64,
        threads,
    ));
    Ok(StreamReport {
        scenario: scenario.name.clone(),
        seed: scenario.seed,
        horizon: scenario.horizon,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_channel(n: u64) -> Channel {
        // n values spread uniformly over [0, 100).
        let mut ch = Channel::new(1e6, 0.0, 100.0);
        for i in 0..n {
            ch.observe(i as f64 * 100.0 / n as f64);
        }
        ch
    }

    #[test]
    fn channel_quantiles_bracket_and_order() {
        let ch = uniform_channel(1_000);
        let q = |p: f64| ch.quantile(p).unwrap();
        assert_eq!(q(0.0), 0.0);
        assert_eq!(q(100.0), ch.max);
        assert!(q(50.0) < q(90.0) && q(90.0) < q(99.0));
        // One-bin resolution over [0,100) with 256 bins.
        assert!((q(50.0) - 50.0).abs() < 1.0, "{}", q(50.0));
        assert!((q(90.0) - 90.0).abs() < 1.0, "{}", q(90.0));
    }

    #[test]
    fn channel_empty_and_singleton() {
        let empty = Channel::new(1.0, 0.0, 10.0);
        assert_eq!(empty.quantile(50.0), None);
        assert_eq!(empty.summary(), None);
        let mut one = Channel::new(1.0, 0.0, 10.0);
        one.observe(7.0);
        assert_eq!(one.quantile(0.0), Some(7.0));
        assert_eq!(one.quantile(50.0), Some(7.0));
        assert_eq!(one.quantile(100.0), Some(7.0));
        assert_eq!(one.mean(), Some(7.0));
    }

    #[test]
    fn channel_clamps_out_of_range_and_skips_nonfinite() {
        let mut ch = Channel::new(1e6, 0.0, 10.0);
        ch.observe(-5.0);
        ch.observe(50.0);
        ch.observe(f64::INFINITY);
        ch.observe(f64::NAN);
        assert_eq!(ch.count, 2);
        assert_eq!(ch.nonfinite, 2);
        assert_eq!(ch.min, -5.0);
        assert_eq!(ch.max, 50.0);
        assert_eq!(ch.counts[0], 1);
        assert_eq!(ch.counts[STREAM_BINS - 1], 1);
        // Quantiles stay inside the exact envelope despite clamped bins.
        let q = ch.quantile(50.0).unwrap();
        assert!((-5.0..=50.0).contains(&q));
    }

    #[test]
    fn merge_is_exactly_order_independent() {
        let full = uniform_channel(999);
        // Re-observe the same values split across three parts, merged in a
        // different order than observed.
        let mut parts = [
            Channel::new(1e6, 0.0, 100.0),
            Channel::new(1e6, 0.0, 100.0),
            Channel::new(1e6, 0.0, 100.0),
        ];
        for i in 0..999u64 {
            parts[(i % 3) as usize].observe(i as f64 * 100.0 / 999.0);
        }
        let mut merged = parts[2].clone();
        merged.merge(&parts[0]);
        merged.merge(&parts[1]);
        assert_eq!(merged, full);
    }

    #[test]
    fn checkpoint_text_round_trips_bit_exactly() {
        let scenario = Scenario {
            horizon: SimDuration::from_secs(120),
            ..Scenario::mixed("ckpt \"quoted\"", 7, 6)
        };
        let cp = checkpoint_fleet(&scenario, 4, 2);
        let text = cp.to_text();
        let back = FleetCheckpoint::from_text(&text).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(FleetCheckpoint::from_text("").is_err());
        // Old format versions are named in the error, not silently
        // migrated (their layouts are missing accumulators).
        for old in ["v1", "v2", "v3"] {
            let err = FleetCheckpoint::from_text(&format!("cinder-fleet-checkpoint {old}\nnope"))
                .unwrap_err();
            assert!(err.contains(old) && err.contains("v4"), "{err}");
        }
        assert!(FleetCheckpoint::from_text("cinder-fleet-checkpoint v4\nnope").is_err());
    }

    #[test]
    fn from_text_rejects_corruption() {
        let scenario = Scenario {
            horizon: SimDuration::from_secs(60),
            ..Scenario::mixed("integrity", 3, 4)
        };
        let text = checkpoint_fleet(&scenario, 2, 1).to_text();

        // A single flipped bit anywhere in the body breaks the checksum.
        let target = "seed 3";
        let flipped = text.replacen(target, "seed 7", 1);
        assert_ne!(flipped, text);
        let err = FleetCheckpoint::from_text(&flipped).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");

        // A flipped digit inside the checksum line itself is also caught.
        let sum_at = text.rfind("checksum ").unwrap() + "checksum ".len();
        let digit = text.as_bytes()[sum_at] as char;
        let swap = if digit == '0' { '1' } else { '0' };
        let mut bad_sum = text.clone();
        bad_sum.replace_range(sum_at..sum_at + 1, &swap.to_string());
        let err = FleetCheckpoint::from_text(&bad_sum).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");

        // Truncation loses the checksum line entirely.
        let truncated = &text[..text.rfind("checksum ").unwrap()];
        let err = FleetCheckpoint::from_text(truncated).unwrap_err();
        assert!(err.contains("missing its checksum"), "{err}");
    }

    #[test]
    fn resume_rejects_identity_mismatch() {
        let a = Scenario {
            horizon: SimDuration::from_secs(60),
            ..Scenario::mixed("a", 1, 4)
        };
        let b = Scenario {
            horizon: SimDuration::from_secs(60),
            ..Scenario::mixed("b", 1, 4)
        };
        let cp = checkpoint_fleet(&a, 2, 1);
        assert!(resume_fleet(&cp, &b, 1).is_err());
        assert!(resume_fleet(&cp, &a, 1).is_ok());
    }
}
