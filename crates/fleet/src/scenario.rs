//! The population model: what a fleet of devices looks like.
//!
//! A [`Scenario`] describes a device population as a *mixture* of the
//! paper's §5/§6 application workloads plus per-device parameter jitter.
//! [`Scenario::specs`] expands it into one [`DeviceSpec`] per device:
//! workloads are assigned round-robin by mixture weight (so the realised
//! mixture is exact, not sampled), while battery capacity, tap-rate scale,
//! poll intervals, and the kernel seed are drawn from the device's own
//! [`SimRng::split`] stream — adding a device never perturbs its siblings.

use cinder_apps::{
    BrowserWorkload, GalleryWorkload, NavigatorWorkload, OffloaderWorkload, PollersWorkload,
    ScreenOnWorkload, SpinnerWorkload, WorkloadProgram,
};
use cinder_faults::FaultConfig;
use cinder_offload::OffloadProfile;
use cinder_policy::{PolicyConfig, PolicyVariant};
use cinder_sim::{Energy, SimDuration, SimRng};

/// Which application study a device runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// §6.4's mail + RSS pollers. `coop` selects netd pooling (Fig 13b)
    /// versus the uncooperative baseline (Fig 13a).
    Pollers {
        /// Use the cooperative netd stack.
        coop: bool,
    },
    /// §5.2's browser with an isolated, rate-limited plugin and ad-block
    /// extension (the Fig 6b topology, with backward reclamation).
    Browser,
    /// §5.3/§6.2's energy-aware picture gallery on the laptop platform.
    /// `adaptive` selects quality scaling (Fig 11) versus stalling (Fig 10).
    Gallery {
        /// Scale image quality to the reserve level.
        adaptive: bool,
    },
    /// A background CPU hog throttled behind a tap (the Fig 9 shape).
    Spinner,
    /// Duty-cycled GPS fixes under a reserve, the fix interval stretching
    /// as the reserve drops (the peripheral layer's sensor workload).
    Navigator,
    /// Backlit browsing sessions under a reserve, dimming on a sagging
    /// level and forced dark on an empty one.
    ScreenOn,
    /// The cloud-offload client: periodic work items priced local-vs-remote
    /// by the break-even policy against the scenario's shared backend.
    Offloader,
}

impl Workload {
    /// Every workload, in tag order — the domain [`Workload::from_tag`]
    /// inverts over.
    pub const ALL: [Workload; 9] = [
        Workload::Pollers { coop: true },
        Workload::Pollers { coop: false },
        Workload::Browser,
        Workload::Gallery { adaptive: true },
        Workload::Gallery { adaptive: false },
        Workload::Spinner,
        Workload::Navigator,
        Workload::ScreenOn,
        Workload::Offloader,
    ];

    /// A short stable tag for CSV columns and logs.
    pub fn tag(self) -> &'static str {
        match self {
            Workload::Pollers { coop: true } => "pollers-coop",
            Workload::Pollers { coop: false } => "pollers-uncoop",
            Workload::Browser => "browser",
            Workload::Gallery { adaptive: true } => "gallery-adaptive",
            Workload::Gallery { adaptive: false } => "gallery-fixed",
            Workload::Spinner => "spinner",
            Workload::Navigator => "navigator",
            Workload::ScreenOn => "screen-on",
            Workload::Offloader => "offloader",
        }
    }

    /// The exact inverse of [`Workload::tag`], for CSV/tooling round trips:
    /// `Workload::from_tag(w.tag()) == Some(w)` for every workload, and
    /// `None` for anything else.
    pub fn from_tag(tag: &str) -> Option<Workload> {
        match tag {
            "pollers-coop" => Some(Workload::Pollers { coop: true }),
            "pollers-uncoop" => Some(Workload::Pollers { coop: false }),
            "browser" => Some(Workload::Browser),
            "gallery-adaptive" => Some(Workload::Gallery { adaptive: true }),
            "gallery-fixed" => Some(Workload::Gallery { adaptive: false }),
            "spinner" => Some(Workload::Spinner),
            "navigator" => Some(Workload::Navigator),
            "screen-on" => Some(Workload::ScreenOn),
            "offloader" => Some(Workload::Offloader),
            _ => None,
        }
    }

    /// Resolves the tag to its [`WorkloadProgram`] — the seam the device
    /// driver installs through.
    pub fn program(self) -> Box<dyn WorkloadProgram> {
        match self {
            Workload::Pollers { coop } => Box::new(PollersWorkload { coop }),
            Workload::Browser => Box::new(BrowserWorkload),
            Workload::Gallery { adaptive } => Box::new(GalleryWorkload { adaptive }),
            Workload::Spinner => Box::new(SpinnerWorkload),
            Workload::Navigator => Box::new(NavigatorWorkload),
            Workload::ScreenOn => Box::new(ScreenOnWorkload),
            Workload::Offloader => Box::new(OffloaderWorkload),
        }
    }
}

/// A §9 data plan: the device's kernel graph carries a
/// [`cinder_core::ResourceKind::NetworkBytes`] root pool whose plan reserve
/// gates the pollers' sends **online** — transmitted bytes debit the plan
/// at the radio, received bytes bill on delivery, and a send the plan
/// cannot cover blocks in the kernel until it can (or forever, if the plan
/// is spent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataPlan {
    /// Plan size in bytes (the issue's study: 5 MB).
    pub bytes: u64,
}

/// A device population to simulate.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (report/file prefix).
    pub name: String,
    /// The fleet seed: fixes every device's parameters and kernel stream.
    pub seed: u64,
    /// Number of devices.
    pub devices: u32,
    /// Per-device simulation horizon.
    pub horizon: SimDuration,
    /// Workload mixture as `(workload, weight)`; assignment is round-robin
    /// by weight so the realised mixture is exact.
    pub mix: Vec<(Workload, u32)>,
    /// Battery capacity range `[lo, hi)`; each device draws uniformly.
    pub battery: (Energy, Energy),
    /// Per-device tap-rate jitter: rates are scaled by a factor drawn
    /// uniformly from `1 ± jitter_ppm/1e6`.
    pub jitter_ppm: u64,
    /// Scheduler quantum for fleet devices. Fleet studies default to
    /// 100 ms — ten times the single-device experiments' 10 ms — trading
    /// accounting granularity for throughput at population scale.
    pub quantum: SimDuration,
    /// Optional §9 data-plan quota carried by poller devices.
    pub data_plan: Option<DataPlan>,
    /// Shared-backend offload economy, if the scenario runs one. Every
    /// offloader device rebuilds the identical backend trace from this
    /// profile and the horizon — the backend is configuration, not
    /// runtime state, which is what keeps offload-heavy fleets
    /// byte-identical for any worker count and lets checkpoints skip
    /// backend serialisation entirely.
    pub offload: Option<OffloadProfile>,
    /// The policy engine every device runs, if the scenario runs one.
    /// Plain copyable configuration: the variant, its decision tick, and
    /// the lifetime target. `Some` with [`PolicyVariant::None`] still
    /// generates presence traces and telemetry (the head-to-head
    /// baseline); `None` skips the policy layer entirely, leaving the
    /// device loop byte-identical to a policy-free build.
    pub policy: Option<PolicyConfig>,
    /// Fault-injection plan, if the scenario runs one. Plain copyable
    /// configuration: per-device flap/crash/aging streams plus the
    /// fleet-shared outage spec. `None` skips the fault layer entirely,
    /// leaving the device loop byte-identical to a fault-free build.
    pub faults: Option<FaultConfig>,
}

/// One device, fully specified: plain data, cheap to ship to a worker
/// thread.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Device id (index in the fleet, stable across thread counts).
    pub id: u64,
    /// The device kernel's RNG seed.
    pub seed: u64,
    /// Assigned workload.
    pub workload: Workload,
    /// Battery capacity.
    pub battery: Energy,
    /// Tap-rate scale in ppm (1_000_000 = nominal).
    pub rate_scale_ppm: u64,
    /// Poll-interval scale in ppm (pollers only; staggers radio episodes
    /// across the fleet).
    pub interval_scale_ppm: u64,
    /// Simulation horizon.
    pub horizon: SimDuration,
    /// Scheduler quantum.
    pub quantum: SimDuration,
    /// Data plan, if the scenario carries one.
    pub data_plan: Option<DataPlan>,
    /// Offload economy, if the scenario carries one.
    pub offload: Option<OffloadProfile>,
    /// Enable the kernel's frozen fast-forward
    /// ([`cinder_kernel::KernelConfig::fast_forward`]): bit-exact
    /// closed-form advance through drained steady states. Fleet scenarios
    /// default to `true`; the differential tests flip it off to prove the
    /// reports identical either way.
    pub fast_forward: bool,
    /// Policy engine configuration, if the scenario carries one. Plain
    /// data copied off the scenario *after* the device's RNG draws —
    /// enabling a policy never perturbs battery/jitter/seed assignment.
    pub policy: Option<PolicyConfig>,
    /// Fault-injection configuration, if the scenario carries one. Copied
    /// off the scenario *after* the RNG draws, and the fault plan itself
    /// derives from a dedicated tagged child stream — enabling faults
    /// never perturbs battery/jitter/seed assignment.
    pub faults: Option<FaultConfig>,
}

impl Scenario {
    /// The default mixed-population study: the §5/§6 workloads in rough
    /// proportion to how often phones run them — mostly background pollers,
    /// some interactive browsing and gallery use, a few runaway hogs.
    pub fn mixed(name: &str, seed: u64, devices: u32) -> Scenario {
        Scenario {
            name: name.to_string(),
            seed,
            devices,
            horizon: SimDuration::from_secs(3_600),
            mix: vec![
                (Workload::Pollers { coop: true }, 4),
                (Workload::Pollers { coop: false }, 2),
                (Workload::Browser, 2),
                (Workload::Gallery { adaptive: true }, 1),
                (Workload::Spinner, 1),
            ],
            battery: (Energy::from_joules(10_000), Energy::from_joules(20_000)),
            jitter_ppm: 100_000, // ±10 %
            quantum: SimDuration::from_millis(100),
            data_plan: None,
            offload: None,
            policy: None,
            faults: None,
        }
    }

    /// Every workload tag in one population — the paper's §5/§6 studies
    /// plus the peripheral workloads — for mixture-wide differential and
    /// coverage tests.
    pub fn all_workloads(name: &str, seed: u64, devices: u32) -> Scenario {
        Scenario {
            mix: vec![
                (Workload::Pollers { coop: true }, 2),
                (Workload::Pollers { coop: false }, 1),
                (Workload::Browser, 1),
                (Workload::Gallery { adaptive: true }, 1),
                (Workload::Gallery { adaptive: false }, 1),
                (Workload::Spinner, 1),
                (Workload::Navigator, 2),
                (Workload::ScreenOn, 1),
                (Workload::Offloader, 1),
            ],
            offload: Some(OffloadProfile::default()),
            ..Scenario::mixed(name, seed, devices)
        }
    }

    /// The offload-economy study: a fleet that is mostly cloud-offload
    /// clients hammering one shared backend of `capacity` servers, with a
    /// few cooperative pollers for background radio traffic. `fig_offload`
    /// sweeps `capacity` to expose the saturation feedback loop.
    pub fn offload_heavy(name: &str, seed: u64, devices: u32, capacity: u32) -> Scenario {
        Scenario {
            mix: vec![
                (Workload::Offloader, 8),
                (Workload::Pollers { coop: true }, 2),
            ],
            offload: Some(OffloadProfile {
                capacity,
                ..OffloadProfile::default()
            }),
            ..Scenario::mixed(name, seed, devices)
        }
    }

    /// A peripheral-heavy population: mostly navigators and screen-on
    /// browsers, a few background pollers — the fleet-scale bench's
    /// stress case for the reserve-gated peripheral layer.
    pub fn peripheral_heavy(name: &str, seed: u64, devices: u32) -> Scenario {
        Scenario {
            mix: vec![
                (Workload::Navigator, 5),
                (Workload::ScreenOn, 4),
                (Workload::Pollers { coop: true }, 1),
            ],
            ..Scenario::mixed(name, seed, devices)
        }
    }

    /// The steady-heavy population for the fast-forward study: batteries
    /// two orders of magnitude under the mixed study's, against a
    /// day-long horizon. Taps drain the graph battery inside the first
    /// hour or two, after which the device sits in a frozen steady state
    /// — pollers blocked in netd's pool, the spinner Ready but unfundable
    /// — for the rest of the day. This is the regime where the kernel's
    /// frozen fast-forward turns the tail into O(1) per epoch instead of
    /// ten quanta per second. (The uncooperative pollers are deliberately
    /// absent: their radio energy is unbilled, so their graph never
    /// freezes and they would only measure live-phase cost.)
    pub fn steady_heavy(name: &str, seed: u64, devices: u32) -> Scenario {
        Scenario {
            horizon: SimDuration::from_secs(24 * 3_600),
            mix: vec![
                (Workload::Pollers { coop: true }, 5),
                (Workload::Spinner, 3),
            ],
            battery: (Energy::from_joules(100), Energy::from_joules(300)),
            ..Scenario::mixed(name, seed, devices)
        }
    }

    /// The §9 data-plan study: an all-poller fleet where every device
    /// carries a byte-quota reserve (default 5 MB, the issue's figure).
    pub fn data_plan(name: &str, seed: u64, devices: u32, plan_bytes: u64) -> Scenario {
        Scenario {
            mix: vec![
                (Workload::Pollers { coop: true }, 1),
                (Workload::Pollers { coop: false }, 1),
            ],
            data_plan: Some(DataPlan { bytes: plan_bytes }),
            ..Scenario::mixed(name, seed, devices)
        }
    }

    /// The user-aware policy study: screen-heavy interactive devices with
    /// batteries sized *under* the mixture's nominal hourly appetite, so a
    /// device that burns at full brightness all hour misses the lifetime
    /// target. The default policy is the user-aware engine with the target
    /// at the horizon ("still alive at the end of the hour"); `fig-policy`
    /// swaps the variant to run the same user population under
    /// None / Static / UserAware head-to-head.
    pub fn policy_heavy(name: &str, seed: u64, devices: u32) -> Scenario {
        Scenario {
            mix: vec![
                (Workload::ScreenOn, 6),
                (Workload::Navigator, 1),
                (Workload::Pollers { coop: true }, 2),
                (Workload::Spinner, 1),
            ],
            battery: (Energy::from_joules(2_850), Energy::from_joules(2_960)),
            policy: Some(PolicyConfig::new(
                PolicyVariant::UserAware,
                SimDuration::from_secs(3_600),
            )),
            ..Scenario::mixed(name, seed, devices)
        }
    }

    /// The fault-injection study: offloaders and cooperative pollers under
    /// the heavy fault plan — radio flaps with sink semantics, fleet-shared
    /// backend outage windows, battery aging, transient app crashes — with
    /// the user-aware policy re-planning against the *effective* (faded,
    /// sagging) capacity and bounded retry/backoff on every client.
    /// `fig-faults` sweeps the plan's intensity over this population.
    pub fn fault_heavy(name: &str, seed: u64, devices: u32) -> Scenario {
        Scenario {
            mix: vec![
                (Workload::Offloader, 4),
                (Workload::Pollers { coop: true }, 4),
                (Workload::Spinner, 2),
            ],
            offload: Some(OffloadProfile::default()),
            policy: Some(PolicyConfig::new(
                PolicyVariant::UserAware,
                SimDuration::from_secs(3_600),
            )),
            faults: Some(FaultConfig::heavy(seed)),
            ..Scenario::mixed(name, seed, devices)
        }
    }

    /// The plan-exhausted-mid-hour study, expressible only with in-kernel
    /// enforcement: the plan is sized to roughly half the poller pair's
    /// hourly appetite (~780 KB/h at nominal jitter), so devices run dry
    /// partway through the hour and their remaining sends block in the
    /// kernel — polls stop completing and the radio goes quiet, instead of
    /// an offline replay merely noting the overdraft afterwards.
    pub fn plan_exhausted_mid_hour(name: &str, seed: u64, devices: u32) -> Scenario {
        Scenario::data_plan(name, seed, devices, 380_000)
    }

    /// Expands one device of the scenario: the spec is a pure function of
    /// `(self, id)` — its jitter draws come only from the fleet seed's
    /// [`SimRng::split`] stream for this id, so device `i` is identical
    /// whether the fleet holds ten devices or a million, and whether its
    /// siblings were expanded first. This is the seam the streaming
    /// executor iterates over instead of materialising a spec vector.
    ///
    /// # Panics
    ///
    /// Panics if the mixture is empty or all weights are zero.
    pub fn spec_for(&self, id: u64) -> DeviceSpec {
        let total_weight: u32 = self.mix.iter().map(|&(_, w)| w).sum();
        assert!(
            total_weight > 0,
            "scenario '{}' has an empty workload mixture",
            self.name
        );
        // Round-robin through the weighted mixture: slot k of each
        // `total_weight`-sized block belongs to the workload whose
        // cumulative weight first exceeds k.
        let slot = (id % total_weight as u64) as u32;
        let mut acc = 0;
        let workload = self
            .mix
            .iter()
            .find(|&&(_, w)| {
                acc += w;
                slot < acc
            })
            .expect("slot < total weight")
            .0;
        // All device-local draws come from the device's own stream.
        let mut rng = SimRng::seed_from_u64(self.seed).split(id);
        let battery = if self.battery.0 < self.battery.1 {
            Energy::from_microjoules(rng.uniform_u64(
                self.battery.0.as_microjoules() as u64,
                self.battery.1.as_microjoules() as u64,
            ) as i64)
        } else {
            self.battery.0
        };
        let scale = |rng: &mut SimRng| {
            if self.jitter_ppm == 0 {
                1_000_000
            } else {
                rng.uniform_u64(1_000_000 - self.jitter_ppm, 1_000_000 + self.jitter_ppm + 1)
            }
        };
        let rate_scale_ppm = scale(&mut rng);
        let interval_scale_ppm = scale(&mut rng);
        DeviceSpec {
            id,
            seed: rng.uniform_u64(0, u64::MAX),
            workload,
            battery,
            rate_scale_ppm,
            interval_scale_ppm,
            horizon: self.horizon,
            quantum: self.quantum,
            data_plan: self.data_plan,
            offload: self.offload,
            fast_forward: true,
            policy: self.policy,
            faults: self.faults,
        }
    }

    /// Expands the scenario into per-device specs (see
    /// [`Scenario::spec_for`]).
    ///
    /// # Panics
    ///
    /// Panics if the mixture is empty or all weights are zero.
    pub fn specs(&self) -> Vec<DeviceSpec> {
        (0..self.devices as u64)
            .map(|id| self.spec_for(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `from_tag` is the exact inverse of `tag`, exhaustively: every
    /// workload round-trips, tags are unique, and junk maps to `None`.
    #[test]
    fn tag_round_trips_exhaustively() {
        let mut seen = std::collections::BTreeSet::new();
        for w in Workload::ALL {
            let tag = w.tag();
            assert_eq!(Workload::from_tag(tag), Some(w), "tag {tag}");
            assert!(seen.insert(tag), "duplicate tag {tag}");
        }
        assert_eq!(seen.len(), Workload::ALL.len());
        for junk in ["", "pollers", "POLLERS-COOP", "gps", "screen_on", "nav"] {
            assert_eq!(Workload::from_tag(junk), None, "junk {junk:?}");
        }
    }

    /// The CSV path round-trips through `from_tag` too: every tag written
    /// by a report resolves back to the workload that produced it.
    #[test]
    fn all_scenario_covers_every_tag() {
        // One full round-robin block of the mixture (total weight 11).
        let s = Scenario::all_workloads("cover", 1, 11);
        let tags: std::collections::BTreeSet<&str> =
            s.specs().iter().map(|d| d.workload.tag()).collect();
        assert_eq!(tags.len(), Workload::ALL.len(), "tags: {tags:?}");
        for tag in tags {
            assert!(Workload::from_tag(tag).is_some());
        }
    }

    #[test]
    fn mixture_is_exact_per_block() {
        let s = Scenario::mixed("m", 1, 100);
        let specs = s.specs();
        let coop = specs
            .iter()
            .filter(|d| d.workload == Workload::Pollers { coop: true })
            .count();
        // Weight 4 of 10 → exactly 40 of 100.
        assert_eq!(coop, 40);
        assert_eq!(specs.len(), 100);
    }

    #[test]
    fn specs_are_deterministic_and_seed_scoped() {
        let a = Scenario::mixed("m", 7, 32).specs();
        let b = Scenario::mixed("m", 7, 32).specs();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.battery, y.battery);
            assert_eq!(x.rate_scale_ppm, y.rate_scale_ppm);
        }
        let c = Scenario::mixed("m", 8, 32).specs();
        assert!(a.iter().zip(&c).any(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn adding_devices_never_perturbs_existing_ones() {
        // The split-stream property: device i's spec is identical whether
        // the fleet holds 10 or 1000 devices.
        let small = Scenario::mixed("m", 3, 10).specs();
        let large = Scenario::mixed("m", 3, 1_000).specs();
        for (s, l) in small.iter().zip(&large) {
            assert_eq!(s.seed, l.seed);
            assert_eq!(s.battery, l.battery);
            assert_eq!(s.rate_scale_ppm, l.rate_scale_ppm);
            assert_eq!(s.interval_scale_ppm, l.interval_scale_ppm);
        }
    }

    #[test]
    fn jitter_stays_in_band() {
        let s = Scenario::mixed("m", 5, 200);
        for d in s.specs() {
            assert!((900_000..=1_100_000).contains(&d.rate_scale_ppm));
            assert!((900_000..=1_100_000).contains(&d.interval_scale_ppm));
            assert!(d.battery >= Energy::from_joules(10_000));
            assert!(d.battery < Energy::from_joules(20_000));
        }
    }

    #[test]
    fn data_plan_scenario_tags_every_device() {
        let s = Scenario::data_plan("q", 2, 10, 5_000_000);
        for d in s.specs() {
            assert_eq!(d.data_plan, Some(DataPlan { bytes: 5_000_000 }));
            assert!(matches!(d.workload, Workload::Pollers { .. }));
        }
    }

    #[test]
    #[should_panic(expected = "empty workload mixture")]
    fn empty_mixture_is_rejected() {
        let mut s = Scenario::mixed("m", 1, 4);
        s.mix.clear();
        let _ = s.specs();
    }
}
