//! The device driver: one [`DeviceSpec`] in, one [`DeviceReport`] out.
//!
//! Each device gets its own [`Kernel`] built from its spec — battery
//! capacity, seed, and workload topology with the device's jitter applied —
//! run to the horizon with the kernel's bit-exact idle fast-forward on,
//! then torn down into a compact report. Devices sharing nothing is what
//! lets the executor shard them freely.
//!
//! The driver is workload-agnostic: [`crate::scenario::Workload::program`] resolves the
//! spec's tag to a [`cinder_apps::WorkloadProgram`], which shapes the
//! kernel config (e.g. the gallery's laptop NIC), installs its own
//! topology, and hands back the probe the extraction pass reads — the seam
//! that let the peripheral workloads (navigator, screen-on) plug in
//! without touching this file's logic.

use cinder_apps::{InstalledWorkload, OffloadSetup, WorkloadEnv};
use cinder_core::{quota, ResourceKind, SchedulerConfig};
use cinder_kernel::{Kernel, KernelConfig, PeripheralKind};
use cinder_sim::{Energy, SimDuration, SimTime};

use crate::fault_driver::FaultRuntime;
use crate::policy_driver::PolicyRuntime;
use crate::scenario::DeviceSpec;
#[cfg(test)]
use crate::scenario::Workload;

/// Compact per-device telemetry, the unit the aggregator consumes.
///
/// Everything here is either an exact integer read off the kernel or a
/// float computed from exact integers, so reports are bit-stable across
/// runs and worker layouts.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Device id (fleet index).
    pub id: u64,
    /// Workload tag (see [`crate::scenario::Workload::tag`]).
    pub workload: &'static str,
    /// Battery capacity the device started with.
    pub battery_capacity_uj: i64,
    /// Root-reserve balance at the horizon.
    pub battery_remaining_uj: i64,
    /// Total platform energy the meter integrated over the horizon.
    pub total_energy_uj: i64,
    /// Energy charged to threads by the energy-aware scheduler (CPU
    /// subsystem share of the total).
    pub cpu_energy_uj: i64,
    /// Energy the backlight drained from its reserve (peripheral layer).
    pub backlight_energy_uj: i64,
    /// Energy the GPS drained from its reserve (peripheral layer).
    pub gps_energy_uj: i64,
    /// Times the kernel forced the backlight dark on an empty reserve.
    pub backlight_shutdowns: u64,
    /// Times the kernel forced the GPS down on an empty reserve.
    pub gps_shutdowns: u64,
    /// Projected battery lifetime at the observed average draw, in hours.
    pub lifetime_h: f64,
    /// Radio idle→active transitions (phone workloads).
    pub radio_activations: u64,
    /// Total radio-active time in seconds.
    pub radio_active_s: f64,
    /// Bytes moved over the network (radio tx+rx, or NIC downloads for the
    /// gallery).
    pub net_bytes: u64,
    /// Completed application operations (polls sent / pages / images /
    /// GPS fixes).
    pub ops: u64,
    /// Time threads spent denied the CPU on an empty reserve.
    pub starved_s: f64,
    /// Reserves in debt (negative balance) at the horizon — the
    /// after-the-fact billing of §5.5.2 at work.
    pub debt_reserves: u32,
    /// Whether the §9 data plan ran out before the horizon: a send blocked
    /// on bytes in the kernel (online enforcement, not an offline replay).
    pub quota_exhausted: bool,
    /// Bytes left on the in-kernel data-plan reserve (0 when no plan is
    /// carried; may be negative if reply bytes drove the plan into debt).
    pub quota_remaining_bytes: i64,
    /// Sends the kernel held because the plan could not cover them.
    pub bytes_blocked_sends: u64,
    /// `offload` syscalls that reached the backend admission check.
    pub offload_attempts: u64,
    /// Offload requests the backend admitted and the stack accepted.
    pub offload_accepted: u64,
    /// Accepted offloads whose response woke the thread in time.
    pub offload_completed: u64,
    /// Offloads refused up front (backend full, plan uncovered).
    pub offload_rejected: u64,
    /// Accepted offloads whose deadline fired before the response.
    pub offload_timed_out: u64,
    /// Σ observed request latency over completed offloads, µs.
    pub offload_latency_us: u64,
    /// Tap/drive re-rates the policy engine applied (0 with no policy).
    pub policy_rerates: u64,
    /// False→true edges of the policy's background-demotion flag.
    pub policy_demotions: u64,
    /// Seconds the user model spent Active over the horizon.
    pub presence_active_s: u64,
    /// Seconds the user model spent Ambient over the horizon.
    pub presence_ambient_s: u64,
    /// Seconds the user model spent Away over the horizon.
    pub presence_away_s: u64,
    /// Seconds the user model spent Asleep over the horizon.
    pub presence_asleep_s: u64,
    /// Whether the projected lifetime covered the policy's target
    /// duration (false with no policy configured).
    pub lifetime_target_hit: bool,
    /// Radio link flaps the fault injector landed (0 without faults).
    pub link_flaps: u64,
    /// Exact link-down time within the horizon, µs (plan-derived, so it
    /// includes flap tails past the last kernel step).
    pub link_down_us: u64,
    /// Bytes of in-flight deliveries lost to drop-semantics flaps.
    pub flap_lost_bytes: u64,
    /// Transient app kills the fault supervisor landed.
    pub crashes: u64,
    /// Fresh program instances the supervisor respawned.
    pub restarts: u64,
    /// Backoff retries the workload's resilience layer scheduled.
    pub retries: u64,
    /// Work items abandoned after the retry budget ran out.
    pub retries_exhausted: u64,
    /// Battery capacity fade the aging tap drained, µJ (exact).
    pub fade_uj: i64,
}

/// Reusable per-worker buffers for [`simulate_device_with`]: a worker keeps
/// one of these across its whole chunk, so the per-device extraction pass
/// allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct DeviceScratch {
    /// Thread ids of the device under extraction (refilled per device).
    thread_ids: Vec<cinder_kernel::ThreadId>,
    /// Epochs the steadiness probe certified as Steady (closed-form
    /// advance), cumulative across every device this scratch has driven.
    /// Telemetry only — deliberately *not* part of [`DeviceReport`], so a
    /// report stays byte-identical with fast-forward on or off.
    pub steady_epochs: u64,
    /// Epochs the probe declined to certify (stepped), cumulative.
    pub dynamic_epochs: u64,
}

/// [`simulate_device`] with caller-provided worker scratch (the executor's
/// per-worker reuse path).
pub fn simulate_device_with(spec: &DeviceSpec, scratch: &mut DeviceScratch) -> DeviceReport {
    simulate_device_inner(spec, scratch)
}

/// Builds the device's kernel, runs it to the spec's horizon, and distils
/// the report.
pub fn simulate_device(spec: &DeviceSpec) -> DeviceReport {
    simulate_device_inner(spec, &mut DeviceScratch::default())
}

fn simulate_device_inner(spec: &DeviceSpec, scratch: &mut DeviceScratch) -> DeviceReport {
    let workload = spec.workload.program();
    let mut config = KernelConfig {
        battery: spec.battery,
        seed: spec.seed,
        idle_skip: true,
        fast_forward: spec.fast_forward,
        sched: SchedulerConfig {
            quantum: spec.quantum,
            ..SchedulerConfig::default()
        },
        ..KernelConfig::default()
    };
    workload.configure(&mut config);
    let mut kernel = Kernel::new(config);
    let env = WorkloadEnv {
        rate_scale_ppm: spec.rate_scale_ppm,
        interval_scale_ppm: spec.interval_scale_ppm,
        data_plan_bytes: spec.data_plan.map(|p| p.bytes),
        offload: spec.offload.map(|profile| OffloadSetup {
            profile,
            horizon: spec.horizon,
            outages: spec.faults.and_then(|f| f.outages),
        }),
        faults: spec.faults,
    };
    let mut installed = workload
        .install(&mut kernel, &env)
        .expect("root can install the workload topology");

    // The fault injector executes the device's pure fault schedule: link
    // flaps and kills land only at quantum-aligned span boundaries (the
    // loop below clamps every span to `next_boundary`), and the aging tap
    // drains capacity fade through the typed graph. The plan draws from
    // the seed's dedicated fault stream, so a fault-free device is
    // byte-identical whether this layer exists or not.
    let mut fault_rt = spec
        .faults
        .filter(|config| config.any_device_faults())
        .map(|config| FaultRuntime::new(config, spec, &mut kernel));

    // The policy engine ticks on its own grid-aligned cadence; its first
    // decision lands before the run starts (a lifetime-target controller
    // that waits a tick starts behind). Both run paths below clamp their
    // spans to `next_tick`, so a decision instant is always a span
    // boundary — the chunk-safe `run_span` guarantees the observables
    // read there are identical however the surrounding spans were split,
    // which is what keeps policy fleets byte-identical across worker
    // counts and fast-forward on/off.
    let mut policy_rt = spec
        .policy
        .map(|config| PolicyRuntime::new(config, spec, &installed));
    if let Some(rt) = policy_rt.as_mut() {
        rt.apply(&mut kernel, spec);
    }

    let end = SimTime::ZERO + spec.horizon;
    if spec.fast_forward {
        // Epoch-partitioned run: before each epoch, ask the kernel's
        // read-only steadiness probe whether anything *can* happen before
        // the epoch end. A certified epoch is Steady — the kernel's frozen
        // fast-forward crosses it in O(1) — and an uncertified one is
        // Dynamic, stepped quantum by quantum (with the idle skip still
        // compressing quiet stretches inside it). The partition is
        // observational: epochs run through the chunk-safe
        // [`Kernel::run_span`], whose split points do not perturb the
        // boundary instruction stream, and the skips are bit-identical to
        // stepping — so the report matches the un-partitioned run byte for
        // byte (the `steady_vs_stepped` differential proves it).
        // Round the epoch up to the quantum grid: the probe's jump is
        // quantum-floored, so an off-grid epoch could never certify its
        // own end.
        let quantum_us = spec.quantum.as_micros().max(1);
        let hint_us = installed
            .steady_hint
            .unwrap_or(SimDuration::from_secs(60))
            .as_micros()
            .max(quantum_us);
        let epoch = SimDuration::from_micros(hint_us.div_ceil(quantum_us) * quantum_us);
        // Adaptive cadence: the probe costs a few µs, so probing at the
        // workload's period all day is measurable overhead on devices that
        // never settle. Double the stride every epoch (capped at 32) — the
        // partition telemetry coarsens near phase transitions, but the
        // in-loop fast-forward inside `run_span` still compresses every
        // certifiable quantum regardless of where the split points fall,
        // and split points never perturb results.
        let mut stride: u64 = 1;
        let mut now = kernel.now();
        while now < end {
            // Fault boundaries due at `now` fire before the span: the
            // clamp below guarantees the kernel never ran past one.
            if let Some(frt) = fault_rt.as_mut() {
                frt.apply(&mut kernel, &mut installed.respawns, now);
            }
            let mut target = end.min(now + epoch * stride);
            // A pending policy re-rate bounds the epoch: nothing may be
            // certified Steady across a decision instant, because the
            // decision can change tap rates and drive levels.
            if let Some(rt) = policy_rt.as_ref() {
                target = target.min(rt.next_tick());
            }
            // A pending fault boundary bounds it the same way: a flap or
            // kill changes what the span would have computed.
            if let Some(boundary) = fault_rt.as_ref().and_then(|frt| frt.next_boundary()) {
                if boundary > now {
                    target = target.min(boundary);
                }
            }
            // Steady = the probe certifies past the last quantum boundary
            // before `target` (the jump is quantum-floored, so `t` can sit
            // up to one quantum shy of an off-grid final target).
            let steady = kernel
                .steadiness_probe(target)
                .is_some_and(|t| t + spec.quantum > target);
            if steady {
                scratch.steady_epochs += stride;
            } else {
                scratch.dynamic_epochs += stride;
            }
            stride = (stride * 2).min(32);
            kernel.run_span(target);
            let landed = kernel.now();
            // `run_span` only advances to quantum boundaries; force
            // progress past a sub-quantum tail so the loop terminates.
            now = if landed > now { landed } else { target };
            if let Some(rt) = policy_rt.as_mut() {
                if rt.due(now) && now < end {
                    rt.apply(&mut kernel, spec);
                }
            }
        }
    } else if policy_rt.is_some() || fault_rt.is_some() {
        // Stepped run with a policy and/or fault injector: chunk the
        // horizon at decision instants and fault boundaries. `run_span`
        // split-point invariance makes this byte-identical to the
        // fast-forward path above.
        let mut now = kernel.now();
        while now < end {
            if let Some(frt) = fault_rt.as_mut() {
                frt.apply(&mut kernel, &mut installed.respawns, now);
            }
            let mut target = end;
            if let Some(rt) = policy_rt.as_ref() {
                target = target.min(rt.next_tick());
            }
            if let Some(boundary) = fault_rt.as_ref().and_then(|frt| frt.next_boundary()) {
                if boundary > now {
                    target = target.min(boundary);
                }
            }
            kernel.run_span(target);
            let landed = kernel.now();
            now = if landed > now { landed } else { target };
            if let Some(rt) = policy_rt.as_mut() {
                if rt.due(now) && now < end {
                    rt.apply(&mut kernel, spec);
                }
            }
        }
    }
    // Settle radio/meter/flows at the horizon for extraction (a no-op for
    // the unchunked path's already-settled kernel).
    kernel.run_until(end);
    extract_report(
        spec,
        &kernel,
        &installed,
        scratch,
        policy_rt.as_ref(),
        fault_rt.as_ref(),
    )
}

fn extract_report(
    spec: &DeviceSpec,
    kernel: &Kernel,
    installed: &InstalledWorkload,
    scratch: &mut DeviceScratch,
    policy: Option<&PolicyRuntime>,
    faults: Option<&FaultRuntime>,
) -> DeviceReport {
    // Invariant #1, per kind: every device kernel conserves each resource
    // kind exactly at teardown (energy *and* the data plan's bytes).
    for kind in ResourceKind::ALL {
        assert!(
            kernel.graph().totals_for(kind).conserved(),
            "device {} violated {kind} conservation: {:?}",
            spec.id,
            kernel.graph().totals_for(kind)
        );
    }
    let horizon_s = spec.horizon.as_secs_f64();
    let total_energy = kernel.meter().total_energy();
    // One id sweep into the worker scratch covers all three per-thread
    // aggregations below.
    scratch.thread_ids.clear();
    scratch.thread_ids.extend(kernel.thread_id_iter());
    let cpu_energy: Energy = scratch
        .thread_ids
        .iter()
        .map(|&t| kernel.thread_consumed(t))
        .fold(Energy::ZERO, |a, b| a + b);
    let starved: SimDuration = scratch
        .thread_ids
        .iter()
        .map(|&t| kernel.thread_throttled(t))
        .fold(SimDuration::ZERO, |a, b| a + b);
    let radio = kernel.arm9().radio().stats();
    let radio_active_s = kernel
        .arm9()
        .radio()
        .total_active(kernel.now())
        .as_secs_f64();
    let debt_reserves = kernel
        .graph()
        .reserves()
        .filter(|(_, r)| r.balance().is_negative())
        .count() as u32;
    let battery_remaining = kernel
        .graph()
        .reserve(kernel.battery())
        .map(|r| r.balance())
        .unwrap_or(Energy::ZERO);

    let ops = installed.probe.ops(kernel);
    let app_bytes = installed.probe.app_net_bytes(kernel);
    let net_bytes = if app_bytes > 0 {
        app_bytes
    } else {
        radio.tx_bytes + radio.rx_bytes
    };

    // §9 data-plan state read straight off the kernel: how many sends the
    // plan held back, whether any are still waiting, and the live balance.
    let bytes_blocked_sends: u64 = scratch
        .thread_ids
        .iter()
        .map(|&t| kernel.thread_bytes_blocked(t))
        .sum();
    let (quota_exhausted, quota_remaining_bytes) = match installed.plan_reserve {
        Some(plan) => (
            bytes_blocked_sends > 0,
            kernel
                .graph()
                .reserve(plan)
                .map(|r| quota::as_bytes(r.balance()))
                .unwrap_or(0),
        ),
        None => (false, spec.data_plan.map(|p| p.bytes as i64).unwrap_or(0)),
    };

    let offload = kernel.offload_stats();

    // Projected lifetime at the observed average draw: exact-integer
    // energies, one final float division.
    let lifetime_h = if total_energy.is_positive() {
        spec.battery.as_microjoules() as f64 / total_energy.as_microjoules() as f64 * horizon_s
            / 3_600.0
    } else {
        f64::INFINITY
    };

    let presence = policy
        .map(|rt| rt.presence_seconds(spec.horizon))
        .unwrap_or([0; 4]);

    let fault_counters = kernel.fault_counters();

    DeviceReport {
        id: spec.id,
        workload: spec.workload.tag(),
        battery_capacity_uj: spec.battery.as_microjoules(),
        battery_remaining_uj: battery_remaining.as_microjoules(),
        total_energy_uj: total_energy.as_microjoules(),
        cpu_energy_uj: cpu_energy.as_microjoules(),
        backlight_energy_uj: kernel
            .peripheral_energy(PeripheralKind::Backlight)
            .as_microjoules(),
        gps_energy_uj: kernel
            .peripheral_energy(PeripheralKind::Gps)
            .as_microjoules(),
        backlight_shutdowns: kernel.peripheral_forced_shutdowns(PeripheralKind::Backlight),
        gps_shutdowns: kernel.peripheral_forced_shutdowns(PeripheralKind::Gps),
        lifetime_h,
        radio_activations: radio.activations,
        radio_active_s,
        net_bytes,
        ops,
        starved_s: starved.as_secs_f64(),
        debt_reserves,
        quota_exhausted,
        quota_remaining_bytes,
        bytes_blocked_sends,
        offload_attempts: offload.attempts,
        offload_accepted: offload.accepted,
        offload_completed: offload.completed,
        offload_rejected: offload.rejected,
        offload_timed_out: offload.timed_out,
        offload_latency_us: offload.latency_us_sum,
        policy_rerates: policy.map(|rt| rt.rerates).unwrap_or(0),
        policy_demotions: policy.map(|rt| rt.demotions).unwrap_or(0),
        presence_active_s: presence[0],
        presence_ambient_s: presence[1],
        presence_away_s: presence[2],
        presence_asleep_s: presence[3],
        lifetime_target_hit: policy.is_some_and(|rt| rt.target_hit(lifetime_h)),
        link_flaps: fault_counters.link_flaps,
        link_down_us: faults
            .map(|frt| frt.plan().link_down_us(spec.horizon))
            .unwrap_or(0),
        flap_lost_bytes: fault_counters.lost_bytes,
        crashes: faults.map(|frt| frt.crashes).unwrap_or(0),
        restarts: faults.map(|frt| frt.restarts).unwrap_or(0),
        retries: installed.probe.retries(kernel),
        retries_exhausted: installed.probe.retries_exhausted(kernel),
        fade_uj: faults
            .map(|frt| frt.fade(kernel).as_microjoules())
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DataPlan, Scenario};

    fn spec_for(workload: Workload, horizon_s: u64) -> DeviceSpec {
        DeviceSpec {
            id: 0,
            seed: 42,
            workload,
            battery: Energy::from_joules(15_000),
            rate_scale_ppm: 1_000_000,
            interval_scale_ppm: 1_000_000,
            horizon: SimDuration::from_secs(horizon_s),
            quantum: SimDuration::from_millis(100),
            data_plan: None,
            offload: None,
            fast_forward: true,
            policy: None,
            faults: None,
        }
    }

    #[test]
    fn poller_device_polls_and_uses_radio() {
        let r = simulate_device(&spec_for(Workload::Pollers { coop: false }, 600));
        assert!(r.ops >= 8, "polls: {}", r.ops);
        assert!(r.radio_activations >= 2);
        assert!(r.net_bytes > 0);
        assert!(r.total_energy_uj > 0);
        assert!(
            r.lifetime_h > 1.0 && r.lifetime_h < 12.0,
            "{}",
            r.lifetime_h
        );
    }

    #[test]
    fn coop_poller_device_pools() {
        let r = simulate_device(&spec_for(Workload::Pollers { coop: true }, 1_200));
        // Pooling defers the first sends but they do complete.
        assert!(r.ops >= 1, "coop polls: {}", r.ops);
        assert!(r.radio_activations >= 1);
    }

    #[test]
    fn spinner_device_is_throttled_by_its_tap() {
        let r = simulate_device(&spec_for(Workload::Spinner, 600));
        // A 68.5 mW feed duty-cycles the 137 mW CPU: roughly half the run
        // is starved.
        assert!(
            r.starved_s > 120.0 && r.starved_s < 480.0,
            "starved {}",
            r.starved_s
        );
        assert!(r.cpu_energy_uj > 0);
    }

    #[test]
    fn gallery_device_downloads() {
        let r = simulate_device(&spec_for(Workload::Gallery { adaptive: true }, 3_000));
        assert!(r.ops >= 32, "images: {}", r.ops);
        assert!(r.net_bytes > 1_000_000);
        assert_eq!(r.radio_activations, 0, "gallery uses the laptop NIC");
    }

    #[test]
    fn browser_device_runs() {
        let r = simulate_device(&spec_for(Workload::Browser, 300));
        assert!(r.total_energy_uj > 0);
        assert!(r.cpu_energy_uj > 0);
    }

    #[test]
    fn navigator_device_fixes_and_burns_gps_energy() {
        let r = simulate_device(&spec_for(Workload::Navigator, 1_800));
        // ~70 s per fix cycle: two dozen fixes in half an hour.
        assert!(r.ops >= 15, "fixes: {}", r.ops);
        // Each 10 s fix drains 3.5 J from the reserve.
        assert!(
            r.gps_energy_uj >= 50_000_000,
            "gps energy: {}",
            r.gps_energy_uj
        );
        assert_eq!(r.backlight_energy_uj, 0);
        assert_eq!(r.radio_activations, 0, "the navigator never transmits");
    }

    #[test]
    fn screen_on_device_browses_under_the_backlight() {
        let r = simulate_device(&spec_for(Workload::ScreenOn, 1_800));
        assert!(r.ops >= 50, "pages: {}", r.ops);
        // Six 2-minute sessions at roughly full brightness.
        assert!(
            r.backlight_energy_uj >= 200_000_000,
            "backlight energy: {}",
            r.backlight_energy_uj
        );
        assert_eq!(r.gps_energy_uj, 0);
    }

    #[test]
    fn offloader_device_ships_work_to_the_backend() {
        let mut spec = spec_for(Workload::Offloader, 1_800);
        spec.offload = Some(cinder_offload::OffloadProfile {
            capacity: 64,
            queue_limit: 10_000,
            ..Default::default()
        });
        let r = simulate_device(&spec);
        assert!(r.ops >= 5, "items: {r:?}");
        assert!(r.offload_completed >= 4, "completions: {r:?}");
        assert!(r.offload_attempts >= r.offload_accepted);
        assert!(
            r.offload_latency_us > 0,
            "completed offloads observed latency: {r:?}"
        );
        assert!(r.radio_activations >= 1, "round trips use the radio");
        assert!(r.net_bytes > 0);
    }

    #[test]
    fn offload_counters_conserve() {
        // A spec without an explicit economy falls back to the workload's
        // nominal backend; whatever mix of remote/local/timeout results,
        // the counters must tie out at the horizon.
        let r = simulate_device(&spec_for(Workload::Offloader, 1_200));
        assert!(r.ops >= 3, "items: {r:?}");
        assert!(
            r.offload_accepted >= r.offload_completed + r.offload_timed_out,
            "conservation: {r:?}"
        );
        assert!(r.offload_attempts >= r.offload_accepted + r.offload_rejected);
    }

    #[test]
    fn starving_navigator_is_forced_down() {
        // A tenth of the nominal feed cannot hold a fix window: the kernel
        // cuts the receiver and the report records it.
        let mut spec = spec_for(Workload::Navigator, 3_600);
        spec.rate_scale_ppm = 100_000;
        let r = simulate_device(&spec);
        assert!(
            r.gps_shutdowns >= 1,
            "forced shutdowns must surface in the report: {r:?}"
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let spec = spec_for(Workload::Pollers { coop: false }, 900);
        assert_eq!(simulate_device(&spec), simulate_device(&spec));
    }

    #[test]
    fn tiny_data_plan_exhausts() {
        let mut spec = spec_for(Workload::Pollers { coop: false }, 1_800);
        // ~8.4 KB per RSS poll + ~4.6 KB per mail poll: 20 KB dies fast.
        spec.data_plan = Some(DataPlan { bytes: 20_000 });
        let r = simulate_device(&spec);
        assert!(r.quota_exhausted, "plan should run out: {r:?}");
        assert!(
            r.bytes_blocked_sends > 0,
            "sends must block in-kernel: {r:?}"
        );
        assert!(r.quota_remaining_bytes < 20_000);
    }

    #[test]
    fn generous_data_plan_survives() {
        let mut spec = spec_for(Workload::Pollers { coop: false }, 1_800);
        spec.data_plan = Some(DataPlan { bytes: 5_000_000 });
        let r = simulate_device(&spec);
        assert!(!r.quota_exhausted);
        assert_eq!(r.bytes_blocked_sends, 0);
        assert!(r.quota_remaining_bytes > 4_000_000);
    }

    #[test]
    fn exhausted_plan_throttles_polls_online() {
        // The scenario the offline replay could not express: exhaustion
        // changes device *behaviour* — polls stop completing and the radio
        // goes quiet once the plan runs dry mid-run.
        let base = spec_for(Workload::Pollers { coop: false }, 1_800);
        let free = simulate_device(&base);
        let mut capped = base.clone();
        capped.data_plan = Some(DataPlan { bytes: 30_000 });
        let throttled = simulate_device(&capped);
        assert!(throttled.quota_exhausted);
        assert!(
            throttled.ops < free.ops,
            "online exhaustion must cut completed polls: {} vs {}",
            throttled.ops,
            free.ops
        );
        assert!(
            throttled.net_bytes < free.net_bytes,
            "blocked sends never reach the radio"
        );
    }

    #[test]
    fn every_mixed_workload_simulates() {
        for spec in Scenario::all_workloads("all", 9, 10).specs() {
            let mut quick = spec.clone();
            quick.horizon = SimDuration::from_secs(120);
            let r = simulate_device(&quick);
            assert!(r.total_energy_uj > 0, "{:?}", quick.workload);
        }
    }
}
