//! The policy engine's kernel wiring: observables in, syscalls out.
//!
//! `cinder-policy` keeps decisions pure — `decide(&PolicyInputs) ->
//! PolicyActions` over plain values. This module owns everything impure
//! about running one: snapshotting kernel observables at a tick, applying
//! tap re-rates through [`Kernel::rerate_tap`] and drive caps through
//! [`Kernel::peripheral_set_drive`], writing the workload's drive-cap
//! hint cell, and counting the telemetry the fleet reports. The device
//! driver calls [`PolicyRuntime::apply`] only at tick instants that land
//! on the quantum grid, which is what keeps policy-enabled fleets
//! byte-identical across worker counts and fast-forward on/off.

use cinder_apps::{DriveCap, InstalledWorkload, PolicyTapHandle};
use cinder_kernel::{Kernel, PeripheralKind};
use cinder_policy::{
    Policy, PolicyConfig, PolicyInputs, PresenceTrace, TapObservation, FULL_DRIVE_PPM,
};
use cinder_sim::{Energy, Power, SimDuration, SimTime};

use crate::scenario::DeviceSpec;

/// One device's live policy engine: the pure policy, its user model, the
/// workload's throttle handles, and the applied-state the driver needs to
/// count re-rates exactly once.
pub struct PolicyRuntime {
    config: PolicyConfig,
    policy: Box<dyn Policy>,
    trace: PresenceTrace,
    taps: Vec<PolicyTapHandle>,
    /// Rates as last applied (starts at nominal): the diff base for
    /// counting re-rates.
    rates: Vec<Power>,
    drive_cap: Option<DriveCap>,
    /// Decision cadence, rounded up to the quantum grid.
    tick: SimDuration,
    /// The next instant a decision is due.
    next_tick: SimTime,
    /// Whether the background demotion flag was set at the last tick.
    demoted: bool,
    /// Tap re-rates + drive re-rates applied (telemetry).
    pub rerates: u64,
    /// False→true edges of the demotion flag (telemetry).
    pub demotions: u64,
}

impl PolicyRuntime {
    /// Builds the runtime for one device: the policy object from the
    /// spec's config, the presence trace from the device seed's child
    /// stream, and the throttle handles off the installed workload.
    pub fn new(config: PolicyConfig, spec: &DeviceSpec, installed: &InstalledWorkload) -> Self {
        let quantum_us = spec.quantum.as_micros().max(1);
        let tick_us = config.tick.as_micros().max(quantum_us);
        let tick = SimDuration::from_micros(tick_us.div_ceil(quantum_us) * quantum_us);
        PolicyRuntime {
            policy: config.build(),
            config,
            trace: PresenceTrace::generate(spec.seed, spec.horizon),
            rates: installed.policy_taps.iter().map(|t| t.nominal).collect(),
            taps: installed.policy_taps.clone(),
            drive_cap: installed.drive_cap.clone(),
            tick,
            next_tick: SimTime::ZERO,
            demoted: false,
            rerates: 0,
            demotions: 0,
        }
    }

    /// The device's user model (the driver reads time-in-state telemetry
    /// off it at extraction).
    pub fn trace(&self) -> &PresenceTrace {
        &self.trace
    }

    /// The next instant a decision is due; the device loop never lets a
    /// steady epoch cross it (a pending re-rate bounds certification,
    /// same shape as the probe's deadline and event guards).
    pub fn next_tick(&self) -> SimTime {
        self.next_tick
    }

    /// True once `now` has reached the pending tick.
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next_tick
    }

    /// Snapshots observables, runs the pure decision, applies the
    /// actions, and schedules the next tick. Must be called between run
    /// spans (the kernel parked at a quantum boundary).
    pub fn apply(&mut self, kernel: &mut Kernel, spec: &DeviceSpec) {
        let obs = kernel.observables();
        let taps: Vec<TapObservation> = self
            .taps
            .iter()
            .zip(&self.rates)
            .map(|(handle, &current)| TapObservation {
                nominal: handle.nominal,
                current,
                level: kernel.reserve_level(handle.reserve),
                background: handle.background,
            })
            .collect();
        // Battery aging: the fault model's capacity fade has already cost
        // the pack `fade` (a parasitic drain the meter never sees), and
        // voltage sag clamps how much of the remainder the policy may plan
        // against. A lifetime-target controller that budgets the nameplate
        // capacity under faults would promise hours the cells cannot hold.
        let (fade, sag_ppm) = spec
            .faults
            .map(|f| (f.fade_at(obs.now), f.sag_ppm))
            .unwrap_or((Energy::ZERO, 1_000_000));
        let inputs = PolicyInputs {
            now: obs.now,
            horizon: spec.horizon,
            presence: self.trace.state_at(obs.now),
            // The policy's gauge is the projected remaining charge —
            // capacity minus fade minus everything the meter integrated
            // (baseline included) — not the root reserve's balance, which
            // only tap draws deplete.
            battery_level: (spec.battery - fade - obs.total_energy).clamp_non_negative(),
            battery_capacity: (spec.battery - fade)
                .clamp_non_negative()
                .scale_ppm(sag_ppm),
            taps: &taps,
            backlight_enabled: obs.backlight_enabled,
            backlight_drive_ppm: obs.backlight_drive_ppm,
            offload_completed: obs.offload.completed,
        };
        let actions = self.policy.decide(&inputs);

        for (i, want) in actions.tap_rates.iter().enumerate() {
            let Some(want) = *want else { continue };
            if want != self.rates[i] {
                kernel
                    .rerate_tap(self.taps[i].tap, want)
                    .expect("policy re-rates run with kernel authority");
                self.rates[i] = want;
                self.rerates += 1;
            }
        }
        match actions.backlight_cap_ppm {
            Some(cap) => {
                // Future sessions read the hint; a lit screen above the
                // cap is re-rated right now.
                if let Some(cell) = &self.drive_cap {
                    cell.set(cap);
                }
                if obs.backlight_enabled && obs.backlight_drive_ppm > cap {
                    kernel
                        .peripheral_set_drive(PeripheralKind::Backlight, cap)
                        .expect("drive caps run with kernel authority");
                    self.rerates += 1;
                }
            }
            None => {
                if let Some(cell) = &self.drive_cap {
                    cell.set(FULL_DRIVE_PPM);
                }
            }
        }
        if actions.demote_background && !self.demoted {
            self.demotions += 1;
        }
        self.demoted = actions.demote_background;
        self.next_tick = obs.now.max(self.next_tick) + self.tick;
    }

    /// Whether the device met its lifetime target: the projected
    /// lifetime covers the configured target duration.
    pub fn target_hit(&self, lifetime_h: f64) -> bool {
        lifetime_h * 3_600.0 >= self.config.target.as_secs_f64()
    }

    /// Seconds in each presence state over the device's horizon.
    pub fn presence_seconds(&self, horizon: SimDuration) -> [u64; 4] {
        self.trace.seconds_by_state(horizon)
    }
}
