//! Struct-of-arrays storage for retained per-device telemetry.
//!
//! A million-device retained run used to hold `Vec<Option<DeviceReport>>`
//! — an `Option` discriminant per slot and every aggregation pass striding
//! over full 200-byte rows to read one column. [`ReportSlab`] stores each
//! [`DeviceReport`] field in its own dense arena keyed by device id
//! (device `i` is row `i`), so a column scan (the summary's lifetime pass,
//! the CSV writer's ordered walk) touches only the bytes it reads, slots
//! need no presence tag, and workers deposit whole chunks with plain
//! column writes. Rows materialise back into [`DeviceReport`] values on
//! demand — the public API stays value-shaped while the storage stays
//! columnar.

use crate::device::DeviceReport;

/// Columnar (struct-of-arrays) storage of device reports, keyed by dense
/// device id. Row `i` holds device `i`; all columns always have equal
/// length.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportSlab {
    workload: Vec<&'static str>,
    battery_capacity_uj: Vec<i64>,
    battery_remaining_uj: Vec<i64>,
    total_energy_uj: Vec<i64>,
    cpu_energy_uj: Vec<i64>,
    backlight_energy_uj: Vec<i64>,
    gps_energy_uj: Vec<i64>,
    backlight_shutdowns: Vec<u64>,
    gps_shutdowns: Vec<u64>,
    lifetime_h: Vec<f64>,
    radio_activations: Vec<u64>,
    radio_active_s: Vec<f64>,
    net_bytes: Vec<u64>,
    ops: Vec<u64>,
    starved_s: Vec<f64>,
    debt_reserves: Vec<u32>,
    quota_exhausted: Vec<bool>,
    quota_remaining_bytes: Vec<i64>,
    bytes_blocked_sends: Vec<u64>,
    offload_attempts: Vec<u64>,
    offload_accepted: Vec<u64>,
    offload_completed: Vec<u64>,
    offload_rejected: Vec<u64>,
    offload_timed_out: Vec<u64>,
    offload_latency_us: Vec<u64>,
    policy_rerates: Vec<u64>,
    policy_demotions: Vec<u64>,
    presence_active_s: Vec<u64>,
    presence_ambient_s: Vec<u64>,
    presence_away_s: Vec<u64>,
    presence_asleep_s: Vec<u64>,
    lifetime_target_hit: Vec<bool>,
    link_flaps: Vec<u64>,
    link_down_us: Vec<u64>,
    flap_lost_bytes: Vec<u64>,
    crashes: Vec<u64>,
    restarts: Vec<u64>,
    retries: Vec<u64>,
    retries_exhausted: Vec<u64>,
    fade_uj: Vec<i64>,
}

impl ReportSlab {
    /// An empty slab.
    pub fn new() -> ReportSlab {
        ReportSlab::default()
    }

    /// A slab with `n` zeroed rows, ready for [`ReportSlab::set`] by any
    /// worker order.
    pub fn with_len(n: usize) -> ReportSlab {
        ReportSlab {
            workload: vec![""; n],
            battery_capacity_uj: vec![0; n],
            battery_remaining_uj: vec![0; n],
            total_energy_uj: vec![0; n],
            cpu_energy_uj: vec![0; n],
            backlight_energy_uj: vec![0; n],
            gps_energy_uj: vec![0; n],
            backlight_shutdowns: vec![0; n],
            gps_shutdowns: vec![0; n],
            lifetime_h: vec![0.0; n],
            radio_activations: vec![0; n],
            radio_active_s: vec![0.0; n],
            net_bytes: vec![0; n],
            ops: vec![0; n],
            starved_s: vec![0.0; n],
            debt_reserves: vec![0; n],
            quota_exhausted: vec![false; n],
            quota_remaining_bytes: vec![0; n],
            bytes_blocked_sends: vec![0; n],
            offload_attempts: vec![0; n],
            offload_accepted: vec![0; n],
            offload_completed: vec![0; n],
            offload_rejected: vec![0; n],
            offload_timed_out: vec![0; n],
            offload_latency_us: vec![0; n],
            policy_rerates: vec![0; n],
            policy_demotions: vec![0; n],
            presence_active_s: vec![0; n],
            presence_ambient_s: vec![0; n],
            presence_away_s: vec![0; n],
            presence_asleep_s: vec![0; n],
            lifetime_target_hit: vec![false; n],
            link_flaps: vec![0; n],
            link_down_us: vec![0; n],
            flap_lost_bytes: vec![0; n],
            crashes: vec![0; n],
            restarts: vec![0; n],
            retries: vec![0; n],
            retries_exhausted: vec![0; n],
            fade_uj: vec![0; n],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.workload.len()
    }

    /// Whether the slab holds no rows.
    pub fn is_empty(&self) -> bool {
        self.workload.is_empty()
    }

    /// Writes `report` into row `i` (the report's own `id` is *not*
    /// consulted — the caller owns the id→row mapping).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, report: &DeviceReport) {
        self.workload[i] = report.workload;
        self.battery_capacity_uj[i] = report.battery_capacity_uj;
        self.battery_remaining_uj[i] = report.battery_remaining_uj;
        self.total_energy_uj[i] = report.total_energy_uj;
        self.cpu_energy_uj[i] = report.cpu_energy_uj;
        self.backlight_energy_uj[i] = report.backlight_energy_uj;
        self.gps_energy_uj[i] = report.gps_energy_uj;
        self.backlight_shutdowns[i] = report.backlight_shutdowns;
        self.gps_shutdowns[i] = report.gps_shutdowns;
        self.lifetime_h[i] = report.lifetime_h;
        self.radio_activations[i] = report.radio_activations;
        self.radio_active_s[i] = report.radio_active_s;
        self.net_bytes[i] = report.net_bytes;
        self.ops[i] = report.ops;
        self.starved_s[i] = report.starved_s;
        self.debt_reserves[i] = report.debt_reserves;
        self.quota_exhausted[i] = report.quota_exhausted;
        self.quota_remaining_bytes[i] = report.quota_remaining_bytes;
        self.bytes_blocked_sends[i] = report.bytes_blocked_sends;
        self.offload_attempts[i] = report.offload_attempts;
        self.offload_accepted[i] = report.offload_accepted;
        self.offload_completed[i] = report.offload_completed;
        self.offload_rejected[i] = report.offload_rejected;
        self.offload_timed_out[i] = report.offload_timed_out;
        self.offload_latency_us[i] = report.offload_latency_us;
        self.policy_rerates[i] = report.policy_rerates;
        self.policy_demotions[i] = report.policy_demotions;
        self.presence_active_s[i] = report.presence_active_s;
        self.presence_ambient_s[i] = report.presence_ambient_s;
        self.presence_away_s[i] = report.presence_away_s;
        self.presence_asleep_s[i] = report.presence_asleep_s;
        self.lifetime_target_hit[i] = report.lifetime_target_hit;
        self.link_flaps[i] = report.link_flaps;
        self.link_down_us[i] = report.link_down_us;
        self.flap_lost_bytes[i] = report.flap_lost_bytes;
        self.crashes[i] = report.crashes;
        self.restarts[i] = report.restarts;
        self.retries[i] = report.retries;
        self.retries_exhausted[i] = report.retries_exhausted;
        self.fade_uj[i] = report.fade_uj;
    }

    /// Appends `report` as the next row.
    pub fn push(&mut self, report: &DeviceReport) {
        self.workload.push(report.workload);
        self.battery_capacity_uj.push(report.battery_capacity_uj);
        self.battery_remaining_uj.push(report.battery_remaining_uj);
        self.total_energy_uj.push(report.total_energy_uj);
        self.cpu_energy_uj.push(report.cpu_energy_uj);
        self.backlight_energy_uj.push(report.backlight_energy_uj);
        self.gps_energy_uj.push(report.gps_energy_uj);
        self.backlight_shutdowns.push(report.backlight_shutdowns);
        self.gps_shutdowns.push(report.gps_shutdowns);
        self.lifetime_h.push(report.lifetime_h);
        self.radio_activations.push(report.radio_activations);
        self.radio_active_s.push(report.radio_active_s);
        self.net_bytes.push(report.net_bytes);
        self.ops.push(report.ops);
        self.starved_s.push(report.starved_s);
        self.debt_reserves.push(report.debt_reserves);
        self.quota_exhausted.push(report.quota_exhausted);
        self.quota_remaining_bytes
            .push(report.quota_remaining_bytes);
        self.bytes_blocked_sends.push(report.bytes_blocked_sends);
        self.offload_attempts.push(report.offload_attempts);
        self.offload_accepted.push(report.offload_accepted);
        self.offload_completed.push(report.offload_completed);
        self.offload_rejected.push(report.offload_rejected);
        self.offload_timed_out.push(report.offload_timed_out);
        self.offload_latency_us.push(report.offload_latency_us);
        self.policy_rerates.push(report.policy_rerates);
        self.policy_demotions.push(report.policy_demotions);
        self.presence_active_s.push(report.presence_active_s);
        self.presence_ambient_s.push(report.presence_ambient_s);
        self.presence_away_s.push(report.presence_away_s);
        self.presence_asleep_s.push(report.presence_asleep_s);
        self.lifetime_target_hit.push(report.lifetime_target_hit);
        self.link_flaps.push(report.link_flaps);
        self.link_down_us.push(report.link_down_us);
        self.flap_lost_bytes.push(report.flap_lost_bytes);
        self.crashes.push(report.crashes);
        self.restarts.push(report.restarts);
        self.retries.push(report.retries);
        self.retries_exhausted.push(report.retries_exhausted);
        self.fade_uj.push(report.fade_uj);
    }

    /// Materialises row `i` as a [`DeviceReport`] (the row index is the
    /// device id).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> DeviceReport {
        DeviceReport {
            id: i as u64,
            workload: self.workload[i],
            battery_capacity_uj: self.battery_capacity_uj[i],
            battery_remaining_uj: self.battery_remaining_uj[i],
            total_energy_uj: self.total_energy_uj[i],
            cpu_energy_uj: self.cpu_energy_uj[i],
            backlight_energy_uj: self.backlight_energy_uj[i],
            gps_energy_uj: self.gps_energy_uj[i],
            backlight_shutdowns: self.backlight_shutdowns[i],
            gps_shutdowns: self.gps_shutdowns[i],
            lifetime_h: self.lifetime_h[i],
            radio_activations: self.radio_activations[i],
            radio_active_s: self.radio_active_s[i],
            net_bytes: self.net_bytes[i],
            ops: self.ops[i],
            starved_s: self.starved_s[i],
            debt_reserves: self.debt_reserves[i],
            quota_exhausted: self.quota_exhausted[i],
            quota_remaining_bytes: self.quota_remaining_bytes[i],
            bytes_blocked_sends: self.bytes_blocked_sends[i],
            offload_attempts: self.offload_attempts[i],
            offload_accepted: self.offload_accepted[i],
            offload_completed: self.offload_completed[i],
            offload_rejected: self.offload_rejected[i],
            offload_timed_out: self.offload_timed_out[i],
            offload_latency_us: self.offload_latency_us[i],
            policy_rerates: self.policy_rerates[i],
            policy_demotions: self.policy_demotions[i],
            presence_active_s: self.presence_active_s[i],
            presence_ambient_s: self.presence_ambient_s[i],
            presence_away_s: self.presence_away_s[i],
            presence_asleep_s: self.presence_asleep_s[i],
            lifetime_target_hit: self.lifetime_target_hit[i],
            link_flaps: self.link_flaps[i],
            link_down_us: self.link_down_us[i],
            flap_lost_bytes: self.flap_lost_bytes[i],
            crashes: self.crashes[i],
            restarts: self.restarts[i],
            retries: self.retries[i],
            retries_exhausted: self.retries_exhausted[i],
            fade_uj: self.fade_uj[i],
        }
    }

    /// Iterates rows as materialised [`DeviceReport`] values, in device-id
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = DeviceReport> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Direct view of the lifetime column (the summary's hottest scan).
    pub fn lifetimes_h(&self) -> &[f64] {
        &self.lifetime_h
    }
}

impl FromIterator<DeviceReport> for ReportSlab {
    fn from_iter<I: IntoIterator<Item = DeviceReport>>(iter: I) -> ReportSlab {
        let mut slab = ReportSlab::new();
        for r in iter {
            slab.push(&r);
        }
        slab
    }
}

impl<'a> IntoIterator for &'a ReportSlab {
    type Item = DeviceReport;
    type IntoIter = Box<dyn Iterator<Item = DeviceReport> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u64) -> DeviceReport {
        DeviceReport {
            id,
            workload: "spinner",
            battery_capacity_uj: 1 + id as i64,
            battery_remaining_uj: 2,
            total_energy_uj: 3,
            cpu_energy_uj: 4,
            backlight_energy_uj: 5,
            gps_energy_uj: 6,
            backlight_shutdowns: 7,
            gps_shutdowns: 8,
            lifetime_h: 9.5,
            radio_activations: 10,
            radio_active_s: 11.5,
            net_bytes: 12,
            ops: 13,
            starved_s: 14.5,
            debt_reserves: 15,
            quota_exhausted: true,
            quota_remaining_bytes: -16,
            bytes_blocked_sends: 17,
            offload_attempts: 18,
            offload_accepted: 19,
            offload_completed: 20,
            offload_rejected: 21,
            offload_timed_out: 22,
            offload_latency_us: 23,
            policy_rerates: 24,
            policy_demotions: 25,
            presence_active_s: 26,
            presence_ambient_s: 27,
            presence_away_s: 28,
            presence_asleep_s: 29,
            lifetime_target_hit: true,
            link_flaps: 30,
            link_down_us: 31,
            flap_lost_bytes: 32,
            crashes: 33,
            restarts: 34,
            retries: 35,
            retries_exhausted: 36,
            fade_uj: -37,
        }
    }

    #[test]
    fn set_get_round_trips_every_field() {
        let mut slab = ReportSlab::with_len(3);
        slab.set(2, &sample(2));
        assert_eq!(slab.get(2), sample(2));
        assert_eq!(slab.len(), 3);
    }

    #[test]
    fn push_and_iter_preserve_order() {
        let slab: ReportSlab = (0..5).map(sample).collect();
        let ids: Vec<u64> = slab.iter().map(|d| d.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(slab.lifetimes_h().len(), 5);
    }

    #[test]
    fn out_of_order_set_matches_ordered_push() {
        let mut a = ReportSlab::with_len(4);
        for i in [3usize, 0, 2, 1] {
            a.set(i, &sample(i as u64));
        }
        let b: ReportSlab = (0..4).map(sample).collect();
        assert_eq!(a, b);
    }
}
