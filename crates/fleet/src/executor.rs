//! The sharded executor: devices across `std::thread` workers.
//!
//! Devices are partitioned into fixed-size chunks; workers *steal* the next
//! unclaimed chunk off a shared atomic cursor, so a worker stuck on an
//! expensive device (a spinner stepping every quantum) never idles its
//! siblings. Each finished report is written into its device's row of a
//! pre-sized [`ReportSlab`], so the assembled slab is ordered by device id
//! and the aggregate output is byte-identical no matter how many workers
//! ran — the determinism contract the property tests pin down.
//!
//! No external dependencies: plain scoped threads, one atomic, one mutex.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::device::DeviceReport;
use crate::report::FleetReport;
use crate::scenario::Scenario;
use crate::slab::ReportSlab;

/// Devices claimed per steal. Big enough to amortise the cursor bump and
/// the results lock, small enough to balance tail latency across workers.
const CHUNK: usize = 16;

/// Runs the fleet on all available cores (`std::thread::available_parallelism`).
pub fn run_fleet(scenario: &Scenario) -> FleetReport {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    run_fleet_with(scenario, threads)
}

/// Runs the fleet on exactly `threads` workers (0 is treated as 1).
///
/// The report is byte-identical for every `threads` value.
pub fn run_fleet_with(scenario: &Scenario, threads: usize) -> FleetReport {
    let specs = scenario.specs();
    let threads = threads.max(1).min(specs.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slab = Mutex::new(ReportSlab::with_len(specs.len()));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Per-worker scratch lives across every chunk this worker
                // steals: the report buffer and the per-device extraction
                // scratch are allocated once, not per device.
                let mut scratch = crate::device::DeviceScratch::default();
                let mut reports: Vec<DeviceReport> = Vec::with_capacity(CHUNK);
                loop {
                    let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= specs.len() {
                        break;
                    }
                    let end = (start + CHUNK).min(specs.len());
                    // Simulate the whole chunk before taking the lock once.
                    reports.clear();
                    reports.extend(
                        specs[start..end]
                            .iter()
                            .map(|spec| crate::device::simulate_device_with(spec, &mut scratch)),
                    );
                    let mut slab = slab.lock().expect("no worker panics while holding it");
                    for (offset, report) in reports.drain(..).enumerate() {
                        slab.set(start + offset, &report);
                    }
                }
            });
        }
    });

    FleetReport::new(scenario, slab.into_inner().expect("workers joined"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cinder_sim::SimDuration;

    fn quick(devices: u32) -> Scenario {
        Scenario {
            horizon: SimDuration::from_secs(120),
            ..Scenario::mixed("exec", 21, devices)
        }
    }

    #[test]
    fn results_are_ordered_by_device_id() {
        let report = run_fleet_with(&quick(24), 3);
        let ids: Vec<u64> = report.devices.iter().map(|d| d.id).collect();
        assert_eq!(ids, (0..24).collect::<Vec<u64>>());
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let scenario = quick(33); // not a multiple of the chunk size
        let one = run_fleet_with(&scenario, 1);
        let four = run_fleet_with(&scenario, 4);
        let many = run_fleet_with(&scenario, 16);
        assert_eq!(one.devices, four.devices);
        assert_eq!(one.to_json(), many.to_json());
        assert_eq!(one.to_csv(), four.to_csv());
    }

    #[test]
    fn zero_threads_means_one() {
        let scenario = quick(4);
        assert_eq!(
            run_fleet_with(&scenario, 0).devices,
            run_fleet_with(&scenario, 1).devices
        );
    }

    #[test]
    fn empty_fleet_is_fine() {
        let report = run_fleet_with(&quick(0), 4);
        assert!(report.devices.is_empty());
    }
}
