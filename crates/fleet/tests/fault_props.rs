//! Fault-engine fleet properties: injected faults must ride the
//! determinism contract unchanged.
//!
//! * `fault_heavy` fleets are byte-identical across 1/2/4 workers, in both
//!   the retained and the streaming path, with nonzero fault telemetry.
//! * Fast-forward on vs off yields byte-identical per-device reports with
//!   flaps, crashes, and respawns landing mid-run.
//! * A checkpointed split run under faults equals a single run
//!   byte-for-byte through the v4 text format.
//! * Corrupted checkpoints — flipped bits, truncation, empty files — are
//!   rejected with named errors before any accumulator is trusted.
//! * Adding a fault config to a scenario must not perturb the per-device
//!   RNG draws (battery, jitter, kernel seed are drawn before the config
//!   is copied in).
//! * A killed offloader's in-flight requests settle deterministically in
//!   the offload counters, fast-forwarded or stepped.

use cinder_fleet::{
    checkpoint_fleet, resume_fleet, run_fleet_with, simulate_device, stream_fleet_with,
    FaultConfig, FleetCheckpoint, Scenario,
};
use cinder_sim::SimDuration;
use proptest::prelude::*;

fn quick(seed: u64, devices: u32) -> Scenario {
    Scenario {
        horizon: SimDuration::from_secs(1_800),
        ..Scenario::fault_heavy("fault-prop", seed, devices)
    }
}

#[test]
fn fault_fleet_is_worker_invariant_with_live_faults() {
    let scenario = quick(41, 16);
    let retained_one = run_fleet_with(&scenario, 1);
    let streamed_one = stream_fleet_with(&scenario, 1);
    let summary = retained_one.summary();
    assert!(summary.link_flaps > 0, "{}", retained_one.to_json());
    assert!(summary.link_down_us > 0, "{}", retained_one.to_json());
    assert!(summary.crashes > 0, "{}", retained_one.to_json());
    assert!(
        summary.restarts > 0,
        "killed programs must come back: {}",
        retained_one.to_json()
    );
    assert!(
        summary.retries > 0,
        "outages and flaps must trigger backoff: {}",
        retained_one.to_json()
    );
    assert!(
        summary.fade_j > 0.0,
        "aged batteries must fade: {}",
        retained_one.to_json()
    );
    for threads in [2usize, 4] {
        let retained = run_fleet_with(&scenario, threads);
        assert_eq!(retained_one, retained, "{threads} workers (retained)");
        assert_eq!(
            retained_one.to_csv(),
            retained.to_csv(),
            "{threads} workers (CSV)"
        );
        let streamed = stream_fleet_with(&scenario, threads);
        assert_eq!(
            streamed_one.summary, streamed.summary,
            "{threads} workers (streamed)"
        );
        assert_eq!(
            streamed_one.to_json(),
            streamed.to_json(),
            "{threads} workers (JSON)"
        );
    }
    // The streaming path sees the same exact fault totals as the retained
    // path (its percentiles are estimates, so whole-JSON equality across
    // paths is not expected).
    let s = &streamed_one.summary;
    assert_eq!(s.link_flaps(), u128::from(summary.link_flaps));
    assert_eq!(s.link_down_us(), u128::from(summary.link_down_us));
    assert_eq!(s.flap_lost_bytes(), u128::from(summary.flap_lost_bytes));
    assert_eq!(s.crashes(), u128::from(summary.crashes));
    assert_eq!(s.restarts(), u128::from(summary.restarts));
    assert_eq!(s.retries(), u128::from(summary.retries));
    assert_eq!(s.retries_exhausted(), u128::from(summary.retries_exhausted));
    assert!((s.fade_j() - summary.fade_j).abs() < 1e-9);
}

#[test]
fn split_run_equals_single_run_under_faults() {
    let scenario = quick(47, 18);
    let single = stream_fleet_with(&scenario, 1).to_json();
    for split in [0u64, 5, 16, 18] {
        let cp = checkpoint_fleet(&scenario, split, 2);
        let revived = FleetCheckpoint::from_text(&cp.to_text()).expect("round-trip");
        assert_eq!(revived, cp, "split at {split}");
        let resumed = resume_fleet(&revived, &scenario, 3).expect("identity matches");
        assert_eq!(resumed.to_json(), single, "split at {split}");
    }
}

#[test]
fn corrupted_checkpoints_are_rejected_by_name() {
    let scenario = quick(3, 6);
    let text = checkpoint_fleet(&scenario, 4, 2).to_text();

    // Empty file: not a checkpoint at all.
    let err = FleetCheckpoint::from_text("").unwrap_err();
    assert!(err.contains("not a cinder-fleet checkpoint"), "{err}");

    // One flipped hex digit in the stored checksum.
    let sum_at = text.rfind("checksum ").unwrap() + "checksum ".len();
    let swap = if text.as_bytes()[sum_at] == b'0' {
        "1"
    } else {
        "0"
    };
    let mut bad_sum = text.clone();
    bad_sum.replace_range(sum_at..sum_at + 1, swap);
    let err = FleetCheckpoint::from_text(&bad_sum).unwrap_err();
    assert!(err.contains("checksum mismatch"), "{err}");

    // One flipped bit in the body.
    let field_at = text.find("next_device ").unwrap() + "next_device ".len();
    let digit = text.as_bytes()[field_at];
    let swap = if digit == b'0' { "1" } else { "0" };
    let mut bad_body = text.clone();
    bad_body.replace_range(field_at..field_at + 1, swap);
    let err = FleetCheckpoint::from_text(&bad_body).unwrap_err();
    assert!(err.contains("checksum mismatch"), "{err}");

    // Truncation anywhere before the checksum line loses it.
    let truncated = &text[..text.len() / 2];
    let err = FleetCheckpoint::from_text(truncated).unwrap_err();
    assert!(err.contains("missing its checksum"), "{err}");
}

#[test]
fn fault_config_does_not_perturb_device_draws() {
    let with = quick(71, 12);
    let without = Scenario {
        faults: None,
        ..with.clone()
    };
    for id in 0..12u64 {
        let mut a = with.spec_for(id);
        let b = without.spec_for(id);
        assert!(a.faults.is_some() && b.faults.is_none());
        a.faults = None;
        assert_eq!(a, b, "device {id}: fault config leaked into the draws");
    }
}

/// The satellite regression: a killed offloader abandons in-flight
/// requests, and they must settle in the offload counters identically
/// whether the span was fast-forwarded or stepped. Accepted requests never
/// leak: each is completed, timed out, or still pending at the horizon.
#[test]
fn killed_offloaders_settle_their_requests() {
    let scenario = quick(29, 16);
    let mut saw_crashed_offloader = false;
    for spec in scenario.specs() {
        let mut on = spec.clone();
        on.fast_forward = true;
        let mut off = spec;
        off.fast_forward = false;
        let a = simulate_device(&on);
        let b = simulate_device(&off);
        assert_eq!(a, b, "device {}", on.id);
        if a.crashes > 0 && a.offload_attempts > 0 {
            saw_crashed_offloader = true;
            assert!(
                a.offload_completed + a.offload_timed_out <= a.offload_accepted,
                "settled requests exceed accepted: {a:?}"
            );
        }
    }
    assert!(
        saw_crashed_offloader,
        "the mixture must kill at least one offloading device"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole's determinism clause: random fault-heavy fleets
    /// simulate byte-identically with fast-forward on and off, and stream
    /// byte-identically across worker counts.
    #[test]
    fn faults_steady_vs_stepped_and_worker_counts(
        seed in 0u64..1_000,
        devices in 3u32..8,
        threads in 2usize..5,
    ) {
        let scenario = Scenario {
            horizon: SimDuration::from_secs(600),
            ..Scenario::fault_heavy("fault-diff", seed, devices)
        };
        for spec in scenario.specs() {
            let mut on = spec.clone();
            on.fast_forward = true;
            let mut off = spec;
            off.fast_forward = false;
            prop_assert_eq!(simulate_device(&on), simulate_device(&off));
        }
        let a = stream_fleet_with(&scenario, 1);
        let b = stream_fleet_with(&scenario, threads);
        prop_assert_eq!(a.summary.clone(), b.summary.clone());
        prop_assert_eq!(a.to_json(), b.to_json());
    }

    /// Turning intensity up never breaks purity: the same scenario with
    /// faults stripped is byte-identical to one built without them.
    #[test]
    fn fault_free_devices_ignore_the_config(seed in 0u64..1_000) {
        let faulty = Scenario {
            faults: Some(FaultConfig::heavy(seed ^ 0xfa)),
            horizon: SimDuration::from_secs(300),
            ..Scenario::mixed("purity", seed, 6)
        };
        let clean = Scenario { faults: None, ..faulty.clone() };
        for id in 0..6u64 {
            let mut spec = faulty.spec_for(id);
            spec.faults = None;
            prop_assert_eq!(simulate_device(&spec), simulate_device(&clean.spec_for(id)));
        }
    }
}
