//! Fleet-level properties of the cloud-offload economy.
//!
//! * An offload-heavy fleet — thousands of break-even decisions against a
//!   shared backend trace — is byte-identical across 1, 2, and 4 workers
//!   (property-tested): the backend is configuration, not shared mutable
//!   state, so sharding cannot leak into results.
//! * The differential satellite: a fleet with offload disabled carries
//!   all-zero offload telemetry, and an inert `offload` profile (no
//!   offloader devices in the mix) changes nothing byte-for-byte.
//! * Checkpoint/resume with offloaders in the mix: a split run equals a
//!   single run byte-for-byte, through the v2 text format.

use cinder_fleet::{
    checkpoint_fleet, resume_fleet, run_fleet_with, simulate_device, stream_fleet_with,
    FleetCheckpoint, Scenario, Workload,
};
use cinder_offload::OffloadProfile;
use cinder_sim::SimDuration;
use proptest::prelude::*;

/// An offload-heavy fleet short enough for tests: 300 s item cadence
/// against a 900 s horizon still gives every offloader several decisions.
fn offload_scenario(seed: u64, devices: u32, capacity: u32) -> Scenario {
    Scenario {
        horizon: SimDuration::from_secs(900),
        ..Scenario::offload_heavy("offload-prop", seed, devices, capacity)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Acceptance: offload-heavy fleet reports are byte-identical across
    /// 1, 2, and 4 workers — retained and streaming paths both.
    #[test]
    fn offload_heavy_fleet_is_worker_invariant(
        seed in 0u64..1_000,
        devices in 6u32..16,
        capacity in 1u32..64,
    ) {
        let scenario = offload_scenario(seed, devices, capacity);
        let single = run_fleet_with(&scenario, 1);
        let streamed = stream_fleet_with(&scenario, 1);
        for threads in [2usize, 4] {
            let sharded = run_fleet_with(&scenario, threads);
            prop_assert_eq!(&single.devices, &sharded.devices, "{} workers", threads);
            prop_assert_eq!(single.to_csv(), sharded.to_csv(), "{} workers", threads);
            prop_assert_eq!(single.to_json(), sharded.to_json(), "{} workers", threads);
            let sharded_stream = stream_fleet_with(&scenario, threads);
            prop_assert_eq!(&streamed.summary, &sharded_stream.summary, "{} workers", threads);
            prop_assert_eq!(streamed.to_json(), sharded_stream.to_json(), "{} workers", threads);
        }
    }
}

/// The economy shows up in the aggregates: a responsive backend completes
/// requests, the latency distribution is populated, and joules-per-request
/// is a real price. Retained and streaming tallies agree.
#[test]
fn offload_heavy_summary_prices_the_economy() {
    let scenario = offload_scenario(7, 16, 64);
    let report = run_fleet_with(&scenario, 4);
    let summary = report.summary();
    assert!(summary.offload_attempts > 0, "{}", report.to_json());
    assert!(summary.offload_completed > 0, "{}", report.to_json());
    assert!(
        summary.offload_accepted >= summary.offload_completed,
        "{}",
        report.to_json()
    );
    let lat = summary.offload_latency_s.expect("completed requests");
    assert!(lat.mean > 0.0 && lat.p99 >= lat.p50, "{lat:?}");
    assert!(
        summary.joules_per_request > 0.0,
        "remote work costs radio energy: {}",
        report.to_json()
    );

    let streamed = stream_fleet_with(&scenario, 4).summary;
    assert_eq!(
        summary.offload_attempts as u128,
        streamed.offload_attempts()
    );
    assert_eq!(
        summary.offload_completed as u128,
        streamed.offload_completed()
    );
    assert_eq!(
        summary.offload_rejected as u128,
        streamed.offload_rejected()
    );
    assert_eq!(
        summary.offload_timed_out as u128,
        streamed.offload_timed_out()
    );
    assert!((summary.joules_per_request - streamed.joules_per_request()).abs() < 1e-6);
}

/// The saturation feedback loop reaches the aggregates: shrinking the
/// backend drives devices back to local compute — fewer completions, and
/// the ones that do land see worse latency.
#[test]
fn shrinking_the_backend_pushes_work_local() {
    let wide_report = run_fleet_with(&offload_scenario(11, 14, 64), 4);
    // Capacity 1 against a 100k-device mean-field load: the trace saturates,
    // the admission gate closes, and break-even prices items back to local.
    let narrow_scenario = Scenario {
        offload: Some(OffloadProfile {
            capacity: 1,
            queue_limit: 4,
            load_devices: 100_000,
            ..OffloadProfile::default()
        }),
        ..offload_scenario(11, 14, 1)
    };
    let narrow_report = run_fleet_with(&narrow_scenario, 4);
    let wide = wide_report.summary();
    let narrow = narrow_report.summary();
    assert!(
        narrow.offload_completed < wide.offload_completed,
        "narrow {} vs wide {}",
        narrow.offload_completed,
        wide.offload_completed
    );
    // Items keep completing either way — locally when the backend can't.
    // (Local compute is slower than a round trip, so a throttled device may
    // slip an item or two past the schedule; the fleet must stay close.)
    let ops = |r: &cinder_fleet::FleetReport| -> u64 { r.devices.iter().map(|d| d.ops).sum() };
    assert!(
        ops(&narrow_report) * 4 >= ops(&wide_report) * 3,
        "local fallback keeps items flowing: narrow {} vs wide {}",
        ops(&narrow_report),
        ops(&wide_report)
    );
}

/// Differential satellite: with offload disabled the new telemetry is
/// inert — every offload column is zero, the summary reports no economy,
/// and a profile with no offloader devices changes nothing byte-for-byte.
#[test]
fn offload_disabled_fleet_is_byte_identical_to_baseline() {
    let baseline = Scenario {
        horizon: SimDuration::from_secs(600),
        ..Scenario::mixed("no-offload", 29, 18)
    };
    assert!(
        baseline.offload.is_none(),
        "mixed() must not enable offload"
    );
    let report = run_fleet_with(&baseline, 4);
    for d in &report.devices {
        assert_eq!(
            (
                d.offload_attempts,
                d.offload_accepted,
                d.offload_completed,
                d.offload_rejected,
                d.offload_timed_out,
                d.offload_latency_us,
            ),
            (0, 0, 0, 0, 0, 0),
            "{d:?}"
        );
    }
    let summary = report.summary();
    assert_eq!(summary.offload_attempts, 0);
    assert!(summary.offload_latency_s.is_none());
    assert_eq!(summary.joules_per_request, 0.0);

    // An offload profile is pure configuration: with no offloader in the
    // mix it must not perturb a single byte of the fleet report.
    assert!(
        !baseline.mix.iter().any(|(w, _)| *w == Workload::Offloader),
        "mixed() must not schedule offloaders"
    );
    let inert = Scenario {
        offload: Some(OffloadProfile::default()),
        ..baseline.clone()
    };
    let with_profile = run_fleet_with(&inert, 4);
    assert_eq!(report.devices, with_profile.devices);
    assert_eq!(report.to_csv(), with_profile.to_csv());
    assert_eq!(report.to_json(), with_profile.to_json());
    assert_eq!(
        stream_fleet_with(&baseline, 3).to_json(),
        stream_fleet_with(&inert, 3).to_json()
    );
}

/// Offloaders ride the steady-state fast-forward bit-identically: a
/// blocked offload is a wake source the probe must respect, so turning
/// the fast-forward off cannot change a single report byte.
#[test]
fn offloaders_ride_fast_forward_byte_identically() {
    let scenario = offload_scenario(31, 10, 8);
    for spec in scenario.specs() {
        let mut on = spec.clone();
        on.fast_forward = true;
        let mut off = spec;
        off.fast_forward = false;
        assert_eq!(
            simulate_device(&on),
            simulate_device(&off),
            "device {}",
            on.id
        );
    }
}

/// Checkpoint satellite: split_run_equals_single_run with offloaders in
/// the mix — the v2 checkpoint carries the offload accumulators and the
/// latency channel, and the resumed run is byte-identical.
#[test]
fn split_run_equals_single_run_with_offloaders() {
    let scenario = offload_scenario(23, 18, 8);
    let single = stream_fleet_with(&scenario, 1);
    assert!(
        single.summary.offload_completed() > 0,
        "the mix must actually offload: {}",
        single.to_json()
    );
    for split in [0u64, 5, 11, 18] {
        let cp = checkpoint_fleet(&scenario, split, 2);
        let text = cp.to_text();
        assert!(
            text.starts_with(cinder_fleet::CHECKPOINT_FORMAT),
            "offload fields need the current checkpoint format: {}",
            text.lines().next().unwrap_or("")
        );
        let revived = FleetCheckpoint::from_text(&text).expect("round-trip");
        assert_eq!(revived, cp, "split at {split}");
        let resumed = resume_fleet(&revived, &scenario, 3).expect("identity matches");
        assert_eq!(resumed.to_json(), single.to_json(), "split at {split}");
        assert_eq!(resumed.summary, single.summary, "split at {split}");
    }
}
