//! Fleet-level property tests: the determinism contract of `cinder-fleet`.
//!
//! * Same fleet seed ⇒ byte-identical aggregate report — for *any* worker
//!   thread count (the sharded executor must not leak scheduling into
//!   results).
//! * Different fleet seeds ⇒ different fleets.
//! * The §9 data-plan scenario counts quota-exhausted devices coherently.

use cinder_fleet::{run_fleet_with, DataPlan, Scenario, Workload};
use cinder_sim::SimDuration;
use proptest::prelude::*;

/// A small but non-trivial fleet (short horizon keeps cases fast).
fn quick_scenario(seed: u64, devices: u32) -> Scenario {
    Scenario {
        horizon: SimDuration::from_secs(180),
        ..Scenario::mixed("prop", seed, devices)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn thread_count_never_changes_the_report(
        seed in 0u64..1_000,
        devices in 6u32..24,
        threads in 2usize..8,
    ) {
        let scenario = quick_scenario(seed, devices);
        let single = run_fleet_with(&scenario, 1);
        let sharded = run_fleet_with(&scenario, threads);
        prop_assert_eq!(single.devices.clone(), sharded.devices.clone());
        prop_assert_eq!(single.to_csv(), sharded.to_csv());
        prop_assert_eq!(single.to_json(), sharded.to_json());
    }

    #[test]
    fn same_seed_same_fleet(seed in 0u64..1_000) {
        let a = run_fleet_with(&quick_scenario(seed, 8), 2);
        let b = run_fleet_with(&quick_scenario(seed, 8), 3);
        prop_assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn different_seeds_differ(seed in 0u64..1_000) {
        let a = run_fleet_with(&quick_scenario(seed, 8), 2);
        let b = run_fleet_with(&quick_scenario(seed + 1, 8), 2);
        prop_assert_ne!(a.to_csv(), b.to_csv());
    }
}

/// The §9 study end-to-end with in-kernel accounting: a 5 MB plan survives
/// an hour of polling (no send ever blocks on bytes), a starvation plan
/// does not, and the aggregate count matches a per-device recount.
#[test]
fn data_plan_fleet_counts_exhausted_devices() {
    let generous = Scenario {
        horizon: SimDuration::from_secs(3_600),
        ..Scenario::data_plan("plan-5mb", 77, 12, 5_000_000)
    };
    let report = run_fleet_with(&generous, 4);
    let summary = report.summary();
    assert_eq!(summary.quota_exhausted, 0, "{}", report.to_json());
    assert_eq!(summary.bytes_blocked_sends, 0, "no send should block");
    assert!(
        report.devices.iter().all(|d| d.quota_remaining_bytes > 0),
        "every device should retain plan bytes"
    );

    let tiny = Scenario {
        horizon: SimDuration::from_secs(3_600),
        ..Scenario::data_plan("plan-tiny", 77, 12, 40_000)
    };
    let report = run_fleet_with(&tiny, 4);
    let summary = report.summary();
    let recount = report.devices.iter().filter(|d| d.quota_exhausted).count();
    assert_eq!(summary.quota_exhausted, recount);
    assert!(
        summary.quota_exhausted >= 6,
        "a 40 KB plan must die within the hour on most devices: {}",
        report.to_json()
    );
    assert!(
        summary.bytes_blocked_sends >= summary.quota_exhausted as u64,
        "every exhausted device held at least one send in the kernel"
    );
}

/// The plan-exhausted-mid-hour scenario the offline replay could not
/// express: exhaustion mid-run *changes device behaviour* — held sends
/// never reach the radio, so exhausted devices complete fewer polls and
/// move fewer bytes than the same fleet without a plan.
#[test]
fn mid_hour_exhaustion_throttles_the_fleet_online() {
    let horizon = SimDuration::from_secs(3_600);
    let capped = Scenario {
        horizon,
        ..Scenario::plan_exhausted_mid_hour("plan-mid-hour", 21, 10)
    };
    let free = Scenario {
        data_plan: None,
        ..capped.clone()
    };
    let capped_report = run_fleet_with(&capped, 4);
    let free_report = run_fleet_with(&free, 4);
    let summary = capped_report.summary();
    assert!(
        summary.quota_exhausted >= 8,
        "a half-hour plan must die mid-run on nearly every device: {}",
        capped_report.to_json()
    );
    let capped_ops: u64 = capped_report.devices.iter().map(|d| d.ops).sum();
    let free_ops: u64 = free_report.devices.iter().map(|d| d.ops).sum();
    assert!(
        capped_ops < free_ops * 3 / 4,
        "online exhaustion must cut fleet-wide polls: {capped_ops} vs {free_ops}"
    );
    let capped_bytes: u64 = capped_report.devices.iter().map(|d| d.net_bytes).sum();
    let free_bytes: u64 = free_report.devices.iter().map(|d| d.net_bytes).sum();
    assert!(
        capped_bytes < free_bytes,
        "held sends never reach the radio: {capped_bytes} vs {free_bytes}"
    );
    // The remaining balances are small (below one poll pair) but the plan
    // never goes materially negative: only reply bytes may overdraw.
    for d in capped_report.devices.iter().filter(|d| d.quota_exhausted) {
        assert!(
            d.quota_remaining_bytes < 13_500,
            "exhausted device retains less than one poll pair: {d:?}"
        );
    }
}

/// The acceptance sweep for the peripheral refactor: a scenario mixing
/// *every* workload tag — the paper's §5/§6 studies plus `navigator` and
/// `screen-on` — yields byte-identical fleet reports at 1, 2, and 4
/// workers, with the peripheral drains and forced shutdowns inside the
/// comparison.
#[test]
fn all_workload_tags_are_thread_invariant() {
    let scenario = Scenario {
        horizon: SimDuration::from_secs(900),
        ..Scenario::all_workloads("all-tags", 33, 20)
    };
    let tags: std::collections::BTreeSet<&str> =
        scenario.specs().iter().map(|d| d.workload.tag()).collect();
    assert_eq!(tags.len(), Workload::ALL.len(), "mixture misses a tag");
    let single = run_fleet_with(&scenario, 1);
    for threads in [2usize, 4] {
        let sharded = run_fleet_with(&scenario, threads);
        assert_eq!(single.devices, sharded.devices, "{threads} workers");
        assert_eq!(single.to_csv(), sharded.to_csv(), "{threads} workers");
        assert_eq!(single.to_json(), sharded.to_json(), "{threads} workers");
    }
    let summary = single.summary();
    assert!(
        summary.peripheral_energy_j > 100.0,
        "peripheral devices must burn real energy: {}",
        single.to_json()
    );
}

/// Peripheral telemetry has the right structure: navigators burn GPS (and
/// no backlight), screen-on browsers the reverse, and a rate-starved
/// peripheral fleet records forced shutdowns.
#[test]
fn peripheral_telemetry_reflects_workload_structure() {
    let scenario = Scenario {
        horizon: SimDuration::from_secs(1_800),
        ..Scenario::peripheral_heavy("periph", 19, 20)
    };
    let report = run_fleet_with(&scenario, 4);
    for d in &report.devices {
        match Workload::from_tag(d.workload) {
            Some(Workload::Navigator) => {
                assert!(d.gps_energy_uj > 0, "{d:?}");
                assert_eq!(d.backlight_energy_uj, 0, "{d:?}");
                assert!(d.ops > 0, "a navigator completes fixes: {d:?}");
            }
            Some(Workload::ScreenOn) => {
                assert!(d.backlight_energy_uj > 0, "{d:?}");
                assert_eq!(d.gps_energy_uj, 0, "{d:?}");
                assert!(d.ops > 0, "a browser renders pages: {d:?}");
            }
            _ => {
                assert_eq!(d.backlight_energy_uj + d.gps_energy_uj, 0, "{d:?}");
            }
        }
    }
    // The summary's totals match a per-device recount exactly.
    let summary = report.summary();
    let recount: u64 = report
        .devices
        .iter()
        .map(|d| d.backlight_shutdowns + d.gps_shutdowns)
        .sum();
    assert_eq!(summary.forced_shutdowns, recount);
}

/// Mixture landmarks survive aggregation: coop pollers activate the radio
/// less often than uncoop ones on average, and spinners starve.
#[test]
fn aggregate_telemetry_reflects_workload_structure() {
    let scenario = Scenario {
        horizon: SimDuration::from_secs(1_800),
        ..Scenario::mixed("structure", 5, 30)
    };
    let report = run_fleet_with(&scenario, 4);
    let mean = |tag: &str, f: &dyn Fn(&cinder_fleet::DeviceReport) -> f64| -> f64 {
        let xs: Vec<f64> = report
            .devices
            .iter()
            .filter(|d| d.workload == tag)
            .map(|d| f(&d))
            .collect();
        assert!(!xs.is_empty(), "no {tag} devices in the mixture");
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let coop = mean(Workload::Pollers { coop: true }.tag(), &|d| {
        d.radio_activations as f64
    });
    let uncoop = mean(Workload::Pollers { coop: false }.tag(), &|d| {
        d.radio_activations as f64
    });
    assert!(
        coop < uncoop,
        "pooling must reduce mean activations: coop {coop} vs uncoop {uncoop}"
    );
    let spinner_starved = mean(Workload::Spinner.tag(), &|d| d.starved_s);
    assert!(
        spinner_starved > 200.0,
        "throttled hogs must starve: {spinner_starved}"
    );
}

/// `DataPlan` devices account their quotas in-kernel identically no matter
/// how the executor shards them.
#[test]
fn quota_accounting_is_thread_invariant() {
    let scenario = Scenario {
        horizon: SimDuration::from_secs(1_200),
        ..Scenario::data_plan("plan-shard", 13, 10, 60_000)
    };
    let a = run_fleet_with(&scenario, 1);
    let b = run_fleet_with(&scenario, 5);
    assert_eq!(a.devices, b.devices);
    assert_eq!(
        a.devices
            .iter()
            .map(|d| d.quota_remaining_bytes)
            .sum::<i64>(),
        b.devices
            .iter()
            .map(|d| d.quota_remaining_bytes)
            .sum::<i64>()
    );
    let _ = DataPlan { bytes: 0 }; // type is part of the public surface
}
