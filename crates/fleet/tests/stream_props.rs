//! Streaming-aggregation and fast-forward properties: the PR's three-way
//! byte-identity contract.
//!
//! * Streaming summaries are byte-identical for any worker count (exact
//!   commutative merges).
//! * A checkpointed split run — including a serialise/parse round-trip of
//!   the checkpoint — equals a single run byte-for-byte.
//! * Fast-forward on vs off yields byte-identical per-device reports for
//!   random workload mixtures (peripheral energy and forced shutdowns
//!   included in the comparison, since they're `DeviceReport` fields).
//! * A device's report does not depend on fleet size or executor chunking.

use cinder_fleet::{
    checkpoint_fleet, resume_fleet, run_fleet_with, simulate_device, stream_fleet_with,
    FleetCheckpoint, Scenario,
};
use cinder_sim::SimDuration;
use proptest::prelude::*;

fn quick(seed: u64, devices: u32) -> Scenario {
    Scenario {
        horizon: SimDuration::from_secs(180),
        ..Scenario::mixed("stream-prop", seed, devices)
    }
}

#[test]
fn streaming_is_worker_invariant() {
    let scenario = Scenario {
        horizon: SimDuration::from_secs(600),
        ..Scenario::all_workloads("stream-workers", 41, 22)
    };
    let one = stream_fleet_with(&scenario, 1);
    for threads in [2usize, 4] {
        let sharded = stream_fleet_with(&scenario, threads);
        assert_eq!(one.summary, sharded.summary, "{threads} workers");
        assert_eq!(one.to_json(), sharded.to_json(), "{threads} workers");
        assert_eq!(
            one.histograms_csv(),
            sharded.histograms_csv(),
            "{threads} workers"
        );
    }
}

#[test]
fn streaming_totals_match_the_retained_report() {
    let scenario = Scenario {
        horizon: SimDuration::from_secs(600),
        ..Scenario::all_workloads("stream-vs-retained", 17, 18)
    };
    let retained = run_fleet_with(&scenario, 3).summary();
    let streamed = stream_fleet_with(&scenario, 3).summary;
    assert_eq!(retained.devices as u64, streamed.devices);
    assert_eq!(retained.quota_exhausted as u64, streamed.quota_exhausted());
    assert_eq!(
        retained.bytes_blocked_sends as u128,
        streamed.bytes_blocked_sends()
    );
    assert_eq!(retained.devices_in_debt as u64, streamed.devices_in_debt());
    assert_eq!(
        retained.forced_shutdowns as u128,
        streamed.forced_shutdowns()
    );
    // Integer-backed totals agree with the retained float sums.
    assert!((retained.fleet_energy_j - streamed.fleet_energy_j()).abs() < 1e-6);
    assert!((retained.peripheral_energy_j - streamed.peripheral_energy_j()).abs() < 1e-6);
    let lt_retained = retained.lifetime_h.expect("non-empty fleet");
    let lt_streamed = streamed.lifetime_h.summary().expect("non-empty fleet");
    // min/max/mean are exact in both paths.
    assert_eq!(lt_retained.min, lt_streamed.min);
    assert_eq!(lt_retained.max, lt_streamed.max);
    assert!((lt_retained.mean - lt_streamed.mean).abs() < 1e-5);
    // Percentiles are histogram estimates: within one bin of exact, and
    // inside the exact envelope.
    let bin_h = 1_000.0 / 256.0;
    assert!((lt_retained.p50 - lt_streamed.p50).abs() <= bin_h);
    assert!((lt_retained.p99 - lt_streamed.p99).abs() <= bin_h);
    assert!(lt_streamed.p50 >= lt_streamed.min && lt_streamed.p99 <= lt_streamed.max);
}

#[test]
fn split_run_equals_single_run_byte_for_byte() {
    let scenario = quick(23, 20);
    let single = stream_fleet_with(&scenario, 1).to_json();
    for split in [0u64, 7, 16, 20] {
        // Checkpoint after `split` devices, push through the text format,
        // resume in a "fresh process".
        let cp = checkpoint_fleet(&scenario, split, 2);
        let revived = FleetCheckpoint::from_text(&cp.to_text()).expect("round-trip");
        assert_eq!(revived, cp, "split at {split}");
        let resumed = resume_fleet(&revived, &scenario, 3).expect("identity matches");
        assert_eq!(resumed.to_json(), single, "split at {split}");
        assert_eq!(
            resumed.summary,
            stream_fleet_with(&scenario, 1).summary,
            "split at {split}"
        );
    }
}

/// Satellite: per-device jitter depends only on (fleet seed, device id) —
/// device `i`'s report is byte-identical whether it sits in a fleet of 6
/// or 40, and wherever executor chunk boundaries fall.
#[test]
fn device_report_is_independent_of_fleet_size_and_chunking() {
    let big = quick(99, 40);
    let small = quick(99, 6);
    // Same (seed, id) ⇒ same spec, regardless of scenario.devices.
    for id in 0..6u64 {
        assert_eq!(big.spec_for(id), small.spec_for(id), "device {id}");
    }
    // The executor's chunked, multi-worker run reproduces the solo
    // simulation of each device bit-for-bit (chunk size is 16, so a
    // 40-device fleet exercises interior and ragged chunk boundaries).
    let report = run_fleet_with(&big, 4);
    for id in [0usize, 5, 15, 16, 31, 39] {
        assert_eq!(
            report.devices.get(id),
            simulate_device(&big.spec_for(id as u64)),
            "device {id}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: the `steady_vs_stepped` differential — random workload
    /// mixtures simulate byte-identically with fast-forward on and off.
    #[test]
    fn steady_vs_stepped(
        seed in 0u64..1_000,
        devices in 3u32..8,
        family in 0usize..5,
        long in any::<bool>(),
    ) {
        let horizon_s = if long { 480u64 } else { 240 };
        let base = match family {
            0 => Scenario::mixed("diff", seed, devices),
            1 => Scenario::all_workloads("diff", seed, devices),
            2 => Scenario::peripheral_heavy("diff", seed, devices),
            3 => Scenario::steady_heavy("diff", seed, devices),
            _ => Scenario::policy_heavy("diff", seed, devices),
        };
        let scenario = Scenario {
            horizon: SimDuration::from_secs(horizon_s),
            ..base
        };
        for spec in scenario.specs() {
            let mut on = spec.clone();
            on.fast_forward = true;
            let mut off = spec;
            off.fast_forward = false;
            let fast = simulate_device(&on);
            let stepped = simulate_device(&off);
            // Full struct equality: peripheral energy and forced-shutdown
            // counters are fields of the report.
            prop_assert_eq!(fast, stepped, "device {}", on.id);
        }
    }

    /// Streaming worker-invariance across random fleets (the quick
    /// proptest companion to the fixed-scenario test above).
    #[test]
    fn streaming_worker_invariance(
        seed in 0u64..1_000,
        devices in 4u32..16,
        threads in 2usize..6,
    ) {
        let scenario = quick(seed, devices);
        let a = stream_fleet_with(&scenario, 1);
        let b = stream_fleet_with(&scenario, threads);
        prop_assert_eq!(a.summary.clone(), b.summary.clone());
        prop_assert_eq!(a.to_json(), b.to_json());
    }
}
