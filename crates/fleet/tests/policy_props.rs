//! Policy-engine fleet properties: the user-aware policy layer must ride
//! the determinism contract unchanged.
//!
//! * `policy_heavy` fleets are byte-identical across 1/2/4 workers, in
//!   both the retained and the streaming path.
//! * Fast-forward on vs off yields byte-identical per-device reports with
//!   a policy ticking (a pending re-rate must bound the steady epoch).
//! * A checkpointed split run with policies enabled equals a single run
//!   byte-for-byte through the v4 text format.
//! * Old checkpoint format versions (v1–v3) are rejected with an error
//!   naming both versions.
//! * Adding a policy to a scenario must not perturb the per-device RNG
//!   draws (battery, jitter, kernel seed are drawn before the config is
//!   copied in).

use cinder_fleet::{
    checkpoint_fleet, resume_fleet, run_fleet_with, simulate_device, stream_fleet_with,
    FleetCheckpoint, PolicyConfig, PolicyVariant, Scenario, CHECKPOINT_FORMAT,
};
use cinder_sim::SimDuration;
use proptest::prelude::*;

fn quick(seed: u64, devices: u32) -> Scenario {
    Scenario {
        horizon: SimDuration::from_secs(600),
        ..Scenario::policy_heavy("policy-prop", seed, devices)
    }
}

#[test]
fn policy_fleet_is_worker_invariant() {
    let scenario = quick(31, 24);
    let retained_one = run_fleet_with(&scenario, 1);
    let streamed_one = stream_fleet_with(&scenario, 1);
    assert!(
        streamed_one.summary.policy_rerates() > 0,
        "a user-aware fleet must actually re-rate taps"
    );
    for threads in [2usize, 4] {
        let retained = run_fleet_with(&scenario, threads);
        assert_eq!(retained_one, retained, "{threads} workers (retained)");
        assert_eq!(
            retained_one.to_csv(),
            retained.to_csv(),
            "{threads} workers (CSV)"
        );
        let streamed = stream_fleet_with(&scenario, threads);
        assert_eq!(
            streamed_one.summary, streamed.summary,
            "{threads} workers (streamed)"
        );
        assert_eq!(
            streamed_one.to_json(),
            streamed.to_json(),
            "{threads} workers (JSON)"
        );
    }
}

#[test]
fn split_run_equals_single_run_with_policies() {
    let scenario = quick(47, 18);
    let single = stream_fleet_with(&scenario, 1).to_json();
    for split in [0u64, 5, 16, 18] {
        let cp = checkpoint_fleet(&scenario, split, 2);
        let revived = FleetCheckpoint::from_text(&cp.to_text()).expect("round-trip");
        assert_eq!(revived, cp, "split at {split}");
        let resumed = resume_fleet(&revived, &scenario, 3).expect("identity matches");
        assert_eq!(resumed.to_json(), single, "split at {split}");
    }
}

#[test]
fn old_checkpoint_versions_are_rejected_by_name() {
    let scenario = quick(3, 4);
    let current = checkpoint_fleet(&scenario, 2, 1).to_text();
    assert!(current.starts_with(CHECKPOINT_FORMAT));
    for old in ["v1", "v2", "v3"] {
        // A real current-format body under an old header: the parser must
        // refuse at the version line, not limp through the layout.
        let downgraded = current.replacen("v4", old, 1);
        let err = FleetCheckpoint::from_text(&downgraded).unwrap_err();
        assert!(
            err.contains(old) && err.contains("v4"),
            "error must name both versions: {err}"
        );
    }
}

#[test]
fn policy_config_does_not_perturb_device_draws() {
    let with = quick(71, 12);
    let without = Scenario {
        policy: None,
        ..with.clone()
    };
    for id in 0..12u64 {
        let mut a = with.spec_for(id);
        let b = without.spec_for(id);
        assert!(a.policy.is_some() && b.policy.is_none());
        a.policy = None;
        assert_eq!(a, b, "device {id}: policy config leaked into the draws");
    }
}

#[test]
fn variant_none_matches_no_policy_kernel_behaviour() {
    // `Some(Variant::None)` runs the tick loop (and generates presence
    // telemetry) but must leave the kernel untouched: every
    // kernel-observed field equals the policy-free run.
    let base = quick(53, 6);
    let none = Scenario {
        policy: Some(PolicyConfig::new(
            PolicyVariant::None,
            SimDuration::from_secs(3_600),
        )),
        ..base.clone()
    };
    let bare = Scenario {
        policy: None,
        ..base
    };
    for id in 0..6u64 {
        let mut ticked = simulate_device(&none.spec_for(id));
        let plain = simulate_device(&bare.spec_for(id));
        assert_eq!(ticked.policy_rerates, 0, "device {id}");
        assert_eq!(ticked.policy_demotions, 0, "device {id}");
        // Presence telemetry and the target verdict are the only deltas.
        ticked.presence_active_s = 0;
        ticked.presence_ambient_s = 0;
        ticked.presence_away_s = 0;
        ticked.presence_asleep_s = 0;
        ticked.lifetime_target_hit = false;
        assert_eq!(ticked, plain, "device {id}");
    }
}

#[test]
fn user_aware_policy_extends_lifetime_over_no_policy() {
    let aware = quick(11, 16);
    let bare = Scenario {
        policy: None,
        ..aware.clone()
    };
    let with = stream_fleet_with(&aware, 2).summary;
    let without = stream_fleet_with(&bare, 2).summary;
    assert!(
        with.fleet_energy_j() < without.fleet_energy_j(),
        "throttling must save energy: {} vs {} J",
        with.fleet_energy_j(),
        without.fleet_energy_j()
    );
    assert!(with.policy_rerates() > 0);
    // Whole-second truncation loses at most a second per presence
    // segment, so the sum sits just under devices × horizon.
    let p = with.presence_s();
    let total: u128 = p.iter().sum();
    assert!(
        (16 * 600 * 95 / 100..=16 * 600).contains(&total),
        "presence seconds must cover the device-horizons: {p:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole's determinism clause: with a policy ticking, random
    /// `policy_heavy` fleets simulate byte-identically with fast-forward
    /// on and off, and stream byte-identically across worker counts.
    #[test]
    fn policy_steady_vs_stepped_and_worker_counts(
        seed in 0u64..1_000,
        devices in 3u32..8,
        threads in 2usize..5,
    ) {
        let scenario = Scenario {
            horizon: SimDuration::from_secs(300),
            ..Scenario::policy_heavy("policy-diff", seed, devices)
        };
        for spec in scenario.specs() {
            let mut on = spec.clone();
            on.fast_forward = true;
            let mut off = spec;
            off.fast_forward = false;
            prop_assert_eq!(simulate_device(&on), simulate_device(&off));
        }
        let a = stream_fleet_with(&scenario, 1);
        let b = stream_fleet_with(&scenario, threads);
        prop_assert_eq!(a.summary.clone(), b.summary.clone());
        prop_assert_eq!(a.to_json(), b.to_json());
    }
}
