//! Experiment output: printable rows plus CSV traces.

use std::fmt::Write as _;
use std::path::PathBuf;

use cinder_sim::TraceSet;

/// One experiment's complete output.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id (e.g. `fig13`).
    pub id: String,
    /// Human title, matching the paper's caption.
    pub title: String,
    /// Paper-shaped printable lines (table rows / series summaries).
    pub rows: Vec<String>,
    /// Key metrics as `(name, value)` pairs, quoted in `EXPERIMENTS.md`.
    pub summary: Vec<(String, String)>,
    /// Full traces for re-plotting.
    pub traces: TraceSet,
}

impl ExperimentOutput {
    /// Creates an empty output shell.
    pub fn new(id: &str, title: &str) -> Self {
        ExperimentOutput {
            id: id.to_string(),
            title: title.to_string(),
            rows: Vec::new(),
            summary: Vec::new(),
            traces: TraceSet::new(),
        }
    }

    /// Appends a printable row.
    pub fn row(&mut self, line: impl Into<String>) {
        self.rows.push(line.into());
    }

    /// Appends a summary metric.
    pub fn metric(&mut self, name: &str, value: impl std::fmt::Display) {
        self.summary.push((name.to_string(), value.to_string()));
    }

    /// Renders the experiment as text (what the binary prints).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "=== {} — {} ===", self.id, self.title);
        for row in &self.rows {
            let _ = writeln!(s, "{row}");
        }
        if !self.summary.is_empty() {
            let _ = writeln!(s, "--- summary ---");
            for (k, v) in &self.summary {
                let _ = writeln!(s, "{k}: {v}");
            }
        }
        s
    }

    /// The workspace-level output directory (`target/experiments`).
    pub fn out_dir() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments")
    }

    /// Writes the traces as CSVs under [`ExperimentOutput::out_dir`].
    pub fn save_csv(&self) -> std::io::Result<()> {
        if self.traces.is_empty() {
            return Ok(());
        }
        self.traces.write_csv_dir(&Self::out_dir(), &self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_rows_and_summary() {
        let mut o = ExperimentOutput::new("figX", "demo");
        o.row("a,b,c");
        o.metric("total", "42 J");
        let s = o.render();
        assert!(s.contains("figX"));
        assert!(s.contains("a,b,c"));
        assert!(s.contains("total: 42 J"));
    }

    #[test]
    fn empty_traces_save_is_noop() {
        let o = ExperimentOutput::new("figY", "demo");
        o.save_csv().unwrap();
    }
}
