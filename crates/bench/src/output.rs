//! Experiment output: printable rows, summary JSON, and CSV traces.
//!
//! Every writer on this path returns [`std::io::Result`] — a read-only
//! `target/` directory (sandboxed CI, shared build caches) surfaces as a
//! diagnosable error at the call site, never a panic.

use std::fmt::Write as _;
use std::path::PathBuf;

use cinder_sim::{json_string, TraceSet};

/// One experiment's complete output.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id (e.g. `fig13`).
    pub id: String,
    /// Human title, matching the paper's caption.
    pub title: String,
    /// Paper-shaped printable lines (table rows / series summaries).
    pub rows: Vec<String>,
    /// Key metrics as `(name, value)` pairs, quoted in `EXPERIMENTS.md`.
    pub summary: Vec<(String, String)>,
    /// Full traces for re-plotting.
    pub traces: TraceSet,
}

impl ExperimentOutput {
    /// Creates an empty output shell.
    pub fn new(id: &str, title: &str) -> Self {
        ExperimentOutput {
            id: id.to_string(),
            title: title.to_string(),
            rows: Vec::new(),
            summary: Vec::new(),
            traces: TraceSet::new(),
        }
    }

    /// Appends a printable row.
    pub fn row(&mut self, line: impl Into<String>) {
        self.rows.push(line.into());
    }

    /// Appends a summary metric.
    pub fn metric(&mut self, name: &str, value: impl std::fmt::Display) {
        self.summary.push((name.to_string(), value.to_string()));
    }

    /// Renders the experiment as text (what the binary prints).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "=== {} — {} ===", self.id, self.title);
        for row in &self.rows {
            let _ = writeln!(s, "{row}");
        }
        if !self.summary.is_empty() {
            let _ = writeln!(s, "--- summary ---");
            for (k, v) in &self.summary {
                let _ = writeln!(s, "{k}: {v}");
            }
        }
        s
    }

    /// The output directory: `$CINDER_EXPERIMENTS_DIR` if set, otherwise
    /// the workspace-level `target/experiments`. The override lets runs
    /// escape a read-only `target/` instead of failing.
    pub fn out_dir() -> PathBuf {
        match std::env::var_os("CINDER_EXPERIMENTS_DIR") {
            Some(dir) => PathBuf::from(dir),
            None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments"),
        }
    }

    /// Writes the traces as CSVs under [`ExperimentOutput::out_dir`].
    pub fn save_csv(&self) -> std::io::Result<()> {
        self.save_csv_in(&Self::out_dir())
    }

    /// Writes the traces as CSVs under an explicit directory.
    pub fn save_csv_in(&self, dir: &std::path::Path) -> std::io::Result<()> {
        if self.traces.is_empty() {
            return Ok(());
        }
        self.traces.write_csv_dir(dir, &self.id)
    }

    /// The summary metrics as deterministic JSON (fixed key order, string
    /// values escaped).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_string(&self.id));
        let _ = writeln!(out, "  \"title\": {},", json_string(&self.title));
        out.push_str("  \"summary\": {");
        for (i, (k, v)) in self.summary.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}: {}", json_string(k), json_string(v));
        }
        if !self.summary.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Writes `<id>.json` (the summary metrics) under
    /// [`ExperimentOutput::out_dir`].
    pub fn save_json(&self) -> std::io::Result<()> {
        self.save_json_in(&Self::out_dir())
    }

    /// Writes `<id>.json` under an explicit directory.
    pub fn save_json_in(&self, dir: &std::path::Path) -> std::io::Result<()> {
        if self.summary.is_empty() {
            return Ok(());
        }
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.json", self.id)), self.to_json())
    }

    /// Writes every artefact (CSV traces + summary JSON) under
    /// [`ExperimentOutput::out_dir`], propagating the first I/O error.
    pub fn save_all(&self) -> std::io::Result<()> {
        let dir = Self::out_dir();
        self.save_csv_in(&dir)?;
        self.save_json_in(&dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_rows_and_summary() {
        let mut o = ExperimentOutput::new("figX", "demo");
        o.row("a,b,c");
        o.metric("total", "42 J");
        let s = o.render();
        assert!(s.contains("figX"));
        assert!(s.contains("a,b,c"));
        assert!(s.contains("total: 42 J"));
    }

    #[test]
    fn empty_traces_save_is_noop() {
        let o = ExperimentOutput::new("figY", "demo");
        o.save_csv().unwrap();
        o.save_json().unwrap();
    }

    #[test]
    fn json_escapes_and_orders_metrics() {
        let mut o = ExperimentOutput::new("figZ", "quo\"ted");
        o.metric("first", "1 J");
        o.metric("second", "line\nbreak");
        let j = o.to_json();
        assert!(j.contains("\"title\": \"quo\\\"ted\""));
        assert!(j.contains("\"second\": \"line\\u000abreak\""));
        assert!(j.find("first").unwrap() < j.find("second").unwrap());
        assert_eq!(o.to_json(), j, "rendering is deterministic");
    }

    #[test]
    fn unwritable_out_dir_is_an_error_not_a_panic() {
        let mut o = ExperimentOutput::new("figW", "demo");
        o.metric("total", "1 J");
        // Point the output at a path that cannot be a directory: a child of
        // an existing regular file.
        let file = std::env::temp_dir().join(format!("cinder_out_file_{}", std::process::id()));
        std::fs::write(&file, b"occupied").unwrap();
        let blocked = file.join("nested");
        let result = o.save_json_in(&blocked);
        std::fs::remove_file(&file).unwrap();
        assert!(result.is_err(), "writing under a file must fail cleanly");
    }
}
