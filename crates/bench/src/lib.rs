//! The experiment harness: regenerates every table and figure in the
//! Cinder paper's evaluation (§6) plus the §4 measurement study, printing
//! the same rows/series the paper reports and writing CSVs under
//! `target/experiments/`.
//!
//! Run one experiment or all of them:
//!
//! ```text
//! cargo run -p cinder-bench --bin experiments -- all
//! cargo run -p cinder-bench --bin experiments -- fig13
//! ```
//!
//! `cargo bench` also regenerates everything (bench target `figures`) and
//! runs criterion micro-benchmarks of the core abstractions (`perf`).
//!
//! We do not chase the absolute joules of 2011 hardware; the *shape* — who
//! wins, by what factor, where the crossovers are — is asserted in the
//! integration tests and recorded against the paper in `EXPERIMENTS.md`.

pub mod experiments;
pub mod output;

pub use output::ExperimentOutput;

/// All experiment ids, in paper order.
pub fn experiment_ids() -> Vec<&'static str> {
    vec![
        "power-model",
        "fig3",
        "fig4",
        "fig9",
        "fig10",
        "fig11",
        "fig12a",
        "fig12b",
        "fig13",
        "fig14",
        "fig-quota",
        "fig-offload",
        "fig-policy",
        "fig-faults",
        "table1",
        "ablation-ipc",
        "ablation-taps",
        "ablation-hoarding",
    ]
}

/// Runs an experiment by id.
///
/// # Panics
///
/// Panics on an unknown id (callers validate against
/// [`experiment_ids`]).
pub fn run_experiment(id: &str) -> ExperimentOutput {
    match id {
        "power-model" => experiments::power_model::run(),
        "fig3" => experiments::fig3::run(),
        "fig4" => experiments::fig4::run(),
        "fig9" => experiments::fig9::run(),
        "fig10" => experiments::fig10_11::run_fig10(),
        "fig11" => experiments::fig10_11::run_fig11(),
        "fig12a" => experiments::fig12::run_a(),
        "fig12b" => experiments::fig12::run_b(),
        "fig13" => experiments::fig13::run(),
        "fig14" => experiments::fig14::run(),
        "fig-quota" => experiments::fig_quota::run(),
        "fig-offload" => experiments::fig_offload::run(),
        "fig-policy" => experiments::fig_policy::run(),
        "fig-faults" => experiments::fig_faults::run(),
        "table1" => experiments::table1::run(),
        "ablation-ipc" => experiments::ablation_ipc::run(),
        "ablation-taps" => experiments::ablation_taps::run(),
        "ablation-hoarding" => experiments::ablation_hoarding::run(),
        other => panic!("unknown experiment id: {other}"),
    }
}
