//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p cinder-bench --bin experiments -- all
//! cargo run --release -p cinder-bench --bin experiments -- fig13 table1
//! ```
//!
//! CSV series land in `target/experiments/`.

use cinder_bench::{experiment_ids, run_experiment, ExperimentOutput};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids = experiment_ids();
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ids.clone()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            if ids.contains(&a.as_str()) {
                sel.push(ids[ids.iter().position(|i| i == a).unwrap()]);
            } else {
                eprintln!("unknown experiment '{a}'; known: {}", ids.join(", "));
                std::process::exit(2);
            }
        }
        sel
    };
    for id in selected {
        let out = run_experiment(id);
        print!("{}", out.render());
        match out.save_csv() {
            Ok(()) if !out.traces.is_empty() => {
                println!(
                    "(traces written to {})",
                    ExperimentOutput::out_dir().display()
                );
            }
            Ok(()) => {}
            Err(e) => eprintln!("warning: could not write CSVs: {e}"),
        }
        println!();
    }
}
