//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p cinder-bench --bin experiments -- all
//! cargo run --release -p cinder-bench --bin experiments -- fig13 table1
//! ```
//!
//! CSV series land in `target/experiments/`.

use cinder_bench::{experiment_ids, run_experiment, ExperimentOutput};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids = experiment_ids();
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ids.clone()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            match ids.iter().find(|&&i| i == a) {
                Some(&id) => sel.push(id),
                None => {
                    eprintln!("unknown experiment '{a}'; known: {}", ids.join(", "));
                    std::process::exit(2);
                }
            }
        }
        sel
    };
    let mut failed = false;
    for id in selected {
        let out = run_experiment(id);
        print!("{}", out.render());
        match out.save_all() {
            Ok(()) if !out.traces.is_empty() || !out.summary.is_empty() => {
                println!(
                    "(artefacts written to {})",
                    ExperimentOutput::out_dir().display()
                );
            }
            Ok(()) => {}
            Err(e) => {
                failed = true;
                eprintln!(
                    "error: could not write artefacts for {id} under {}: {e} \
                     (set CINDER_EXPERIMENTS_DIR to a writable directory)",
                    ExperimentOutput::out_dir().display()
                );
            }
        }
        println!();
    }
    if failed {
        std::process::exit(1);
    }
}
