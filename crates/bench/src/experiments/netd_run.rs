//! Shared runner for the cooperative-vs-uncooperative radio experiments
//! (§6.4): Figs 13a/13b, Fig 14, and Table 1 are all views of these two
//! 1201-second runs.
//!
//! Workload: an RSS downloader polling every 60 s from t = 0 and a mail
//! checker polling every 60 s from t = 15. Each poller's tap is sized so it
//! could afford a radio power-up every two minutes on its own ("Enough
//! energy is allocated to each application to turn the radio on every two
//! minutes"): 125% × 9.5 J / 120 s ≈ 99 mW.

use cinder_apps::{PeriodicPoller, PollerLog};
use cinder_core::{Actor, RateSpec, ReserveId};
use cinder_kernel::{Kernel, KernelConfig};
use cinder_label::Label;
use cinder_net::{CoopNetd, UncoopStack};
use cinder_sim::{Energy, Power, Series, SimDuration, SimTime};

/// Experiment length (paper Table 1: 1201 s).
pub const RUN: SimDuration = SimDuration::from_secs(1201);

/// Per-poller tap: a power-up every two minutes, per the paper's setup.
pub const POLLER_TAP: Power = Power::from_microwatts(99_000);

/// Everything the three artifacts need from one run.
pub struct NetdRun {
    /// 200 ms-sampled total platform power ("measured" line of Fig 13).
    pub trace: Series,
    /// netd pool level at 1 Hz (Fig 14); empty for the uncoop run.
    pub pool: Series,
    /// Wall-clock length of the run.
    pub total_time: SimDuration,
    /// Total measured energy.
    pub total_energy: Energy,
    /// Time the radio spent active.
    pub active_time: SimDuration,
    /// Measured energy within the radio's active windows.
    pub active_energy: Energy,
    /// Radio power-up count.
    pub activations: u64,
    /// Completed poll sends.
    pub sends: usize,
}

/// Runs the workload over the chosen stack.
pub fn run(cooperative: bool) -> NetdRun {
    let mut k = Kernel::new(KernelConfig {
        seed: 13,
        meter_trace: true,
        ..KernelConfig::default()
    });
    if cooperative {
        let netd = CoopNetd::with_defaults(k.graph_mut());
        k.install_net(Box::new(netd));
    } else {
        k.install_net(Box::new(UncoopStack::new()));
    }
    let log = PollerLog::shared();
    let r_rss = tapped_reserve(&mut k, "rss");
    let r_mail = tapped_reserve(&mut k, "mail");
    k.spawn_unprivileged("rss", Box::new(PeriodicPoller::rss(log.clone())), r_rss);
    k.spawn_unprivileged("mail", Box::new(PeriodicPoller::mail(log.clone())), r_mail);

    let pool_reserve = k.net_pool_reserve();
    let mut pool = Series::new("netd_pool", "J");
    let end = SimTime::ZERO + RUN;
    let mut t = SimTime::ZERO;
    while t < end {
        t = (t + SimDuration::from_secs(1)).min(end);
        k.run_until(t);
        if let Some(p) = pool_reserve {
            let level = k
                .graph()
                .reserve(p)
                .map(|r| r.balance().as_joules_f64())
                .unwrap_or(0.0);
            pool.push(t, level);
        }
    }

    let trace = k.meter().trace().expect("meter trace enabled").clone();
    let windows = k.arm9().radio().active_windows(end);
    let active_energy = integrate_over_windows(&trace, &windows);
    let sends = log.borrow().sends.len();
    NetdRun {
        total_time: RUN,
        total_energy: k.meter().total_energy(),
        active_time: k.arm9().radio().total_active(end),
        active_energy,
        activations: k.arm9().radio().stats().activations,
        sends,
        trace,
        pool,
    }
}

fn tapped_reserve(k: &mut Kernel, name: &str) -> ReserveId {
    let kactor = Actor::kernel();
    let battery = k.battery();
    let g = k.graph_mut();
    let r = g
        .create_reserve(&kactor, name, Label::default_label())
        .unwrap();
    g.create_tap(
        &kactor,
        &format!("{name}-tap"),
        battery,
        r,
        RateSpec::constant(POLLER_TAP),
        Label::default_label(),
    )
    .unwrap();
    r
}

/// Step-integrates a sampled power trace (watts) over time windows,
/// returning joules — the same thing the paper does with its Agilent trace.
pub fn integrate_over_windows(trace: &Series, windows: &[(SimTime, SimTime)]) -> Energy {
    let mut joules = 0.0;
    let pts = trace.points();
    for w in pts.windows(2) {
        let (t0, p0) = w[0];
        let (t1, _) = w[1];
        let inside = windows.iter().any(|&(a, b)| t0 >= a && t1 <= b);
        if inside {
            joules += p0 * (t1.as_secs_f64() - t0.as_secs_f64());
        }
    }
    Energy::from_joules_f64(joules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integration_over_windows_is_exact_for_steps() {
        let mut s = Series::new("p", "W");
        for i in 0..=10 {
            s.push(SimTime::from_secs(i), if i < 5 { 2.0 } else { 1.0 });
        }
        let e = integrate_over_windows(&s, &[(SimTime::ZERO, SimTime::from_secs(5))]);
        assert_eq!(e, Energy::from_joules(10));
        let e2 = integrate_over_windows(&s, &[(SimTime::from_secs(5), SimTime::from_secs(10))]);
        assert_eq!(e2, Energy::from_joules(5));
    }
}
