//! Ablation (§5.2.2): the two anti-hoarding designs.
//!
//! A malicious thread "can sidestep taxation by creating a new reserve with
//! no proportional taps and periodically transferring resources to it".
//! Cinder's shipped defence is the global half-life decay; the paper also
//! sketches a "more fundamental solution" (strict mode): `reserve_clone`
//! plus refusing transfers that would slow a reserve's drain. This
//! experiment runs the attack against both.

use cinder_core::{Actor, DecayConfig, GraphConfig, GraphError, RateSpec, ResourceGraph};
use cinder_label::{Label, Level, PrivilegeSet};
use cinder_sim::{Energy, Power, SimDuration, SimTime};

use crate::output::ExperimentOutput;

/// The attack under the default decay design: the stash fills but halves
/// every 10 minutes, bounding long-term hoarding.
fn attack_with_decay() -> (f64, f64) {
    let mut g = ResourceGraph::with_config(
        Energy::from_joules(15_000),
        GraphConfig {
            decay: Some(DecayConfig::paper_default()),
            ..GraphConfig::default()
        },
    );
    let k = Actor::kernel();
    let battery = g.battery();
    let taxed = g
        .create_reserve(&k, "taxed", Label::default_label())
        .unwrap();
    let stash = g
        .create_reserve(&k, "stash", Label::default_label())
        .unwrap();
    g.create_tap(
        &k,
        "feed",
        battery,
        taxed,
        RateSpec::constant(Power::from_milliwatts(100)),
        Label::default_label(),
    )
    .unwrap();
    // The backward tax the attacker wants to dodge.
    g.create_tap(
        &k,
        "tax",
        taxed,
        battery,
        RateSpec::proportional(0.1),
        Label::default_label(),
    )
    .unwrap();
    let attacker = Actor::unprivileged();
    let mut peak = 0.0f64;
    let mut now = SimTime::ZERO;
    // Sweep everything into the stash every second for an hour.
    for _ in 0..3_600 {
        now += SimDuration::from_secs(1);
        g.flow_until(now);
        let level = g.level(&k, taxed).unwrap().clamp_non_negative();
        if level.is_positive() {
            let _ = g.transfer(&attacker, taxed, stash, level);
        }
        peak = peak.max(g.level(&k, stash).unwrap().as_joules_f64());
    }
    let end = g.level(&k, stash).unwrap().as_joules_f64();
    (peak, end)
}

/// The attack under strict mode: the very first sidestep transfer is
/// refused because the stash drains slower than the taxed reserve.
fn attack_with_strict_mode() -> GraphError {
    let mut g = ResourceGraph::with_config(
        Energy::from_joules(15_000),
        GraphConfig {
            decay: None,
            strict_anti_hoarding: true,
            ..GraphConfig::default()
        },
    );
    let k = Actor::kernel();
    let battery = g.battery();
    let cat = cinder_label::Category::new(1);
    let browser = Actor::new(Label::default_label(), PrivilegeSet::with(&[cat]));
    let taxed = g
        .create_reserve(&k, "taxed", Label::default_label())
        .unwrap();
    let stash = g
        .create_reserve(&k, "stash", Label::default_label())
        .unwrap();
    g.transfer(&k, battery, taxed, Energy::from_joules(100))
        .unwrap();
    g.create_tap(
        &browser,
        "tax",
        taxed,
        battery,
        RateSpec::proportional(0.1),
        Label::with(&[(cat, Level::L0)]),
    )
    .unwrap();
    let attacker = Actor::unprivileged();
    g.transfer(&attacker, taxed, stash, Energy::from_joules(50))
        .unwrap_err()
}

/// Runs the attack against both designs.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ablation-hoarding",
        "anti-hoarding: global decay vs strict reserve_clone mode (paper §5.2.2)",
    );
    let (peak, end) = attack_with_decay();
    out.row("decay mode:  attacker sweeps a 100 mW feed into an untaxed stash for 1 h".to_string());
    out.row(format!(
        "             stash peaks at {peak:.1} J but holds only {end:.1} J at the end"
    ));
    out.row(
        "             (50%/10 min decay caps hoarding at ≈ rate × half-life / ln 2 ≈ 86 J)"
            .to_string(),
    );
    let err = attack_with_strict_mode();
    out.row(format!(
        "strict mode: the first sidestep transfer fails immediately: {err}"
    ));
    out.metric("decay_stash_peak_j", format!("{peak:.2}"));
    out.metric("decay_stash_end_j", format!("{end:.2}"));
    out.metric(
        "strict_blocks_immediately",
        matches!(err, GraphError::StrictModeViolation),
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_designs_contain_the_attack() {
        let out = super::run();
        let get = |k: &str| -> f64 {
            out.summary
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.parse().unwrap())
                .unwrap()
        };
        // An hour of sweeping a 100 mW feed is 360 J of income; the decay
        // keeps the stash bounded far below that (~86 J steady state).
        assert!(get("decay_stash_peak_j") < 120.0);
        assert!(get("decay_stash_end_j") < 100.0);
        assert_eq!(
            out.summary
                .iter()
                .find(|(n, _)| n == "strict_blocks_immediately")
                .map(|(_, v)| v.as_str()),
            Some("true")
        );
    }
}
