//! Figure 12: foreground/background scheduling via task-manager-controlled
//! taps. (a) the foreground tap provides exactly the CPU's 137 mW; (b) an
//! over-provisioned 300 mW tap lets apps bank energy in the foreground and
//! burn it later — the hoarding that motivates the global decay (§6.3).

use cinder_apps::task_manager::{build_fg_bg, spawn_manager, FgBgConfig};
use cinder_apps::Spinner;
use cinder_kernel::{Kernel, KernelConfig};
use cinder_sim::{Series, SimTime};

use crate::output::ExperimentOutput;

const RUN_SECS: u64 = 60;

fn run_fg_bg(id: &str, title: &str, cfg: FgBgConfig) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(id, title);
    let mut k = Kernel::new(KernelConfig {
        seed: 12,
        ..KernelConfig::default()
    });
    let h = build_fg_bg(&mut k, cfg).unwrap();
    let a = k.spawn_unprivileged("A", Box::new(Spinner::new()), h.app_reserves[0]);
    let b = k.spawn_unprivileged("B", Box::new(Spinner::new()), h.app_reserves[1]);
    spawn_manager(
        &mut k,
        &h,
        cfg.fg_rate,
        vec![
            (SimTime::from_secs(10), Some(0)),
            (SimTime::from_secs(20), None),
            (SimTime::from_secs(30), Some(1)),
            (SimTime::from_secs(40), None),
        ],
    )
    .unwrap();

    let mut sa = Series::new("A", "mW");
    let mut sb = Series::new("B", "mW");
    out.row(format!("{:>6}{:>10}{:>10}", "t(s)", "A", "B"));
    let mut windows: Vec<(u64, f64, f64)> = Vec::new();
    for s in 1..=RUN_SECS {
        k.run_until(SimTime::from_secs(s));
        let ea = k.thread_power_estimate(a).as_milliwatts_f64();
        let eb = k.thread_power_estimate(b).as_milliwatts_f64();
        sa.push(SimTime::from_secs(s), ea);
        sb.push(SimTime::from_secs(s), eb);
        windows.push((s, ea, eb));
        if s % 5 == 0 {
            out.row(format!("{s:>6}{ea:>10.1}{eb:>10.1}"));
        }
    }
    // Phase means for the summary.
    let mean = |lo: u64, hi: u64, pick: fn(&(u64, f64, f64)) -> f64| -> f64 {
        let vals: Vec<f64> = windows
            .iter()
            .filter(|w| w.0 > lo && w.0 <= hi)
            .map(pick)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    out.metric("a_bg_mw", format!("{:.1}", mean(2, 10, |w| w.1)));
    out.metric("a_fg_mw", format!("{:.1}", mean(12, 20, |w| w.1)));
    out.metric("b_during_a_fg_mw", format!("{:.1}", mean(12, 20, |w| w.2)));
    out.metric("a_after_fg_mw", format!("{:.1}", mean(22, 30, |w| w.1)));
    out.metric("b_fg_mw", format!("{:.1}", mean(32, 40, |w| w.2)));
    out.metric("b_after_fg_mw", format!("{:.1}", mean(42, 55, |w| w.2)));
    out.traces.insert(sa);
    out.traces.insert(sb);
    out
}

/// Fig 12a: 137 mW foreground tap.
pub fn run_a() -> ExperimentOutput {
    run_fg_bg(
        "fig12a",
        "fg/bg power with a 137 mW foreground tap (paper Fig 12a)",
        FgBgConfig::fig12a(),
    )
}

/// Fig 12b: 300 mW foreground tap (hoarding).
pub fn run_b() -> ExperimentOutput {
    run_fg_bg(
        "fig12b",
        "fg/bg power with a 300 mW foreground tap — hoarding (paper Fig 12b)",
        FgBgConfig::fig12b(),
    )
}

#[cfg(test)]
mod tests {
    fn metric(out: &super::ExperimentOutput, k: &str) -> f64 {
        out.summary
            .iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v.parse().unwrap())
            .unwrap()
    }

    #[test]
    fn fig12a_matches_paper_shape() {
        let out = super::run_a();
        // Background: ~7 mW each; foreground: the full 137 mW; after
        // retiring, straight back to background power.
        assert!(metric(&out, "a_bg_mw") < 20.0);
        let a_fg = metric(&out, "a_fg_mw");
        assert!((115.0..=140.0).contains(&a_fg), "A fg {a_fg}");
        assert!(metric(&out, "b_during_a_fg_mw") < 20.0, "B isolated");
        assert!(metric(&out, "a_after_fg_mw") < 30.0, "A returns to bg");
    }

    #[test]
    fn fig12b_shows_hoarding() {
        let out = super::run_b();
        // A keeps burning its banked energy after being backgrounded
        // (paper: "A still has plenty of energy").
        let a_after = metric(&out, "a_after_fg_mw");
        assert!(a_after > 100.0, "A after fg {a_after} (should hoard-burn)");
        // While both have energy they compete for the CPU at ~50% each
        // (paper: "each receives a 50% share") — so B's foreground window
        // reads well below the full 137 mW.
        let b_fg = metric(&out, "b_fg_mw");
        assert!(
            (50.0..=110.0).contains(&b_fg),
            "B competes during fg: {b_fg}"
        );
        // And B hoard-burns near the CPU's full power after its window
        // (paper: "~90% of the CPU until it exhausts its reserve").
        let b_after = metric(&out, "b_after_fg_mw");
        assert!(b_after > 100.0, "B after fg {b_after} (should hoard-burn)");
        // While A is foregrounded at 300 mW it still only uses ≤ 137 mW.
        let a_fg = metric(&out, "a_fg_mw");
        assert!((115.0..=140.0).contains(&a_fg), "A fg {a_fg}");
    }
}
