//! §4.2's in-text measurement study: the platform power states.
//!
//! Paper: "While idling in Cinder, the Dream uses about 699 mW and another
//! 555 mW when the backlight is on. Spinning the CPU increases consumption
//! by 137 mW. Memory-intensive instruction streams increase CPU power draw
//! by 13% over a simple arithmetic loop."

use cinder_hw::{CpuKind, PlatformPower};
use cinder_sim::{Power, PowerMeter, SimTime};

use crate::output::ExperimentOutput;

/// Measures each platform state for 10 s on the simulated supply.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "power-model",
        "HTC Dream platform power states (paper §4.2)",
    );
    out.row(format!("{:<34}{:>12}{:>12}", "state", "measured", "paper"));

    let states: [(&str, bool, Option<CpuKind>, &str); 4] = [
        ("idle", false, None, "699 mW"),
        ("idle + backlight", true, None, "1254 mW"),
        (
            "CPU spinning (memory-intensive)",
            false,
            Some(CpuKind::MemoryIntensive),
            "836 mW",
        ),
        (
            "CPU spinning (integer loop)",
            false,
            Some(CpuKind::Integer),
            "~821 mW",
        ),
    ];
    let mut measured = Vec::new();
    for (name, backlight, cpu, paper) in states {
        let mut platform = PlatformPower::htc_dream();
        platform.display.set_backlight(backlight);
        platform.set_cpu(cpu);
        let mut meter = PowerMeter::new(platform.total(Power::ZERO));
        meter.advance(SimTime::from_secs(10));
        let avg = meter
            .total_energy()
            .average_power_over(cinder_sim::SimDuration::from_secs(10));
        measured.push((name, avg));
        out.row(format!(
            "{:<34}{:>9.1} mW{:>12}",
            name,
            avg.as_milliwatts_f64(),
            paper
        ));
    }
    // The memory-intensive factor the paper quotes as 13%.
    let idle = measured[0].1.as_milliwatts_f64();
    let mem = measured[2].1.as_milliwatts_f64() - idle;
    let int = measured[3].1.as_milliwatts_f64() - idle;
    out.row(format!(
        "memory-intensive / integer CPU power: {:.3} (paper: 1.13)",
        mem / int
    ));
    out.metric("idle_mw", format!("{idle:.1}"));
    out.metric("cpu_extra_mw", format!("{mem:.1}"));
    out.metric("memory_factor", format!("{:.3}", mem / int));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn matches_published_constants() {
        let out = super::run();
        let get = |k: &str| -> f64 {
            out.summary
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.parse().unwrap())
                .unwrap()
        };
        assert!((get("idle_mw") - 699.0).abs() < 1.0);
        assert!((get("cpu_extra_mw") - 137.0).abs() < 1.0);
        assert!((get("memory_factor") - 1.13).abs() < 0.01);
    }
}
