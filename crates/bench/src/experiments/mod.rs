//! One module per paper artifact (see `DESIGN.md` §5 for the index).

pub mod ablation_hoarding;
pub mod ablation_ipc;
pub mod ablation_taps;
pub mod fig10_11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig3;
pub mod fig4;
pub mod fig9;
pub mod fig_faults;
pub mod fig_offload;
pub mod fig_policy;
pub mod fig_quota;
pub mod netd_run;
pub mod power_model;
pub mod table1;
