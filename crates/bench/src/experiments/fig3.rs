//! Figure 3: "Radio data path power consumption for 10 second flows across
//! six different packet rates and three packet sizes."
//!
//! The paper sends UDP packets to an echo server that returns the same
//! contents, so every packet costs its bytes twice (tx + rx). "Short flows
//! are dominated by the 9.5 J baseline cost … The average cost is 14.3 J
//! (minimum: 10.5, maximum: 17.6)."

use cinder_hw::{RadioModel, RadioParams};
use cinder_sim::{Energy, Series, SimDuration, SimRng, SimTime};

use crate::output::ExperimentOutput;

const SIZES: [u64; 3] = [1, 750, 1500];
const RATES: [u64; 6] = [1, 5, 10, 20, 30, 40];
const FLOW: SimDuration = SimDuration::from_secs(10);
const RTT: SimDuration = SimDuration::from_millis(100);

/// Total episode energy of one 10 s echo flow at `rate` pkt/s × `size` B.
fn flow_energy(size: u64, rate: u64, seed: u64) -> Energy {
    let mut radio = RadioModel::new(RadioParams::htc_dream());
    let mut rng = SimRng::seed_from_u64(seed);
    let mut total = Energy::ZERO;
    let interval = SimDuration::from_micros(1_000_000 / rate);
    // Echo replies return the same contents after the RTT; at high packet
    // rates they interleave with later transmits, so process them in time
    // order.
    let mut pending_rx: std::collections::VecDeque<(cinder_sim::SimTime, u64)> =
        std::collections::VecDeque::new();
    let mut t = SimTime::ZERO;
    while t <= SimTime::ZERO + FLOW {
        while let Some(&(rx_at, bytes)) = pending_rx.front() {
            if rx_at > t {
                break;
            }
            pending_rx.pop_front();
            total += radio.advance_integrating(rx_at);
            total += radio.receive(rx_at, bytes).data_energy;
        }
        total += radio.advance_integrating(t);
        total += radio.transmit(t, size, &mut rng).data_energy;
        pending_rx.push_back((t + RTT, size));
        t += interval;
    }
    for (rx_at, bytes) in pending_rx {
        total += radio.advance_integrating(rx_at);
        total += radio.receive(rx_at, bytes).data_energy;
    }
    // Let the episode run out (20 s inactivity timeout), capturing the tail.
    total += radio.advance_integrating(t + SimDuration::from_secs(30));
    total
}

/// Runs the full sweep.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig3",
        "10-second flow energy across packet rates and sizes (paper Fig 3)",
    );
    out.row(format!(
        "{:>14}{:>12}{:>12}{:>12}",
        "pkts/sec", "1 B/pkt", "750 B/pkt", "1500 B/pkt"
    ));
    let mut all = Vec::new();
    let mut series: Vec<Series> = SIZES
        .iter()
        .map(|s| Series::new(format!("{s}B_per_pkt"), "J"))
        .collect();
    for &rate in &RATES {
        let mut cells = Vec::new();
        for (i, &size) in SIZES.iter().enumerate() {
            let j = flow_energy(size, rate, rate * 1_000 + size).as_joules_f64();
            all.push(j);
            cells.push(j);
            // x-axis is the packet rate; encode it as "time" seconds.
            series[i].push(SimTime::from_secs(rate), j);
        }
        out.row(format!(
            "{:>14}{:>12.2}{:>12.2}{:>12.2}",
            rate, cells[0], cells[1], cells[2]
        ));
    }
    for s in series {
        out.traces.insert(s);
    }
    let avg = all.iter().sum::<f64>() / all.len() as f64;
    let min = all.iter().copied().fold(f64::INFINITY, f64::min);
    let max = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    out.row(format!(
        "average {avg:.1} J (paper: 14.3), min {min:.1} J (paper: 10.5), max {max:.1} J (paper: 17.6)"
    ));
    out.metric("avg_j", format!("{avg:.2}"));
    out.metric("min_j", format!("{min:.2}"));
    out.metric("max_j", format!("{max:.2}"));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn shape_matches_paper() {
        let out = super::run();
        let get = |k: &str| -> f64 {
            out.summary
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.parse().unwrap())
                .unwrap()
        };
        // Shape criteria: overhead-dominated (avg ≈ 14 J), modest spread.
        let avg = get("avg_j");
        assert!((12.0..=17.0).contains(&avg), "avg {avg}");
        assert!(get("min_j") >= 9.0);
        assert!(get("max_j") <= 20.0);
        assert!(get("max_j") - get("min_j") < 10.0, "spread too wide");
    }

    #[test]
    fn single_byte_flow_still_costs_double_digits() {
        // The paper's headline: the per-byte cost is irrelevant for small
        // flows; even 1 B/pkt at 1 pkt/s costs ≳ 10 J.
        let j = super::flow_energy(1, 1, 7).as_joules_f64();
        assert!(j > 9.0, "tiny flow cost {j} J");
    }
}
