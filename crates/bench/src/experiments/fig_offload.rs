//! `fig-offload`: the cloud-offload economy's saturation feedback loop.
//!
//! Sweeps the shared backend's capacity against a fixed mean-field load
//! (50,000 devices shipping an item every 300 s). At each point the
//! precomputed [`BackendTrace`] yields the backend-side latency
//! distribution and the fraction of population demand that offloaded,
//! and an offload-heavy fleet run against that same trace prices the
//! economy in joules per request.
//!
//! The loop the figure shows: as capacity shrinks, the latency estimate
//! climbs toward the deadline, the admission gate tapers demand, and
//! break-even prices devices back to local compute — p99 rises, the
//! offload fraction falls, and the joules-per-request price drifts from
//! "cheap radio round trip" toward "nobody offloads".

use cinder_fleet::{run_fleet_with, Scenario};
use cinder_offload::{BackendTrace, OffloadProfile};
use cinder_sim::SimDuration;

use crate::output::ExperimentOutput;

/// One simulated hour, matching the fleet acceptance horizon.
const HORIZON: SimDuration = SimDuration::from_secs(3_600);

/// Mean-field population behind the shared backend. 50k devices at one
/// request per 300 s offer ~167 req/s; with 50 ms service quanta the
/// sweep's small capacities sit well under that and saturate.
const LOAD_DEVICES: u64 = 50_000;

/// Capacity sweep, widest first.
const CAPACITIES: [u32; 6] = [32, 16, 8, 4, 2, 1];

/// Devices in the priced fleet at each point (small: the trace, not the
/// fleet, carries the population).
const FLEET_DEVICES: u32 = 24;

fn profile(capacity: u32) -> OffloadProfile {
    OffloadProfile {
        capacity,
        load_devices: LOAD_DEVICES,
        ..OffloadProfile::default()
    }
}

/// One sweep point: backend-side shape plus the fleet-side price.
struct Point {
    capacity: u32,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    fraction_ppm: u64,
    joules_per_request: f64,
    completed: u64,
    rejected: u64,
    timed_out: u64,
}

fn sweep_point(capacity: u32) -> Point {
    let profile = profile(capacity);
    let trace = BackendTrace::build(profile, HORIZON);
    let scenario = Scenario {
        horizon: HORIZON,
        offload: Some(profile),
        ..Scenario::offload_heavy("fig-offload", 2_030, FLEET_DEVICES, capacity)
    };
    let summary = run_fleet_with(&scenario, 4).summary();
    Point {
        capacity,
        p50_ms: trace.latency_percentile(0.50).as_secs_f64() * 1e3,
        p90_ms: trace.latency_percentile(0.90).as_secs_f64() * 1e3,
        p99_ms: trace.latency_percentile(0.99).as_secs_f64() * 1e3,
        fraction_ppm: trace.offload_fraction_ppm(),
        joules_per_request: summary.joules_per_request,
        completed: summary.offload_completed,
        rejected: summary.offload_rejected,
        timed_out: summary.offload_timed_out,
    }
}

/// Runs the capacity sweep and emits one row per point.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig-offload",
        "cloud-offload economy: backend capacity vs latency, offload fraction, J/request",
    );
    out.row(format!(
        "shared backend: {LOAD_DEVICES} mean-field devices, 300 s cadence, 50 ms service quanta; \
         fleet of {FLEET_DEVICES} offload-heavy devices priced per point"
    ));
    let points: Vec<Point> = CAPACITIES.iter().map(|&c| sweep_point(c)).collect();
    for p in &points {
        out.row(format!(
            "capacity {:>2}: p50 {:>8.1} ms  p90 {:>8.1} ms  p99 {:>8.1} ms  \
             offload {:>5.1}%  {:>6.2} J/req  ({} completed, {} rejected, {} timed out)",
            p.capacity,
            p.p50_ms,
            p.p90_ms,
            p.p99_ms,
            p.fraction_ppm as f64 / 10_000.0,
            p.joules_per_request,
            p.completed,
            p.rejected,
            p.timed_out,
        ));
    }
    for p in &points {
        let c = p.capacity;
        out.metric(&format!("cap{c}_p99_ms"), format!("{:.3}", p.p99_ms));
        out.metric(&format!("cap{c}_offload_ppm"), p.fraction_ppm);
        out.metric(
            &format!("cap{c}_joules_per_request"),
            format!("{:.4}", p.joules_per_request),
        );
        out.metric(&format!("cap{c}_completed"), p.completed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The feedback loop is the figure: shrinking capacity raises p99 and
    /// drops the offload fraction, and the priced fleet follows the gate.
    #[test]
    fn capacity_sweep_shows_the_feedback_loop() {
        let wide = sweep_point(CAPACITIES[0]);
        let narrow = sweep_point(*CAPACITIES.last().unwrap());
        assert!(
            narrow.p99_ms > wide.p99_ms * 2.0,
            "saturation must blow up p99: {} vs {} ms",
            narrow.p99_ms,
            wide.p99_ms
        );
        assert!(
            narrow.fraction_ppm < wide.fraction_ppm / 2,
            "the gate must taper demand: {} vs {} ppm",
            narrow.fraction_ppm,
            wide.fraction_ppm
        );
        assert!(
            narrow.completed < wide.completed,
            "the fleet must follow the gate local: {} vs {}",
            narrow.completed,
            wide.completed
        );
        // A responsive backend prices a request at a real radio cost.
        assert!(wide.joules_per_request > 0.0);
        // Percentiles are ordered at every point.
        for p in [&wide, &narrow] {
            assert!(p.p50_ms <= p.p90_ms && p.p90_ms <= p.p99_ms);
        }
    }
}
