//! Figure 13: power traces of uncooperative vs cooperative radio access.
//!
//! "(a) Since they are not coordinated, their use of the radio is
//! staggered, resulting in increased power consumption. … (b) By pooling
//! their resources, they are able to turn the radio on at most every sixty
//! seconds."

use cinder_sim::Series;

use crate::experiments::netd_run;
use crate::output::ExperimentOutput;

/// Runs both stacks and emits the two traces.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig13",
        "uncooperative vs cooperative radio access power traces (paper Fig 13)",
    );
    let uncoop = netd_run::run(false);
    let coop = netd_run::run(true);

    for (name, run) in [("uncooperative", &uncoop), ("cooperative", &coop)] {
        out.row(format!(
            "{name:>15}: {} activations, {:.0} s active, {:.0} J total, {} polls completed",
            run.activations,
            run.active_time.as_secs_f64(),
            run.total_energy.as_joules_f64(),
            run.sends,
        ));
    }
    out.metric("uncoop_activations", uncoop.activations);
    out.metric("coop_activations", coop.activations);
    out.metric(
        "uncoop_active_s",
        format!("{:.0}", uncoop.active_time.as_secs_f64()),
    );
    out.metric(
        "coop_active_s",
        format!("{:.0}", coop.active_time.as_secs_f64()),
    );
    out.metric("uncoop_sends", uncoop.sends);
    out.metric("coop_sends", coop.sends);

    let mut ua = uncoop.trace.clone();
    let mut ca = coop.trace.clone();
    ua = rename(ua, "uncooperative_power");
    ca = rename(ca, "cooperative_power");
    out.traces.insert(ua);
    out.traces.insert(ca);
    out
}

fn rename(s: Series, name: &str) -> Series {
    let mut out = Series::new(name, s.unit());
    for &(t, v) in s.points() {
        out.push(t, v);
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn cooperation_reduces_active_time_substantially() {
        let out = super::run();
        let get = |k: &str| -> f64 {
            out.summary
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.parse().unwrap())
                .unwrap()
        };
        let ua = get("uncoop_active_s");
        let ca = get("coop_active_s");
        // Paper: 949 s → 510 s (46.3% less). Shape criterion: ≥ 35% less.
        assert!(
            ca <= ua * 0.65,
            "coop active {ca} s vs uncoop {ua} s — expected ≥35% reduction"
        );
        // Cooperative pollers still complete a comparable amount of work.
        let us = get("uncoop_sends");
        let cs = get("coop_sends");
        assert!(cs >= us * 0.55, "coop sends {cs} vs uncoop {us}");
    }
}
