//! Ablation (§3.3): taps as kernel objects vs explicit transfer threads.
//!
//! "Another approach, which Cinder does not take, would be to implement
//! transfer rates between reserves through threads that explicitly move
//! resources … However, this fine-grained control would cause a
//! proliferation of these special-purpose threads, adding overhead and
//! decreasing energy efficiency."
//!
//! We build N rate-limited applications both ways and compare the *energy
//! overhead of the transfer machinery itself*: taps run inside the kernel's
//! batch flow (free), while transfer threads burn scheduler quanta — CPU
//! energy stolen from the applications.

use cinder_core::{Actor, GraphConfig, RateSpec, ReserveId};
use cinder_kernel::{Ctx, FnProgram, Kernel, KernelConfig, Step};
use cinder_label::Label;
use cinder_sim::{Energy, Power, SimDuration, SimTime};

use crate::output::ExperimentOutput;

const APPS: usize = 5;
const APP_RATE: Power = Power::from_milliwatts(1); // "each limited to 1 W"-style, scaled
const RUN: SimDuration = SimDuration::from_secs(60);

fn mk_reserve(k: &mut Kernel, name: &str, joules: i64) -> ReserveId {
    let kactor = Actor::kernel();
    let battery = k.battery();
    let g = k.graph_mut();
    let r = g
        .create_reserve(&kactor, name, Label::default_label())
        .unwrap();
    if joules > 0 {
        g.transfer(&kactor, battery, r, Energy::from_joules(joules))
            .unwrap();
    }
    r
}

fn kernel() -> Kernel {
    Kernel::new(KernelConfig {
        graph: GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
        ..KernelConfig::default()
    })
}

/// Transfer-machinery energy when using taps: zero quanta.
fn run_with_taps() -> Energy {
    let mut k = kernel();
    let kactor = Actor::kernel();
    let battery = k.battery();
    for i in 0..APPS {
        let app = mk_reserve(&mut k, &format!("app{i}"), 0);
        k.graph_mut()
            .create_tap(
                &kactor,
                &format!("tap{i}"),
                battery,
                app,
                RateSpec::constant(APP_RATE),
                Label::default_label(),
            )
            .unwrap();
    }
    k.run_until(SimTime::ZERO + RUN);
    // No transfer machinery consumed anything; measure total CPU energy
    // billed to *any* reserve (should be zero: nothing runs).
    k.graph().totals().consumed
}

/// Transfer-machinery energy with explicit transfer threads: each thread
/// wakes every 100 ms, moves its app's allotment, and sleeps — burning a
/// scheduler quantum per wake.
fn run_with_transfer_threads() -> Energy {
    let mut k = kernel();
    let battery = k.battery();
    let mut mover_reserves = Vec::new();
    for i in 0..APPS {
        let app = mk_reserve(&mut k, &format!("app{i}"), 0);
        // The mover thread needs energy of its own to run at all.
        let mover_r = mk_reserve(&mut k, &format!("mover{i}-r"), 50);
        mover_reserves.push(mover_r);
        let tick = SimDuration::from_millis(100);
        let per_tick = APP_RATE.energy_over(tick);
        k.spawn_unprivileged(
            &format!("mover{i}"),
            Box::new(FnProgram(move |ctx: &mut Ctx<'_>| {
                let _ = ctx.transfer(battery, app, per_tick);
                Step::SleepUntil(ctx.now() + tick)
            })),
            mover_r,
        );
    }
    k.run_until(SimTime::ZERO + RUN);
    // The machinery's own burn: what the mover threads consumed.
    mover_reserves
        .iter()
        .map(|&r| k.graph().reserve(r).unwrap().stats().consumed)
        .sum()
}

/// Runs both configurations and reports the overhead.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ablation-taps",
        "taps vs explicit transfer threads: machinery overhead (paper §3.3)",
    );
    let taps = run_with_taps();
    let threads = run_with_transfer_threads();
    out.row(format!(
        "{APPS} rate-limited apps for {} s",
        RUN.as_secs_f64()
    ));
    out.row(format!(
        "taps:             {:>10.3} J of transfer-machinery energy",
        taps.as_joules_f64()
    ));
    out.row(format!(
        "transfer threads: {:>10.3} J of transfer-machinery energy",
        threads.as_joules_f64()
    ));
    out.metric("taps_overhead_j", format!("{:.4}", taps.as_joules_f64()));
    out.metric(
        "threads_overhead_j",
        format!("{:.4}", threads.as_joules_f64()),
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn taps_have_no_machinery_overhead() {
        let out = super::run();
        let get = |k: &str| -> f64 {
            out.summary
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.parse().unwrap())
                .unwrap()
        };
        assert_eq!(get("taps_overhead_j"), 0.0);
        // 5 movers × 10 wakes/s × 60 s × 0.137 mJ dispatch ≈ 0.4 J wasted.
        let threads = get("threads_overhead_j");
        assert!(threads > 0.2, "thread overhead {threads} J");
    }
}
