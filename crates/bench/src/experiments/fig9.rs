//! Figure 9: "Stacked graph of Cinder's CPU energy accounting estimates
//! during isolated process execution."
//!
//! Processes A and B each receive 68.5 mW (half the 137 mW CPU). B forks B1
//! at ~5 s and B2 at ~10 s — but instead of letting them draw from its own
//! reserve, B subdivides: each child gets a reserve fed by a ¼-rate tap
//! (17.125 mW) *from B's reserve*. A's share must be untouched, and the sum
//! of the estimates must match the measured CPU power (~139 mW in the
//! paper).

use cinder_apps::{ForkPlan, ForkingSpinner, Spinner};
use cinder_core::{Actor, GraphConfig, RateSpec};
use cinder_kernel::{Kernel, KernelConfig};
use cinder_label::Label;
use cinder_sim::{Power, Series, SimTime};

use crate::output::ExperimentOutput;

const HALF_CPU: Power = Power::from_microwatts(68_500);
const QUARTER_TAP: Power = Power::from_microwatts(17_125);
const RUN_SECS: u64 = 60;

/// Runs the isolation experiment.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig9",
        "CPU accounting estimates with isolation under forking (paper Fig 9)",
    );
    let mut k = Kernel::new(KernelConfig {
        graph: GraphConfig {
            decay: None, // 60 s run; decay is irrelevant and adds noise
            ..GraphConfig::default()
        },
        seed: 9,
        ..KernelConfig::default()
    });
    let kactor = Actor::kernel();
    let battery = k.battery();
    let mut reserves = Vec::new();
    for name in ["A", "B"] {
        let g = k.graph_mut();
        let r = g
            .create_reserve(&kactor, &format!("{name}-r"), Label::default_label())
            .unwrap();
        g.create_tap(
            &kactor,
            &format!("{name}-tap"),
            battery,
            r,
            RateSpec::constant(HALF_CPU),
            Label::default_label(),
        )
        .unwrap();
        reserves.push(r);
    }
    let a = k.spawn_unprivileged("A", Box::new(Spinner::new()), reserves[0]);
    let b = k.spawn_unprivileged(
        "B",
        Box::new(ForkingSpinner::new(vec![
            ForkPlan {
                at: SimTime::from_secs(5),
                name: "B1".into(),
                tap_rate: QUARTER_TAP,
            },
            ForkPlan {
                at: SimTime::from_secs(10),
                name: "B2".into(),
                tap_rate: QUARTER_TAP,
            },
        ])),
        reserves[1],
    );

    let names = ["A", "B", "B1", "B2"];
    let mut series: Vec<Series> = names
        .iter()
        .map(|n| Series::new(n.to_string(), "mW"))
        .collect();
    let mut sum_series = Series::new("sum", "mW");
    out.row(format!(
        "{:>6}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "t(s)", "A", "B", "B1", "B2", "sum"
    ));
    let mut a_samples_after_forks = Vec::new();
    for s in 1..=RUN_SECS {
        k.run_until(SimTime::from_secs(s));
        let mut row = vec![format!("{s:>6}")];
        let mut sum = 0.0;
        let mut vals = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let est = k
                .thread_by_name(name)
                .map(|tid| k.thread_power_estimate(tid).as_milliwatts_f64())
                .unwrap_or(0.0);
            series[i].push(SimTime::from_secs(s), est);
            sum += est;
            vals.push(est);
            row.push(format!("{est:>10.1}"));
        }
        sum_series.push(SimTime::from_secs(s), sum);
        row.push(format!("{sum:>10.1}"));
        if s % 5 == 0 {
            out.row(row.join(""));
        }
        if s > 15 {
            a_samples_after_forks.push(vals[0]);
        }
    }
    let a_mean =
        a_samples_after_forks.iter().sum::<f64>() / a_samples_after_forks.len().max(1) as f64;
    let a_est_final = k.thread_power_estimate(a).as_milliwatts_f64();
    let b_est_final = k.thread_power_estimate(b).as_milliwatts_f64();
    out.row(format!(
        "A's mean estimate after both forks: {a_mean:.1} mW (isolated target ≈ 68.5 mW)"
    ));
    out.metric("a_mean_after_forks_mw", format!("{a_mean:.1}"));
    out.metric("a_final_mw", format!("{a_est_final:.1}"));
    out.metric("b_final_mw", format!("{b_est_final:.1}"));
    let sum_final = sum_series.points().last().map(|&(_, v)| v).unwrap_or(0.0);
    out.metric("sum_final_mw", format!("{sum_final:.1}"));
    for s in series {
        out.traces.insert(s);
    }
    out.traces.insert(sum_series);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn a_is_isolated_from_bs_forks() {
        let out = super::run();
        let get = |k: &str| -> f64 {
            out.summary
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.parse().unwrap())
                .unwrap()
        };
        // A holds ~50% of the CPU (68.5 mW) despite B's children.
        let a = get("a_mean_after_forks_mw");
        assert!((60.0..=77.0).contains(&a), "A mean {a}");
        // The stacked sum ≈ the CPU's full power (paper: ~139 mW).
        let sum = get("sum_final_mw");
        assert!((125.0..=150.0).contains(&sum), "sum {sum}");
    }
}
