//! Table 1: "Improvements in energy consumption and active radio time using
//! cooperative resource sharing in Cinder."
//!
//! Paper's numbers:
//!
//! | row | Non-Coop | Coop | Improv |
//! |---|---|---|---|
//! | Total Time | 1201 s | 1201 s | N/A |
//! | Total Energy | 1238 J | 1083 J | 12.5% |
//! | Active Time | 949 s | 510 s | 46.3% |
//! | Active Energy | 1064 J | 594 J | 44.2% |

use crate::experiments::netd_run;
use crate::output::ExperimentOutput;

/// Runs both stacks and prints the table.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "table1",
        "cooperative resource sharing improvements (paper Table 1)",
    );
    let uncoop = netd_run::run(false);
    let coop = netd_run::run(true);

    let improv = |a: f64, b: f64| (a - b) / a * 100.0;
    let rows = [
        (
            "Total Time",
            uncoop.total_time.as_secs_f64(),
            coop.total_time.as_secs_f64(),
            "s",
            false,
        ),
        (
            "Total Energy",
            uncoop.total_energy.as_joules_f64(),
            coop.total_energy.as_joules_f64(),
            "J",
            true,
        ),
        (
            "Active Time",
            uncoop.active_time.as_secs_f64(),
            coop.active_time.as_secs_f64(),
            "s",
            true,
        ),
        (
            "Active Energy",
            uncoop.active_energy.as_joules_f64(),
            coop.active_energy.as_joules_f64(),
            "J",
            true,
        ),
    ];
    out.row(format!(
        "{:<16}{:>12}{:>12}{:>10}",
        "", "Non-Coop", "Coop", "Improv"
    ));
    for (name, u, c, unit, show) in rows {
        let imp = if show {
            format!("{:.1}%", improv(u, c))
        } else {
            "N/A".to_string()
        };
        out.row(format!(
            "{name:<16}{u:>10.0} {unit}{c:>10.0} {unit}{imp:>10}"
        ));
    }
    out.metric(
        "total_energy_improv_pct",
        format!(
            "{:.1}",
            improv(
                uncoop.total_energy.as_joules_f64(),
                coop.total_energy.as_joules_f64()
            )
        ),
    );
    out.metric(
        "active_time_improv_pct",
        format!(
            "{:.1}",
            improv(
                uncoop.active_time.as_secs_f64(),
                coop.active_time.as_secs_f64()
            )
        ),
    );
    out.metric(
        "active_energy_improv_pct",
        format!(
            "{:.1}",
            improv(
                uncoop.active_energy.as_joules_f64(),
                coop.active_energy.as_joules_f64()
            )
        ),
    );
    out.metric(
        "uncoop_total_j",
        format!("{:.0}", uncoop.total_energy.as_joules_f64()),
    );
    out.metric(
        "coop_total_j",
        format!("{:.0}", coop.total_energy.as_joules_f64()),
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn improvements_match_paper_shape() {
        let out = super::run();
        let get = |k: &str| -> f64 {
            out.summary
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.parse().unwrap())
                .unwrap()
        };
        // Paper: 12.5% total energy, 46.3% active time, 44.2% active
        // energy. Shape criteria: ≥8%, ≥35%, ≥30%.
        let te = get("total_energy_improv_pct");
        assert!(te >= 8.0, "total energy improvement {te}%");
        let at = get("active_time_improv_pct");
        assert!(at >= 35.0, "active time improvement {at}%");
        let ae = get("active_energy_improv_pct");
        assert!(ae >= 30.0, "active energy improvement {ae}%");
        // Both runs sit in the paper's absolute ballpark (same baseline).
        let u = get("uncoop_total_j");
        assert!((1000.0..=1400.0).contains(&u), "uncoop total {u} J");
    }
}
