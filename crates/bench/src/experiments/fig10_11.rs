//! Figures 10 and 11: the image viewer's reserve level and per-image
//! transfer sizes, without (Fig 10) and with (Fig 11) energy-aware quality
//! scaling. "The images downloaded 5 times more quickly [with scaling] than
//! the viewer which does not scale the images."

use std::cell::RefCell;
use std::rc::Rc;

use cinder_apps::{ImageViewer, ViewerConfig, ViewerLog};
use cinder_core::{Actor, GraphConfig, RateSpec};
use cinder_hw::LaptopNet;
use cinder_kernel::{Kernel, KernelConfig};
use cinder_label::Label;
use cinder_sim::{Energy, Power, Series, SimTime};

use crate::output::ExperimentOutput;

/// The §6.2 rig: a downloader reserve seeded with 200 mJ and fed 4 mW on
/// the laptop platform.
pub fn viewer_rig(config: ViewerConfig) -> (Kernel, Rc<RefCell<ViewerLog>>) {
    let mut k = Kernel::new(KernelConfig {
        graph: GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
        laptop: Some(LaptopNet::t60p()),
        battery: Energy::from_joules(50_000),
        seed: 10,
        ..KernelConfig::default()
    });
    let kactor = Actor::kernel();
    let battery = k.battery();
    let g = k.graph_mut();
    let r = g
        .create_reserve(&kactor, "downloader", Label::default_label())
        .unwrap();
    g.transfer(&kactor, battery, r, Energy::from_microjoules(200_000))
        .unwrap();
    g.create_tap(
        &kactor,
        "dl-tap",
        battery,
        r,
        RateSpec::constant(Power::from_microwatts(4_000)),
        Label::default_label(),
    )
    .unwrap();
    let log = ViewerLog::shared();
    k.spawn_unprivileged("viewer", Box::new(ImageViewer::new(config, log.clone())), r);
    (k, log)
}

fn run_viewer(id: &str, title: &str, config: ViewerConfig) -> ExperimentOutput {
    let mut out = ExperimentOutput::new(id, title);
    let (mut k, log) = viewer_rig(config);
    k.run_until(SimTime::from_secs(3_000));
    let log = log.borrow();

    let mut level = Series::new("reserve_level", "uJ");
    for &(t, e) in &log.reserve_samples {
        level.push(t, e.as_microjoules() as f64);
    }
    let mut bars = Series::new("image_kib", "KiB");
    out.row(format!(
        "{:>10}{:>12}{:>16}{:>8}",
        "t(s)", "KiB", "reserve(uJ)", "batch"
    ));
    for img in &log.images {
        bars.push(img.at, img.bytes as f64 / 1024.0);
        out.row(format!(
            "{:>10.1}{:>12.0}{:>16}{:>8}",
            img.at.as_secs_f64(),
            img.bytes as f64 / 1024.0,
            img.reserve_after.as_microjoules(),
            img.batch
        ));
    }
    let finished = log.finished_at.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN);
    let min_level = log
        .reserve_samples
        .iter()
        .map(|&(_, e)| e.as_microjoules())
        .min()
        .unwrap_or(0);
    out.row(format!(
        "completed in {finished:.0} s; stalled {:.1} s; downloaded {:.1} MiB over {} images",
        log.stalled.as_secs_f64(),
        log.total_bytes() as f64 / (1024.0 * 1024.0),
        log.images.len(),
    ));
    out.metric("completion_s", format!("{finished:.1}"));
    out.metric("stalled_s", format!("{:.1}", log.stalled.as_secs_f64()));
    out.metric(
        "total_mib",
        format!("{:.2}", log.total_bytes() as f64 / 1048576.0),
    );
    out.metric("images", log.images.len());
    out.metric("min_reserve_uj", min_level);
    out.traces.insert(level);
    out.traces.insert(bars);
    out
}

/// Fig 10: without scaling.
pub fn run_fig10() -> ExperimentOutput {
    run_viewer(
        "fig10",
        "image viewer without application scaling (paper Fig 10)",
        ViewerConfig::fig10(),
    )
}

/// Fig 11: with energy-aware scaling.
pub fn run_fig11() -> ExperimentOutput {
    run_viewer(
        "fig11",
        "image viewer with energy-aware scaling (paper Fig 11)",
        ViewerConfig::fig11(),
    )
}

#[cfg(test)]
mod tests {
    fn metric(out: &super::ExperimentOutput, k: &str) -> f64 {
        out.summary
            .iter()
            .find(|(n, _)| n == k)
            .map(|(_, v)| v.parse().unwrap())
            .unwrap()
    }

    #[test]
    fn adaptive_is_at_least_3x_faster() {
        let f10 = super::run_fig10();
        let f11 = super::run_fig11();
        let t10 = metric(&f10, "completion_s");
        let t11 = metric(&f11, "completion_s");
        assert!(
            t10 / t11 >= 3.0,
            "fig10 {t10}s vs fig11 {t11}s (paper: ~5x)"
        );
        // The adaptive run never stalls at zero; the non-adaptive one does.
        assert_eq!(metric(&f11, "stalled_s"), 0.0);
        assert!(metric(&f10, "stalled_s") > 10.0);
        assert!(metric(&f11, "min_reserve_uj") >= 0.0);
    }
}
