//! `fig-faults`: resilience under an injected-fault intensity sweep.
//!
//! Runs the same `fault_heavy` population — identical seeds, batteries,
//! jitter, presence traces — at four fault intensities: fault-free, half
//! the paper-calibrated storm, the storm itself, and twice it. Intensity
//! scales the *frequency* knobs (shorter mean link up-times, shorter mean
//! crash intervals, proportionally faster battery aging) while leaving
//! each fault's shape alone, so the sweep isolates how the resilience
//! layer — bounded-backoff retries, kill/respawn supervision, fade-aware
//! re-planning — degrades. The rows report lifetime-target hit fractions,
//! joules per completed offload request, and the raw fault ledger (flaps,
//! link-down time, crashes/restarts, retries spent and exhausted, fade),
//! so the figure shows the cost of each extra decade of chaos.

use cinder_fleet::{run_fleet_with, FaultConfig, Scenario};
use cinder_sim::SimDuration;

use crate::output::ExperimentOutput;

/// One simulated hour, matching the fleet acceptance horizon.
const HORIZON: SimDuration = SimDuration::from_secs(3_600);

/// Fleet size (shared across the four runs).
const DEVICES: u32 = 40;

/// Fault intensity in ppm of the calibrated heavy profile; `None` is the
/// fault-free baseline.
const INTENSITIES: [Option<u64>; 4] = [None, Some(500_000), Some(1_000_000), Some(2_000_000)];

/// One intensity's fleet-wide outcome.
struct Outcome {
    tag: String,
    hit_fraction: f64,
    completed: u64,
    joules_per_request: f64,
    link_flaps: u64,
    link_down_s: f64,
    crashes: u64,
    restarts: u64,
    retries: u64,
    retries_exhausted: u64,
    fade_j: f64,
}

fn run_intensity(intensity: Option<u64>) -> Outcome {
    // Same name+seed at every intensity: the population is identical, only
    // the fault schedule layered on top differs.
    let scenario = Scenario {
        horizon: HORIZON,
        faults: intensity.map(|ppm| FaultConfig::heavy(4_077).with_intensity(ppm)),
        ..Scenario::fault_heavy("fig-faults", 4_077, DEVICES)
    };
    let report = run_fleet_with(&scenario, 4);
    let s = report.summary();
    Outcome {
        tag: match intensity {
            None => "fault-free".into(),
            Some(ppm) => format!("{:.1}x", ppm as f64 / 1e6),
        },
        hit_fraction: s.lifetime_target_hits as f64 / s.devices as f64,
        completed: s.offload_completed,
        joules_per_request: s.joules_per_request,
        link_flaps: s.link_flaps,
        link_down_s: s.link_down_us as f64 / 1e6,
        crashes: s.crashes,
        restarts: s.restarts,
        retries: s.retries,
        retries_exhausted: s.retries_exhausted,
        fade_j: s.fade_j,
    }
}

/// Runs the intensity sweep and emits one row per intensity.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig-faults",
        "fault-intensity sweep: resilience cost in target hits, J/request, and the fault ledger",
    );
    out.row(format!(
        "{DEVICES} fault-heavy devices, {:.0} s horizon; identical population at \
         each intensity (1.0x = calibrated storm)",
        HORIZON.as_secs_f64(),
    ));
    let outcomes: Vec<Outcome> = INTENSITIES.into_iter().map(run_intensity).collect();
    for o in &outcomes {
        out.row(format!(
            "{:>10}: target hit {:>5.1}%  {:>3} completed @ {:>7.1} J/req  \
             {:>3} flaps ({:>7.1} s down)  {:>2} crashes / {:>2} restarts  \
             {:>3} retries ({:>2} exhausted)  fade {:>6.1} J",
            o.tag,
            o.hit_fraction * 100.0,
            o.completed,
            o.joules_per_request,
            o.link_flaps,
            o.link_down_s,
            o.crashes,
            o.restarts,
            o.retries,
            o.retries_exhausted,
            o.fade_j,
        ));
    }
    for o in &outcomes {
        let t = o.tag.replace('.', "_");
        out.metric(
            &format!("{t}_hit_ppm"),
            (o.hit_fraction * 1e6).round() as u64,
        );
        out.metric(&format!("{t}_completed"), o.completed);
        out.metric(
            &format!("{t}_j_per_request"),
            format!("{:.3}", o.joules_per_request),
        );
        out.metric(&format!("{t}_link_flaps"), o.link_flaps);
        out.metric(&format!("{t}_crashes"), o.crashes);
        out.metric(&format!("{t}_retries"), o.retries);
        out.metric(&format!("{t}_fade_j"), format!("{:.3}", o.fade_j));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The figure's shape: chaos scales with intensity (more flaps, more
    /// crashes, more fade), the resilience layer visibly works (every
    /// crash is respawned, retries engage once faults are live), and the
    /// degradation is graceful — the faulted fleet still completes
    /// offloads rather than collapsing.
    #[test]
    fn fault_intensity_degrades_gracefully() {
        let quiet = run_intensity(None);
        let calm = run_intensity(Some(500_000));
        let storm = run_intensity(Some(1_000_000));
        let wild = run_intensity(Some(2_000_000));

        // The baseline is actually fault-free.
        assert_eq!(quiet.link_flaps + quiet.crashes + quiet.retries, 0);
        assert_eq!(quiet.fade_j, 0.0);

        // Chaos is monotone in intensity.
        assert!(calm.link_flaps < storm.link_flaps);
        assert!(storm.link_flaps < wild.link_flaps);
        assert!(calm.link_down_s < wild.link_down_s);
        assert!(calm.crashes <= storm.crashes && storm.crashes < wild.crashes);
        assert!(calm.fade_j < storm.fade_j && storm.fade_j < wild.fade_j);

        // The resilience layer is visibly engaged: every kill respawned
        // (except ones whose restart delay crosses the horizon), retries
        // spent once faults are live.
        for o in [&calm, &storm, &wild] {
            assert!(
                o.restarts <= o.crashes && o.crashes - o.restarts <= DEVICES as u64 / 10,
                "{}: kills without respawn: {} crashes vs {} restarts",
                o.tag,
                o.crashes,
                o.restarts
            );
            assert!(o.restarts > 0, "{}: nothing ever respawned", o.tag);
            assert!(o.retries > 0, "{}: no retries under faults", o.tag);
            assert!(
                o.completed > 0,
                "{}: the fleet must not collapse outright",
                o.tag
            );
        }

        // Degradation shows up as abandoned work, not collapse: retries
        // and exhaustion climb with intensity, yet completions never dry
        // up — respawned offloaders re-enter their duty cycle, so the
        // faulted fleet can even out-complete the quiet one.
        assert!(calm.retries < storm.retries && storm.retries < wild.retries);
        assert!(calm.retries_exhausted < wild.retries_exhausted);
        assert!(quiet.completed > 0 && storm.completed > 0);
    }
}
