//! `fig-policy`: user-aware policy head-to-head on one fleet population.
//!
//! Runs the same `policy_heavy` population — identical seeds, batteries,
//! jitter, presence traces — under three policies and compares who makes
//! the lifetime target (§5.4's question, asked fleet-wide): the
//! policy-free baseline, a presence-blind static low-battery saver, and
//! the user-aware lifetime-target controller. Batteries are sized so the
//! nominal workload *cannot* last the hour: the baseline and the static
//! saver (which only reacts below 20% charge, long after the budget is
//! spent) miss the target across most of the fleet, while the user-aware
//! controller solves the sustainable rate at every tick and throttles to
//! it from the start. The rows report lifetime percentiles, target-hit
//! fractions, and joules by subsystem (CPU / backlight / GPS / rest), so
//! the figure also shows *where* the controller claws the energy back.

use cinder_fleet::{run_fleet_with, PolicyConfig, PolicyVariant, Scenario};
use cinder_sim::SimDuration;

use crate::output::ExperimentOutput;

/// One simulated hour, matching the fleet acceptance horizon.
const HORIZON: SimDuration = SimDuration::from_secs(3_600);

/// The lifetime target every policy is judged against: survive the hour.
const TARGET: SimDuration = SimDuration::from_secs(3_600);

/// Fleet size (shared across the three runs).
const DEVICES: u32 = 60;

/// One policy's fleet-wide outcome.
struct Outcome {
    tag: &'static str,
    hit_fraction: f64,
    p50_lifetime_h: f64,
    p90_lifetime_h: f64,
    total_j: f64,
    cpu_j: f64,
    backlight_j: f64,
    gps_j: f64,
    rerates: u64,
    demotions: u64,
}

fn run_variant(variant: PolicyVariant) -> Outcome {
    // Same name+seed for every variant: the population (and each device's
    // presence trace) is identical, only the policy differs. Even the
    // baseline carries a `Variant::None` config so the target verdict and
    // presence telemetry are computed for it too.
    let scenario = Scenario {
        horizon: HORIZON,
        policy: Some(PolicyConfig::new(variant, TARGET)),
        ..Scenario::policy_heavy("fig-policy", 4_010, DEVICES)
    };
    let report = run_fleet_with(&scenario, 4);
    let summary = report.summary();
    let lifetime = summary.lifetime_h.expect("non-empty fleet");
    let sum_j = |f: &dyn Fn(&cinder_fleet::DeviceReport) -> i64| -> f64 {
        report.devices.iter().map(|d| f(&d) as f64 / 1e6).sum()
    };
    Outcome {
        tag: variant.tag(),
        hit_fraction: summary.lifetime_target_hits as f64 / summary.devices as f64,
        p50_lifetime_h: lifetime.p50,
        p90_lifetime_h: lifetime.p90,
        total_j: summary.fleet_energy_j,
        cpu_j: sum_j(&|d| d.cpu_energy_uj),
        backlight_j: sum_j(&|d| d.backlight_energy_uj),
        gps_j: sum_j(&|d| d.gps_energy_uj),
        rerates: summary.policy_rerates,
        demotions: summary.policy_demotions,
    }
}

/// Runs the three-way comparison and emits one row per policy.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig-policy",
        "user-aware policy head-to-head: lifetime-target hit rates and joules by subsystem",
    );
    out.row(format!(
        "{DEVICES} policy-heavy devices, {:.0} s horizon, target: last {:.0} s; \
         identical population under each policy",
        HORIZON.as_secs_f64(),
        TARGET.as_secs_f64(),
    ));
    let outcomes: Vec<Outcome> = [
        PolicyVariant::None,
        PolicyVariant::Static,
        PolicyVariant::UserAware,
    ]
    .into_iter()
    .map(run_variant)
    .collect();
    for o in &outcomes {
        out.row(format!(
            "{:>10}: target hit {:>5.1}%  lifetime p50 {:>5.2} h  p90 {:>5.2} h  \
             energy {:>7.1} J (cpu {:>6.1}, backlight {:>6.1}, gps {:>6.1})  \
             {} re-rates, {} demotions",
            o.tag,
            o.hit_fraction * 100.0,
            o.p50_lifetime_h,
            o.p90_lifetime_h,
            o.total_j,
            o.cpu_j,
            o.backlight_j,
            o.gps_j,
            o.rerates,
            o.demotions,
        ));
    }
    for o in &outcomes {
        let t = o.tag;
        out.metric(
            &format!("{t}_hit_ppm"),
            (o.hit_fraction * 1e6).round() as u64,
        );
        out.metric(
            &format!("{t}_p50_lifetime_h"),
            format!("{:.4}", o.p50_lifetime_h),
        );
        out.metric(
            &format!("{t}_p90_lifetime_h"),
            format!("{:.4}", o.p90_lifetime_h),
        );
        out.metric(&format!("{t}_total_j"), format!("{:.3}", o.total_j));
        out.metric(&format!("{t}_backlight_j"), format!("{:.3}", o.backlight_j));
        out.metric(&format!("{t}_rerates"), o.rerates);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The figure's shape: the user-aware controller makes the target
    /// almost everywhere; the presence-blind static saver reacts too late
    /// and misses across most of the fleet; the baseline misses hardest.
    #[test]
    fn user_aware_hits_the_target_where_static_misses() {
        let none = run_variant(PolicyVariant::None);
        let stat = run_variant(PolicyVariant::Static);
        let aware = run_variant(PolicyVariant::UserAware);
        assert!(
            aware.hit_fraction >= 0.9,
            "user-aware must make the target fleet-wide: {:.3}",
            aware.hit_fraction
        );
        assert!(
            stat.hit_fraction <= 0.5,
            "the static saver reacts too late to save the hour: {:.3}",
            stat.hit_fraction
        );
        assert!(none.hit_fraction <= stat.hit_fraction);
        // The controller's savings are real energy, led by the backlight.
        assert!(aware.total_j < stat.total_j && stat.total_j <= none.total_j);
        assert!(aware.backlight_j < none.backlight_j);
        // It acts continuously (re-rates), not just at a threshold.
        assert!(aware.rerates > stat.rerates);
        assert!(aware.demotions > 0);
    }
}
