//! Ablation (§5.5.1 / §7.1): gate-based IPC bills the caller; Linux-style
//! message-passing IPC misattributes the same work to the daemon.
//!
//! "Since Cinder tracks resource consumption by the active reserve of a
//! thread, the caller of a system-wide service, like netd, is billed for
//! resource consumption it causes, even while executing in the other
//! address space. Other systems, such as Linux, would need some form of
//! message tracking during inter-process communication in order to
//! heuristically bill the principals."

use cinder_core::{Actor, GraphConfig};
use cinder_kernel::{Ctx, Kernel, KernelConfig, Step, ThreadId};
use cinder_label::Label;
use cinder_sim::{Energy, SimDuration, SimTime};

use crate::output::ExperimentOutput;

const SERVICE_WORK: SimDuration = SimDuration::from_millis(200);
const CALLS: usize = 20;

struct Billing {
    client: Energy,
    daemon: Energy,
}

fn run_mode(gates: bool) -> Billing {
    let mut k = Kernel::new(KernelConfig {
        graph: GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
        ..KernelConfig::default()
    });
    let kactor = Actor::kernel();
    let battery = k.battery();
    let mk_reserve = |k: &mut Kernel, name: &str| {
        let g = k.graph_mut();
        let r = g
            .create_reserve(&kactor, name, Label::default_label())
            .unwrap();
        g.transfer(&kactor, battery, r, Energy::from_joules(100))
            .unwrap();
        r
    };
    let client_r = mk_reserve(&mut k, "client-r");
    let daemon_r = mk_reserve(&mut k, "daemon-r");

    // The daemon: serves message work when messaged; otherwise blocks.
    let daemon: ThreadId = k.spawn_unprivileged(
        "daemon",
        Box::new(cinder_kernel::FnProgram(
            move |ctx: &mut Ctx<'_>| match ctx.msg_take() {
                Some(work) => Step::compute(work),
                None => Step::Block,
            },
        )),
        daemon_r,
    );
    let root = k.root_container();
    let gate = k
        .create_gate(root, "service", Label::default_label(), SERVICE_WORK)
        .unwrap();

    let mut remaining = CALLS;
    k.spawn_unprivileged(
        "client",
        Box::new(cinder_kernel::FnProgram(move |ctx: &mut Ctx<'_>| {
            if remaining == 0 {
                return Step::Exit;
            }
            remaining -= 1;
            if gates {
                ctx.gate_call(gate).expect("gate call");
                // The gate's work landed on this thread: run it off.
                Step::Yield
            } else {
                ctx.msg_send(daemon, SERVICE_WORK).expect("daemon alive");
                Step::SleepUntil(ctx.now() + SimDuration::from_millis(400))
            }
        })),
        client_r,
    );
    k.run_until(SimTime::from_secs(30));
    Billing {
        client: k.graph().reserve(client_r).unwrap().stats().consumed,
        daemon: k.graph().reserve(daemon_r).unwrap().stats().consumed,
    }
}

/// Runs both IPC modes and prints who got billed.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "ablation-ipc",
        "gate IPC vs message-passing IPC billing attribution (paper §7.1)",
    );
    let gate = run_mode(true);
    let msg = run_mode(false);
    out.row(format!(
        "{:<24}{:>14}{:>14}",
        "mode", "client billed", "daemon billed"
    ));
    out.row(format!(
        "{:<24}{:>12.2} J{:>12.2} J",
        "gates (Cinder-HiStar)",
        gate.client.as_joules_f64(),
        gate.daemon.as_joules_f64()
    ));
    out.row(format!(
        "{:<24}{:>12.2} J{:>12.2} J",
        "messages (Cinder-Linux)",
        msg.client.as_joules_f64(),
        msg.daemon.as_joules_f64()
    ));
    out.metric(
        "gate_client_j",
        format!("{:.3}", gate.client.as_joules_f64()),
    );
    out.metric(
        "gate_daemon_j",
        format!("{:.3}", gate.daemon.as_joules_f64()),
    );
    out.metric("msg_client_j", format!("{:.3}", msg.client.as_joules_f64()));
    out.metric("msg_daemon_j", format!("{:.3}", msg.daemon.as_joules_f64()));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn gates_bill_caller_messages_bill_daemon() {
        let out = super::run();
        let get = |k: &str| -> f64 {
            out.summary
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.parse().unwrap())
                .unwrap()
        };
        // 20 calls × 200 ms × 137 mW ≈ 0.548 J of service work.
        assert!(get("gate_client_j") > 0.5, "gates: caller pays");
        assert!(get("gate_daemon_j") < 0.05, "gates: daemon pays ~nothing");
        assert!(get("msg_daemon_j") > 0.5, "messages: daemon pays");
        assert!(get("msg_client_j") < 0.1, "messages: caller pays ~nothing");
    }
}
