//! `fig-quota`: bytes-remaining-vs-time for the §9 data-plan study,
//! enforced online in the kernel.
//!
//! Two one-hour runs of the §6.4 poller pair (RSS + mail), each under a
//! `NetworkBytes` plan reserve attached to both threads:
//!
//! * a **5 MB plan** (the issue's figure) that comfortably outlives the
//!   hour — its balance ramps down linearly with the polling cadence;
//! * a **mid-hour plan** (~half the pair's hourly appetite) that runs dry
//!   partway through — the trace flattens at the moment the kernel starts
//!   holding sends, and the poll/radio counters stop advancing with it.
//!
//! The flat tail is the §9 behaviour an offline replay cannot produce:
//! exhaustion silences the device rather than being tallied after the
//! fact.

use cinder_apps::{PeriodicPoller, PollerLog};
use cinder_core::{quota, Actor, RateSpec, ReserveId, ResourceKind};
use cinder_kernel::{Kernel, KernelConfig};
use cinder_label::Label;
use cinder_net::UncoopStack;
use cinder_sim::{Power, Series, SimDuration, SimTime};

use crate::output::ExperimentOutput;

/// Experiment length: one simulated hour.
const RUN: SimDuration = SimDuration::from_secs(3_600);

/// The plan that survives the hour (the issue's 5 MB figure).
const GENEROUS_BYTES: u64 = 5_000_000;

/// A plan sized to die mid-hour: the poller pair moves ~780 KB/h.
const MID_HOUR_BYTES: u64 = 380_000;

struct QuotaRun {
    remaining: Series,
    polls: usize,
    blocked_sends: u64,
    exhausted: bool,
    final_bytes: i64,
}

fn run_plan(name: &str, plan_bytes: u64) -> QuotaRun {
    let mut k = Kernel::new(KernelConfig {
        seed: 29,
        ..KernelConfig::default()
    });
    k.install_net(Box::new(UncoopStack::new()));
    let log = PollerLog::shared();
    let r_rss = tapped_reserve(&mut k, "rss");
    let r_mail = tapped_reserve(&mut k, "mail");
    let rss = k.spawn_unprivileged("rss", Box::new(PeriodicPoller::rss(log.clone())), r_rss);
    let mail = k.spawn_unprivileged("mail", Box::new(PeriodicPoller::mail(log.clone())), r_mail);

    // The plan: a NetworkBytes root pool fully granted to one plan reserve
    // shared by both pollers, gating their sends online.
    let plan = k
        .install_byte_plan(plan_bytes, &[rss, mail])
        .expect("fresh kernel has no byte root");

    let mut remaining = Series::new(name, "bytes");
    let end = SimTime::ZERO + RUN;
    let mut t = SimTime::ZERO;
    remaining.push(t, plan_bytes as f64);
    while t < end {
        t = (t + SimDuration::from_secs(10)).min(end);
        k.run_until(t);
        let level = k
            .graph()
            .reserve(plan)
            .map(|r| quota::as_bytes(r.balance()))
            .unwrap_or(0);
        remaining.push(t, level as f64);
    }

    for kind in ResourceKind::ALL {
        assert!(
            k.graph().totals_for(kind).conserved(),
            "{kind} not conserved in fig-quota"
        );
    }
    let blocked_sends = k.thread_bytes_blocked(rss) + k.thread_bytes_blocked(mail);
    let final_bytes = k
        .graph()
        .reserve(plan)
        .map(|r| quota::as_bytes(r.balance()))
        .unwrap_or(0);
    let polls = log.borrow().sends.len();
    QuotaRun {
        remaining,
        polls,
        blocked_sends,
        exhausted: blocked_sends > 0,
        final_bytes,
    }
}

fn tapped_reserve(k: &mut Kernel, name: &str) -> ReserveId {
    let kactor = Actor::kernel();
    let battery = k.battery();
    let g = k.graph_mut();
    let r = g
        .create_reserve(&kactor, name, Label::default_label())
        .unwrap();
    g.create_tap(
        &kactor,
        &format!("{name}-tap"),
        battery,
        r,
        RateSpec::constant(Power::from_microwatts(99_000)),
        Label::default_label(),
    )
    .unwrap();
    r
}

/// Runs both plans and emits the bytes-remaining traces.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig-quota",
        "§9 data plans enforced online: bytes remaining vs time",
    );
    let generous = run_plan("plan_5mb_remaining", GENEROUS_BYTES);
    let mid_hour = run_plan("plan_mid_hour_remaining", MID_HOUR_BYTES);

    for (name, plan_bytes, r) in [
        ("5 MB plan", GENEROUS_BYTES, &generous),
        ("mid-hour plan", MID_HOUR_BYTES, &mid_hour),
    ] {
        out.row(format!(
            "{name:>14} ({plan_bytes:>9} B): {:>3} polls, {:>2} sends held on bytes, {:>8} B left{}",
            r.polls,
            r.blocked_sends,
            r.final_bytes,
            if r.exhausted { "  [EXHAUSTED]" } else { "" },
        ));
    }
    out.metric("generous_polls", generous.polls);
    out.metric("generous_blocked_sends", generous.blocked_sends);
    out.metric("generous_final_bytes", generous.final_bytes);
    out.metric("mid_hour_polls", mid_hour.polls);
    out.metric("mid_hour_blocked_sends", mid_hour.blocked_sends);
    out.metric("mid_hour_final_bytes", mid_hour.final_bytes);
    out.traces.insert(generous.remaining);
    out.traces.insert(mid_hour.remaining);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn mid_hour_plan_exhausts_and_generous_survives() {
        let out = super::run();
        let get = |k: &str| -> i64 {
            out.summary
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.parse().unwrap())
                .unwrap()
        };
        // The generous plan never holds a send and retains most of itself.
        assert_eq!(get("generous_blocked_sends"), 0);
        assert!(get("generous_final_bytes") > 4_000_000);
        // The mid-hour plan dies partway: sends are held, polls are cut to
        // roughly half the generous run's, and the residue is below one
        // poll pair.
        assert!(get("mid_hour_blocked_sends") >= 1);
        assert!(get("mid_hour_polls") < get("generous_polls") * 3 / 4);
        assert!(get("mid_hour_final_bytes") < 13_000);
    }
}
