//! Figure 14: "The level of the reserve into which the two background
//! applications transfer their allotted joules. When the reserve reaches a
//! level sufficient to pay for the cost of transitioning the radio to the
//! active state, it is debited, the radio is turned on, and the processes
//! proceed … netd requires 125% of this level before turning the radio on
//! … Therefore, the reserve does not empty to 0."

use crate::experiments::netd_run;
use crate::output::ExperimentOutput;

/// Runs the cooperative stack and reports the pool's sawtooth.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig14",
        "netd pooled reserve level over time (paper Fig 14)",
    );
    let coop = netd_run::run(true);
    let peak = coop.pool.max_value().unwrap_or(0.0);
    // The trough *after the first grant*: the pool starts at 0 before any
    // contribution, which is not what the paper's claim is about.
    let first_peak_idx = coop
        .pool
        .points()
        .iter()
        .position(|&(_, v)| v > peak * 0.9)
        .unwrap_or(0);
    let trough_after_grants = coop.pool.points()[first_peak_idx..]
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);

    out.row(format!(
        "pool peak {peak:.1} J (paper: ~11.9 J = 125% of 9.5 J)"
    ));
    out.row(format!(
        "pool trough after first grant {trough_after_grants:.2} J (paper: never 0)"
    ));
    out.row(format!(
        "{} radio power-ups paid from the pool",
        coop.activations
    ));
    for &(t, v) in coop.pool.points().iter().step_by(30) {
        out.row(format!("t={:>6.0}s  pool={v:>6.2} J", t.as_secs_f64()));
    }
    out.metric("peak_j", format!("{peak:.2}"));
    out.metric(
        "trough_after_first_grant_j",
        format!("{trough_after_grants:.3}"),
    );
    out.metric("activations", coop.activations);
    out.traces.insert(coop.pool.clone());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn pool_sawtooths_below_125_percent_and_never_empties() {
        let out = super::run();
        let get = |k: &str| -> f64 {
            out.summary
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.parse().unwrap())
                .unwrap()
        };
        let peak = get("peak_j");
        // Peak near the 125% threshold of the ~9.5 J activation estimate.
        assert!((10.0..=13.5).contains(&peak), "peak {peak} J");
        // After grants begin, the pool retains the ~25% margin.
        let trough = get("trough_after_first_grant_j");
        assert!(trough > 0.0, "pool emptied to {trough} J");
    }
}
