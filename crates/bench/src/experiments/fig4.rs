//! Figure 4: "Radio Activation Power Draw" — one 1-byte UDP packet every
//! ~40 seconds over 400 s, showing the expensive activation episodes over
//! the 699 mW baseline, with per-episode cost 9.5 J on average (min 8.8,
//! max 11.9) and occasional outliers.

use cinder_hw::{PlatformPower, RadioModel, RadioParams};
use cinder_sim::{meter::AGILENT_SAMPLE_INTERVAL, Power, PowerMeter, SimDuration, SimRng, SimTime};

use crate::output::ExperimentOutput;

const PACKET_INTERVAL: SimDuration = SimDuration::from_secs(40);
const RUN: SimDuration = SimDuration::from_secs(400);

/// Runs the activation study.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new(
        "fig4",
        "radio activation power draw, 1-byte packet every 40 s (paper Fig 4)",
    );
    let platform = PlatformPower::htc_dream();
    let mut radio = RadioModel::new(RadioParams::htc_dream());
    let mut rng = SimRng::seed_from_u64(2011);
    let mut meter = PowerMeter::new(platform.total(Power::ZERO));
    meter.enable_sampling("radio_activation", AGILENT_SAMPLE_INTERVAL);

    let mut episode_costs: Vec<f64> = Vec::new();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + RUN;
    let mut next_packet = SimTime::from_secs(5);
    while t < end {
        // Step the meter at every radio transition for exact power shapes.
        let next = radio
            .next_transition()
            .unwrap_or(end)
            .min(next_packet)
            .min(end);
        radio.advance_to(next);
        meter.set_power(next, platform.total(radio.extra_power()));
        t = next;
        if t == next_packet && t < end {
            let out_tx = radio.transmit(t, 1, &mut rng);
            meter.add_energy(out_tx.data_energy);
            meter.set_power(t, platform.total(radio.extra_power()));
            next_packet = t + PACKET_INTERVAL;
        }
    }
    // Per-episode costs: integrate extra power over each active window.
    // The windows are disjoint; each one is an episode.
    let windows = radio.active_windows(end);
    let plateau_only = windows.len();
    {
        // Re-derive per-episode energies from the sampled trace by
        // integrating (trace − baseline) over each window.
        let trace = meter.trace().expect("sampling enabled");
        for &(start, stop) in &windows {
            let mut j = 0.0;
            let pts = trace.points();
            for w in pts.windows(2) {
                let (t0, p0) = w[0];
                let (t1, _) = w[1];
                if t0 >= start && t1 <= stop + SimDuration::from_millis(200) {
                    let dt = t1.as_secs_f64() - t0.as_secs_f64();
                    j += (p0 - 0.699) * dt;
                }
            }
            episode_costs.push(j);
        }
    }
    let n = episode_costs.len().max(1) as f64;
    let avg = episode_costs.iter().sum::<f64>() / n;
    let min = episode_costs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = episode_costs
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    out.row(format!(
        "{} activation episodes over {} s (packet every {} s)",
        plateau_only,
        RUN.as_secs_f64(),
        PACKET_INTERVAL.as_secs_f64()
    ));
    for (i, j) in episode_costs.iter().enumerate() {
        out.row(format!("episode {:>2}: {:>5.2} J over baseline", i + 1, j));
    }
    out.row(format!(
        "average {avg:.1} J (paper: 9.5), min {min:.1} J (paper: 8.8), max {max:.1} J (paper: 11.9)"
    ));
    out.metric("episodes", plateau_only);
    out.metric("avg_j", format!("{avg:.2}"));
    out.metric("min_j", format!("{min:.2}"));
    out.metric("max_j", format!("{max:.2}"));
    if let Some(trace) = meter.into_trace() {
        out.traces.insert(trace);
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn episode_costs_match_paper_band() {
        let out = super::run();
        let get = |k: &str| -> f64 {
            out.summary
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.parse().unwrap())
                .unwrap()
        };
        assert!((8.5..=10.5).contains(&get("avg_j")), "avg {}", get("avg_j"));
        assert!(get("min_j") >= 8.0);
        assert!(get("max_j") <= 12.5);
        // ~10 episodes in 400 s at one per 40 s.
        let eps: f64 = get("episodes");
        assert!((9.0..=11.0).contains(&eps));
    }

    #[test]
    fn trace_has_plateaus_and_idle_floor() {
        let out = super::run();
        let trace = out.traces.get("radio_activation").unwrap();
        let max = trace.max_value().unwrap();
        let min = trace.min_value().unwrap();
        // Ramp peaks near 2 W; idle floor at 699 mW.
        assert!(max > 1.8, "peak {max} W");
        assert!((min - 0.699).abs() < 1e-9, "floor {min} W");
    }
}
