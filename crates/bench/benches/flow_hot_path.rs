//! `flow_hot_path`: old-vs-new `flow_until` on the acceptance scenario —
//! 100 reserves, 200 constant taps, one simulated hour at the default
//! 100 ms flow tick (36,000 ticks).
//!
//! "Old" is the seed's naive per-tick loop (a fresh `BTreeMap` snapshot of
//! every reserve and a scan of every tap, per tick), retained as
//! `ResourceGraph::flow_until_reference` behind the `reference-flow`
//! feature. "New" is the `FlowEngine`: per-source index, reusable scratch,
//! and closed-form fast-forward of all-constant runs.
//!
//! Besides the criterion entries, the bench measures a fixed-iteration
//! speedup (asserting the two implementations end in the identical state)
//! and writes `BENCH_flow_hot_path.json` at the repo root to seed the
//! benchmark trajectory.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use cinder_core::{Actor, GraphConfig, Quantity, RateSpec, ResourceGraph, ResourceKind};
use cinder_label::Label;
use cinder_sim::{Energy, Power, SimTime};

const RESERVES: usize = 100;
const TAPS: usize = 200;
const BYTE_RESERVES: usize = 50;
const BYTE_TAPS: usize = 100;
const SIM_SPAN: SimTime = SimTime::from_secs(3_600);

/// The hot-path scenario: a battery fanning out through constant taps (the
/// paper's Fig-1/Fig-8 shape), sized so no source clamps within the hour.
fn const_graph() -> ResourceGraph {
    let mut g = ResourceGraph::with_config(
        Energy::from_joules(1_000_000),
        GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
    );
    let k = Actor::kernel();
    let battery = g.battery();
    let mut reserves = Vec::with_capacity(RESERVES);
    for i in 0..RESERVES {
        reserves.push(
            g.create_reserve(&k, &format!("r{i}"), Label::default_label())
                .unwrap(),
        );
    }
    for i in 0..TAPS {
        g.create_tap(
            &k,
            &format!("t{i}"),
            battery,
            reserves[i % RESERVES],
            RateSpec::constant(Power::from_milliwatts(1 + (i as u64 % 100))),
            Label::default_label(),
        )
        .unwrap();
    }
    g
}

/// The multi-kind variant: the const scenario plus a `NetworkBytes` root
/// pool fanning out through constant byte taps — one engine pass flows both
/// kinds per tick, and the whole graph stays fast-forward eligible (every
/// tap constant-rate). The multi-kind engine must not regress the
/// all-Energy closed-form factor.
fn multi_kind_graph() -> ResourceGraph {
    let mut g = const_graph();
    let k = Actor::kernel();
    let pool = g
        .create_root(&k, "byte-pool", Quantity::network_bytes(100_000_000_000))
        .unwrap();
    let mut byte_reserves = Vec::with_capacity(BYTE_RESERVES);
    for i in 0..BYTE_RESERVES {
        byte_reserves.push(
            g.create_reserve_kind(
                &k,
                &format!("b{i}"),
                Label::default_label(),
                ResourceKind::NetworkBytes,
            )
            .unwrap(),
        );
    }
    for i in 0..BYTE_TAPS {
        g.create_tap(
            &k,
            &format!("bt{i}"),
            pool,
            byte_reserves[i % BYTE_RESERVES],
            RateSpec::constant(Power::from_microwatts(1_000 + 97 * i as u64)),
            Label::default_label(),
        )
        .unwrap();
    }
    g
}

/// A mixed variant: one reserve in five gains a backward-proportional tap.
/// The engine partitions the graph per run — the proportional island ticks
/// over SoA arrays while the untouched constant fan-out is closed-formed.
fn mixed_graph() -> ResourceGraph {
    let mut g = const_graph();
    let k = Actor::kernel();
    let battery = g.battery();
    let reserves: Vec<_> = g
        .reserves()
        .map(|(id, _)| id)
        .filter(|&id| id != battery)
        .collect();
    for (i, &r) in reserves.iter().enumerate().take(RESERVES) {
        if i % 5 == 0 {
            g.create_tap(
                &k,
                &format!("bwd{i}"),
                r,
                battery,
                RateSpec::proportional(0.1),
                Label::default_label(),
            )
            .unwrap();
        }
    }
    g
}

/// The partitioned showcase: a const-heavy graph with one small
/// proportional *island* (a plugin reserve with a backward tap, fed by its
/// own battery tap). The ticked partition is 2 taps; the other ~200 are
/// closed-formed — the shape the per-source partitioning is built for.
fn mixed_partitioned_graph() -> ResourceGraph {
    let mut g = const_graph();
    let k = Actor::kernel();
    let battery = g.battery();
    let island = g
        .create_reserve(&k, "island", Label::default_label())
        .unwrap();
    g.create_tap(
        &k,
        "island-feed",
        battery,
        island,
        RateSpec::constant(Power::from_milliwatts(70)),
        Label::default_label(),
    )
    .unwrap();
    g.create_tap(
        &k,
        "island-bwd",
        island,
        battery,
        RateSpec::proportional(0.1),
        Label::default_label(),
    )
    .unwrap();
    g
}

fn bench_flow_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_hot_path_1h_100r_200t");
    group.bench_function("engine", |b| {
        b.iter_with_setup(const_graph, |mut g| {
            g.flow_until(black_box(SIM_SPAN));
            g
        })
    });
    group.bench_function("reference", |b| {
        b.iter_with_setup(const_graph, |mut g| {
            g.flow_until_reference(black_box(SIM_SPAN));
            g
        })
    });
    group.bench_function("engine_mixed", |b| {
        b.iter_with_setup(mixed_graph, |mut g| {
            g.flow_until(black_box(SIM_SPAN));
            g
        })
    });
    group.bench_function("reference_mixed", |b| {
        b.iter_with_setup(mixed_graph, |mut g| {
            g.flow_until_reference(black_box(SIM_SPAN));
            g
        })
    });
    group.bench_function("engine_mixed_partitioned", |b| {
        b.iter_with_setup(mixed_partitioned_graph, |mut g| {
            g.flow_until(black_box(SIM_SPAN));
            g
        })
    });
    group.bench_function("reference_mixed_partitioned", |b| {
        b.iter_with_setup(mixed_partitioned_graph, |mut g| {
            g.flow_until_reference(black_box(SIM_SPAN));
            g
        })
    });
    group.bench_function("engine_multi_kind", |b| {
        b.iter_with_setup(multi_kind_graph, |mut g| {
            g.flow_until(black_box(SIM_SPAN));
            g
        })
    });
    group.bench_function("reference_multi_kind", |b| {
        b.iter_with_setup(multi_kind_graph, |mut g| {
            g.flow_until_reference(black_box(SIM_SPAN));
            g
        })
    });
    group.finish();
}

/// Timed head-to-head with a fixed iteration count, asserting bit-identical
/// results, then recorded to `BENCH_flow_hot_path.json`.
fn speedup_report(_c: &mut Criterion) {
    fn time_runs<F: Fn() -> ResourceGraph>(build: F, engine: bool, iters: u32) -> (f64, Vec<i64>) {
        let mut total = 0.0;
        let mut balances = Vec::new();
        for _ in 0..iters {
            let mut g = build();
            let start = Instant::now();
            if engine {
                g.flow_until(black_box(SIM_SPAN));
            } else {
                g.flow_until_reference(black_box(SIM_SPAN));
            }
            total += start.elapsed().as_secs_f64() * 1e3;
            balances = g
                .reserves()
                .map(|(_, r)| r.balance().as_microjoules())
                .collect();
        }
        (total / iters as f64, balances)
    }

    let (engine_ms, engine_state) = time_runs(const_graph, true, 20);
    let (reference_ms, reference_state) = time_runs(const_graph, false, 5);
    assert_eq!(
        engine_state, reference_state,
        "engine and reference diverged on the const scenario"
    );
    let speedup = reference_ms / engine_ms;

    let (engine_mixed_ms, engine_mixed_state) = time_runs(mixed_graph, true, 5);
    let (reference_mixed_ms, reference_mixed_state) = time_runs(mixed_graph, false, 5);
    assert_eq!(
        engine_mixed_state, reference_mixed_state,
        "engine and reference diverged on the mixed scenario"
    );
    let mixed_speedup = reference_mixed_ms / engine_mixed_ms;

    let (engine_island_ms, engine_island_state) = time_runs(mixed_partitioned_graph, true, 20);
    let (reference_island_ms, reference_island_state) =
        time_runs(mixed_partitioned_graph, false, 5);
    assert_eq!(
        engine_island_state, reference_island_state,
        "engine and reference diverged on the mixed-partitioned scenario"
    );
    let island_speedup = reference_island_ms / engine_island_ms;

    let (engine_mk_ms, engine_mk_state) = time_runs(multi_kind_graph, true, 20);
    let (reference_mk_ms, reference_mk_state) = time_runs(multi_kind_graph, false, 5);
    assert_eq!(
        engine_mk_state, reference_mk_state,
        "engine and reference diverged on the multi-kind scenario"
    );
    let multi_kind_speedup = reference_mk_ms / engine_mk_ms;

    println!("flow_hot_path speedup (const, fast-forward): {speedup:.1}x  (reference {reference_ms:.2} ms -> engine {engine_ms:.4} ms)");
    println!("flow_hot_path speedup (mixed, partitioned):  {mixed_speedup:.1}x  (reference {reference_mixed_ms:.2} ms -> engine {engine_mixed_ms:.2} ms)");
    println!("flow_hot_path speedup (prop island):         {island_speedup:.1}x  (reference {reference_island_ms:.2} ms -> engine {engine_island_ms:.2} ms)");
    println!("flow_hot_path speedup (multi-kind, ff):      {multi_kind_speedup:.1}x  (reference {reference_mk_ms:.2} ms -> engine {engine_mk_ms:.4} ms)");
    assert!(
        speedup >= 5.0,
        "acceptance criterion: >=5x on the const scenario, got {speedup:.1}x"
    );
    assert!(
        mixed_speedup >= 10.0,
        "acceptance criterion: >=10x on the 20%-proportional scenario, got {mixed_speedup:.1}x"
    );
    assert!(
        multi_kind_speedup >= 5.0,
        "the multi-kind engine must not regress the all-Energy fast-forward factor: got {multi_kind_speedup:.1}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"flow_hot_path\",\n  \"scenario\": {{ \"reserves\": {RESERVES}, \"taps\": {TAPS}, \"sim_seconds\": 3600, \"flow_tick_ms\": 100 }},\n  \"multi_kind_scenario\": {{ \"byte_reserves\": {BYTE_RESERVES}, \"byte_taps\": {BYTE_TAPS} }},\n  \"const_all_fast_forward\": {{ \"reference_ms\": {reference_ms:.3}, \"engine_ms\": {engine_ms:.4}, \"speedup\": {speedup:.1} }},\n  \"mixed_20pct_proportional\": {{ \"reference_ms\": {reference_mixed_ms:.3}, \"engine_ms\": {engine_mixed_ms:.3}, \"speedup\": {mixed_speedup:.2} }},\n  \"mixed_partitioned_island\": {{ \"reference_ms\": {reference_island_ms:.3}, \"engine_ms\": {engine_island_ms:.3}, \"speedup\": {island_speedup:.1} }},\n  \"multi_kind_all_fast_forward\": {{ \"reference_ms\": {reference_mk_ms:.3}, \"engine_ms\": {engine_mk_ms:.4}, \"speedup\": {multi_kind_speedup:.1} }}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_flow_hot_path.json"
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("(wrote {path})");
    }
}

criterion_group!(benches, bench_flow_hot_path, speedup_report);
criterion_main!(benches);
