//! Criterion micro-benchmarks of the core abstractions: how cheap are
//! taps, label checks, scheduling decisions, and full kernel quanta?
//!
//! The paper's §3.3 motivates taps as "an efficient, special-purpose
//! thread" executed "in batch periodically to minimize scheduling and
//! context-switch overheads" — `graph_flow` quantifies that batch cost as
//! the tap count scales, and `kernel_quantum` prices a whole scheduler
//! quantum end to end.
#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cinder_core::{Actor, GraphConfig, RateSpec, ResourceGraph};
use cinder_hw::{RadioModel, RadioParams};
use cinder_kernel::{Kernel, KernelConfig};
use cinder_label::{Category, Label, Level, PrivilegeSet};
use cinder_sim::{Energy, Power, SimDuration, SimRng, SimTime};

fn graph_with_taps(n: usize) -> ResourceGraph {
    let mut g = ResourceGraph::with_config(
        Energy::from_joules(1_000_000),
        GraphConfig {
            decay: None,
            ..GraphConfig::default()
        },
    );
    let k = Actor::kernel();
    let battery = g.battery();
    for i in 0..n {
        let r = g
            .create_reserve(&k, &format!("r{i}"), Label::default_label())
            .unwrap();
        g.create_tap(
            &k,
            &format!("t{i}"),
            battery,
            r,
            RateSpec::constant(Power::from_milliwatts(1 + (i as u64 % 100))),
            Label::default_label(),
        )
        .unwrap();
    }
    g
}

fn bench_graph_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_flow_1s");
    for n in [10usize, 100, 1_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut g = graph_with_taps(n);
            let mut now = SimTime::ZERO;
            b.iter(|| {
                now += SimDuration::from_secs(1);
                g.flow_until(black_box(now));
            });
        });
    }
    group.finish();
}

fn bench_graph_flow_with_decay(c: &mut Criterion) {
    c.bench_function("graph_flow_1s_decay_100taps", |b| {
        let mut g = {
            let mut g = ResourceGraph::new(Energy::from_joules(1_000_000));
            let k = Actor::kernel();
            let battery = g.battery();
            for i in 0..100 {
                let r = g
                    .create_reserve(&k, &format!("r{i}"), Label::default_label())
                    .unwrap();
                g.create_tap(
                    &k,
                    &format!("t{i}"),
                    battery,
                    r,
                    RateSpec::constant(Power::from_milliwatts(5)),
                    Label::default_label(),
                )
                .unwrap();
            }
            g
        };
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now += SimDuration::from_secs(1);
            g.flow_until(black_box(now));
        });
    });
}

fn bench_label_checks(c: &mut Criterion) {
    let mut thread = Label::default_label();
    let mut object = Label::default_label();
    for i in 0..8 {
        thread.set(Category::new(i), Level::L2);
        object.set(Category::new(i + 4), Level::L3);
    }
    let privs = PrivilegeSet::with(&[Category::new(5), Category::new(6)]);
    c.bench_function("label_can_use_8_categories", |b| {
        b.iter(|| black_box(thread.can_use(&privs, black_box(&object))))
    });
    c.bench_function("label_join_8_categories", |b| {
        b.iter(|| black_box(thread.join(black_box(&object))))
    });
}

fn bench_transfer_and_consume(c: &mut Criterion) {
    c.bench_function("graph_transfer", |b| {
        let mut g = graph_with_taps(2);
        let k = Actor::kernel();
        let ids: Vec<_> = g.reserves().map(|(id, _)| id).collect();
        let battery = g.battery();
        let r = ids[1];
        b.iter(|| {
            g.transfer(&k, battery, r, Energy::from_microjoules(10))
                .unwrap();
            g.transfer(&k, r, battery, Energy::from_microjoules(10))
                .unwrap();
        });
    });
    c.bench_function("graph_consume_with_debt", |b| {
        let mut g = graph_with_taps(2);
        let k = Actor::kernel();
        let ids: Vec<_> = g.reserves().map(|(id, _)| id).collect();
        let r = ids[1];
        b.iter(|| {
            g.consume_with_debt(&k, r, Energy::from_microjoules(1))
                .unwrap();
        });
    });
}

fn bench_radio_estimator(c: &mut Criterion) {
    let mut radio = RadioModel::new(RadioParams::htc_dream());
    let mut rng = SimRng::seed_from_u64(1);
    radio.transmit(SimTime::ZERO, 100, &mut rng);
    c.bench_function("radio_cost_estimate_active", |b| {
        b.iter(|| black_box(radio.cost_estimate(black_box(SimTime::from_secs(5)), 1_000)))
    });
}

fn bench_kernel_quantum(c: &mut Criterion) {
    c.bench_function("kernel_run_1s_10_spinners", |b| {
        b.iter_with_setup(
            || {
                let mut k = Kernel::new(KernelConfig {
                    graph: GraphConfig {
                        decay: None,
                        ..GraphConfig::default()
                    },
                    ..KernelConfig::default()
                });
                let kactor = Actor::kernel();
                let battery = k.battery();
                for i in 0..10 {
                    let r = k
                        .graph_mut()
                        .create_reserve(&kactor, &format!("r{i}"), Label::default_label())
                        .unwrap();
                    k.graph_mut()
                        .transfer(&kactor, battery, r, Energy::from_joules(10))
                        .unwrap();
                    k.spawn_unprivileged(
                        &format!("spin{i}"),
                        Box::new(cinder_apps::Spinner::new()),
                        r,
                    );
                }
                k
            },
            |mut k| {
                k.run_until(SimTime::from_secs(1));
                black_box(k.meter().total_energy())
            },
        )
    });
}

criterion_group!(
    benches,
    bench_graph_flow,
    bench_graph_flow_with_decay,
    bench_label_checks,
    bench_transfer_and_consume,
    bench_radio_estimator,
    bench_kernel_quantum,
);
criterion_main!(benches);
