//! `kernel_hot_path`: the run loop's per-quantum cost, isolated from flow
//! arithmetic — the overhead the fleet pays 36,000 times per device-hour.
//!
//! Three device-hour shapes:
//!
//! * **busy** — one spinner thread with an ample reserve: every quantum
//!   schedules, charges, and meters. Measures the slab-indexed dispatch
//!   path (`pick_next` fast path, single-probe charge, meter dedupe).
//! * **duty-cycled** — a spinner throttled by a half-power tap: quanta
//!   alternate run/starve, exercising the throttle accounting and the
//!   flow tick every boundary.
//! * **idle-heavy** — a thread sleeping in long stretches, run both with
//!   and without `idle_skip`, so the O(1) idle-skip guard's effect is the
//!   ratio between the two.
//! * **backlit-idle** — the idle-heavy shape with a funded, lit backlight:
//!   the reserve-gated peripheral layer's steady state must still
//!   fast-forward (the coverage guard proves the span enforcement-free),
//!   bit-identically on the metered energy *and* the peripheral's drained
//!   energy.
//!
//! Writes `BENCH_kernel_hot_path.json` at the repo root.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use cinder_core::{Actor, RateSpec};
use cinder_kernel::{Ctx, FnProgram, Kernel, KernelConfig, PeripheralKind, Program, Step};
use cinder_label::Label;
use cinder_sim::{Energy, Power, SimDuration, SimTime};

/// Simulated span per measured run.
const SIM_SECS: u64 = 600;

fn kernel(idle_skip: bool) -> Kernel {
    Kernel::new(KernelConfig {
        idle_skip,
        ..KernelConfig::default()
    })
}

fn spinner() -> Box<dyn Program> {
    Box::new(FnProgram(|_ctx: &mut Ctx<'_>| {
        Step::compute(SimDuration::from_secs(1))
    }))
}

/// A thread that sleeps 60 s between 10 ms bursts — the poller shape with
/// the radio taken out of the picture.
fn sleeper() -> Box<dyn Program> {
    Box::new(FnProgram(|ctx: &mut Ctx<'_>| {
        Step::SleepUntil(ctx.now() + SimDuration::from_secs(60))
    }))
}

fn busy_kernel() -> Kernel {
    let mut k = kernel(false);
    let battery = k.battery();
    let r = k
        .graph_mut()
        .create_reserve(&Actor::kernel(), "spin", Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&Actor::kernel(), battery, r, Energy::from_joules(1_000))
        .unwrap();
    k.spawn_unprivileged("spin", spinner(), r);
    k
}

fn duty_cycled_kernel() -> Kernel {
    let mut k = kernel(false);
    let battery = k.battery();
    let r = k
        .graph_mut()
        .create_reserve(&Actor::kernel(), "half", Label::default_label())
        .unwrap();
    k.graph_mut()
        .create_tap(
            &Actor::kernel(),
            "68.5mW",
            battery,
            r,
            RateSpec::constant(Power::from_microwatts(68_500)),
            Label::default_label(),
        )
        .unwrap();
    k.spawn_unprivileged("hog", spinner(), r);
    k
}

fn idle_heavy_kernel(idle_skip: bool) -> Kernel {
    let mut k = kernel(idle_skip);
    let battery = k.battery();
    let r = k
        .graph_mut()
        .create_reserve(&Actor::kernel(), "sleepy", Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&Actor::kernel(), battery, r, Energy::from_joules(100))
        .unwrap();
    k.spawn_unprivileged("sleepy", sleeper(), r);
    k
}

/// The idle-heavy device with a funded, lit backlight: the peripheral
/// drain runs in the flow engine while the sleeper's long gaps invite the
/// fast-forward — the guard must prove the lit span steady and jump it.
fn backlit_idle_kernel(idle_skip: bool) -> Kernel {
    let mut k = idle_heavy_kernel(idle_skip);
    let battery = k.battery();
    let screen = k
        .graph_mut()
        .create_reserve(&Actor::kernel(), "screen", Label::default_label())
        .unwrap();
    k.graph_mut()
        .transfer(&Actor::kernel(), battery, screen, Energy::from_joules(100))
        .unwrap();
    k.graph_mut()
        .create_tap(
            &Actor::kernel(),
            "screen-tap",
            battery,
            screen,
            RateSpec::constant(Power::from_microwatts(600_000)),
            Label::default_label(),
        )
        .unwrap();
    k.peripheral_acquire(PeripheralKind::Backlight, screen)
        .unwrap();
    k.peripheral_enable(PeripheralKind::Backlight).unwrap();
    k
}

fn run(mut k: Kernel) -> Kernel {
    k.run_until(SimTime::from_secs(SIM_SECS));
    k
}

fn bench_kernel_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_hot_path_10min");
    group.bench_function("busy_spinner", |b| b.iter_with_setup(busy_kernel, run));
    group.bench_function("duty_cycled_spinner", |b| {
        b.iter_with_setup(duty_cycled_kernel, run)
    });
    group.bench_function("idle_heavy_no_skip", |b| {
        b.iter_with_setup(|| idle_heavy_kernel(false), run)
    });
    group.bench_function("idle_heavy_idle_skip", |b| {
        b.iter_with_setup(|| idle_heavy_kernel(true), run)
    });
    group.bench_function("backlit_idle_no_skip", |b| {
        b.iter_with_setup(|| backlit_idle_kernel(false), run)
    });
    group.bench_function("backlit_idle_idle_skip", |b| {
        b.iter_with_setup(|| backlit_idle_kernel(true), run)
    });
    group.finish();
}

/// Fixed-iteration wall times, sanity checks (skip/no-skip bit-identity on
/// the metered energy), and the seed JSON.
fn hot_path_report(_c: &mut Criterion) {
    fn time_runs<F: FnMut() -> Kernel>(mut build: F, iters: u32) -> (f64, Energy) {
        let mut total = 0.0;
        let mut energy = Energy::ZERO;
        for _ in 0..iters {
            let mut k = build();
            let start = Instant::now();
            k.run_until(SimTime::from_secs(SIM_SECS));
            total += start.elapsed().as_secs_f64() * 1e3;
            energy = k.meter().total_energy();
        }
        (total / iters as f64, energy)
    }

    let (busy_ms, _) = time_runs(busy_kernel, 10);
    let (duty_ms, _) = time_runs(duty_cycled_kernel, 10);
    let (idle_ms, idle_energy) = time_runs(|| idle_heavy_kernel(false), 10);
    let (skip_ms, skip_energy) = time_runs(|| idle_heavy_kernel(true), 10);
    assert_eq!(
        idle_energy, skip_energy,
        "idle_skip must be bit-identical on metered energy"
    );
    // The funded-peripheral steady state: a lit backlight must not pin the
    // loop — the fast-forward still engages, with identical observables.
    let run_backlit = |idle_skip: bool| {
        let mut k = backlit_idle_kernel(idle_skip);
        let start = Instant::now();
        k.run_until(SimTime::from_secs(SIM_SECS));
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        (
            wall_ms,
            k.meter().total_energy(),
            k.peripheral_energy(PeripheralKind::Backlight),
            k.peripheral_forced_shutdowns(PeripheralKind::Backlight),
        )
    };
    let (backlit_ms, backlit_energy, backlit_drain, backlit_cuts) = run_backlit(false);
    let (backlit_skip_ms, skip_backlit_energy, skip_drain, skip_cuts) = run_backlit(true);
    assert_eq!(
        (backlit_energy, backlit_drain, backlit_cuts),
        (skip_backlit_energy, skip_drain, skip_cuts),
        "a lit peripheral must not perturb the fast-forward's observables"
    );
    assert_eq!(backlit_cuts, 0, "the funded backlight must stay lit");
    assert!(
        backlit_drain >= Energy::from_joules(300),
        "600 s of 555 mW drained through the flow engine: {backlit_drain}"
    );
    let quanta = SIM_SECS * 100; // default 10 ms quantum
    let skip_speedup = idle_ms / skip_ms;
    let backlit_speedup = backlit_ms / backlit_skip_ms;
    println!(
        "kernel_hot_path: busy {busy_ms:.2} ms ({:.0} ns/quantum), duty-cycled {duty_ms:.2} ms, \
         idle {idle_ms:.2} ms vs idle_skip {skip_ms:.3} ms ({skip_speedup:.0}x), backlit idle \
         {backlit_ms:.2} ms vs skip {backlit_skip_ms:.3} ms ({backlit_speedup:.0}x)",
        busy_ms * 1e6 / quanta as f64
    );

    let json = format!(
        "{{\n  \"bench\": \"kernel_hot_path\",\n  \"scenario\": {{ \"sim_seconds\": {SIM_SECS}, \
         \"quantum_ms\": 10, \"quanta\": {quanta} }},\n  \"busy_spinner\": {{ \"wall_ms\": \
         {busy_ms:.3}, \"ns_per_quantum\": {:.1} }},\n  \"duty_cycled_spinner\": {{ \"wall_ms\": \
         {duty_ms:.3} }},\n  \"idle_heavy\": {{ \"no_skip_wall_ms\": {idle_ms:.3}, \
         \"idle_skip_wall_ms\": {skip_ms:.4}, \"skip_speedup\": {skip_speedup:.1}, \
         \"metered_energy_bit_identical\": true }},\n  \"backlit_idle\": {{ \"no_skip_wall_ms\": \
         {backlit_ms:.3}, \"idle_skip_wall_ms\": {backlit_skip_ms:.4}, \"skip_speedup\": \
         {backlit_speedup:.1}, \"backlight_drain_j\": {:.3}, \"forced_shutdowns\": {backlit_cuts}, \
         \"observables_bit_identical\": true }}\n}}\n",
        busy_ms * 1e6 / quanta as f64,
        backlit_drain.as_microjoules() as f64 / 1e6
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_kernel_hot_path.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("(wrote {path})"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_kernel_hot_path, hot_path_report);
criterion_main!(benches);
