//! `fleet_scale`: the population-scale acceptance benchmark — a
//! 1,000-device × 1-simulated-hour mixed-workload fleet, single-threaded
//! versus sharded across all cores.
//!
//! Besides the criterion entries (on a smaller fleet, to fit the bench
//! budget), the head-to-head runs the full 1,000-device fleet once per
//! configuration, asserts the two reports are byte-identical (the
//! determinism contract), and writes `BENCH_fleet_scale.json` at the repo
//! root to seed the benchmark trajectory. The report also covers the
//! fleet-at-scale acceptance runs: a fault-heavy fleet under the
//! calibrated fault storm (byte-identical across workers and with
//! fast-forward on vs off, fault ledger recorded), the steady-heavy
//! fast-forward differential (on vs off, byte-identical, speedup
//! recorded), a
//! 10,000-device streaming smoke, one million device-hours single-threaded
//! (must fit in five minutes), and a checkpoint/resume split run that must
//! equal the one-pass run byte-for-byte.

#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use cinder_fleet::{
    checkpoint_fleet, resume_fleet, run_fleet_with, simulate_device, stream_fleet_with,
    FleetCheckpoint, Scenario,
};
use cinder_sim::SimDuration;

const HORIZON_S: u64 = 3_600;

/// Acceptance fleet size: 1,000 devices unless `CINDER_FLEET_DEVICES`
/// overrides it (the knob CI and local profiling use to scale the run
/// without editing the bench).
fn acceptance_devices() -> u32 {
    std::env::var("CINDER_FLEET_DEVICES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000)
}

fn acceptance_scenario(devices: u32) -> Scenario {
    Scenario {
        horizon: SimDuration::from_secs(HORIZON_S),
        ..Scenario::mixed("fleet-scale", 2_026, devices)
    }
}

/// The peripheral-heavy population: navigators and screen-on browsers
/// exercising the reserve-gated backlight/GPS layer at fleet scale.
fn peripheral_scenario(devices: u32) -> Scenario {
    Scenario {
        horizon: SimDuration::from_secs(HORIZON_S),
        ..Scenario::peripheral_heavy("fleet-scale-peripheral", 2_027, devices)
    }
}

/// The offload-heavy population: break-even offloaders against a shared
/// responsive backend (capacity 64 against the default mean-field load).
fn offload_scenario(devices: u32) -> Scenario {
    Scenario {
        horizon: SimDuration::from_secs(HORIZON_S),
        ..Scenario::offload_heavy("fleet-scale-offload", 2_031, devices, 64)
    }
}

/// The policy-heavy population: screen-heavy interactive devices under the
/// user-aware lifetime-target controller, ticking policy decisions on the
/// quantum grid at fleet scale.
fn policy_scenario(devices: u32) -> Scenario {
    Scenario {
        horizon: SimDuration::from_secs(HORIZON_S),
        ..Scenario::policy_heavy("fleet-scale-policy", 2_032, devices)
    }
}

/// The fault-heavy population: the calibrated fault storm — link flaps,
/// kill/respawn crashes, battery aging, shared backend outages — layered
/// over an offloading, policy-controlled mixture.
fn fault_scenario(devices: u32) -> Scenario {
    Scenario {
        horizon: SimDuration::from_secs(HORIZON_S),
        ..Scenario::fault_heavy("fleet-scale-faults", 2_033, devices)
    }
}

/// Worker count for the sharded side: all cores, but at least two so the
/// sharded path (and its determinism) is exercised even on a 1-CPU runner.
fn sharded_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

fn bench_fleet_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_scale_100dev_1h");
    let scenario = acceptance_scenario(100);
    group.bench_function("threads_1", |b| b.iter(|| run_fleet_with(&scenario, 1)));
    let threads = sharded_threads();
    group.bench_function(format!("threads_{threads}"), |b| {
        b.iter(|| run_fleet_with(&scenario, threads))
    });
    let peripheral = peripheral_scenario(100);
    group.bench_function("peripheral_threads_1", |b| {
        b.iter(|| run_fleet_with(&peripheral, 1))
    });
    let offload = offload_scenario(100);
    group.bench_function("offload_heavy_threads_1", |b| {
        b.iter(|| run_fleet_with(&offload, 1))
    });
    let policy = policy_scenario(100);
    group.bench_function("policy_heavy_threads_1", |b| {
        b.iter(|| run_fleet_with(&policy, 1))
    });
    let faults = fault_scenario(100);
    group.bench_function("fault_heavy_threads_1", |b| {
        b.iter(|| run_fleet_with(&faults, 1))
    });
    group.finish();
}

/// The full acceptance run: 1,000 devices for one simulated hour, swept at
/// 1 / 2 / 4 workers, reports compared byte-for-byte at every width.
///
/// The JSON records `available_parallelism` so a flat curve on a
/// core-starved CI box (1 core → every width ~1.00x, expected) is
/// distinguishable from a genuine serialization bug (many cores, still
/// ~1.00x).
fn scale_report(_c: &mut Criterion) {
    let devices = acceptance_devices();
    let scenario = acceptance_scenario(devices);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut sweep = Vec::new();
    let mut baseline: Option<cinder_fleet::FleetReport> = None;
    let mut single_s = 0.0;
    for threads in [1usize, 2, 4] {
        let start = Instant::now();
        let report = run_fleet_with(&scenario, threads);
        let wall_s = start.elapsed().as_secs_f64();
        match &baseline {
            None => {
                single_s = wall_s;
                baseline = Some(report);
            }
            Some(single) => {
                assert_eq!(
                    single.to_json(),
                    report.to_json(),
                    "aggregate report must be thread-count invariant ({threads} threads)"
                );
                assert_eq!(single.to_csv(), report.to_csv());
            }
        }
        sweep.push((threads, wall_s));
    }

    let single = baseline.expect("sweep ran");
    let summary = single.summary();
    let lifetime = summary.lifetime_h.expect("non-empty fleet");
    let power = summary.avg_power_mw.expect("non-empty fleet");
    for &(threads, wall_s) in &sweep {
        println!(
            "fleet_scale: {devices} devices x {HORIZON_S} s  {threads} thread(s) {wall_s:.2} s \
             ({:.2}x, {cores} core(s) available)",
            single_s / wall_s
        );
    }
    println!(
        "fleet_scale: lifetime p50 {:.2} h p99 {:.2} h, tail power p99 {:.1} mW",
        lifetime.p50, lifetime.p99, power.p99
    );

    // The peripheral-heavy acceptance fleet: the reserve-gated
    // backlight/GPS layer at the same scale, byte-identical across
    // workers, with its forced-shutdown and drain telemetry recorded.
    let peripheral = peripheral_scenario(devices);
    let start = Instant::now();
    let peripheral_single = run_fleet_with(&peripheral, 1);
    let peripheral_s = start.elapsed().as_secs_f64();
    let peripheral_sharded = run_fleet_with(&peripheral, 2);
    assert_eq!(
        peripheral_single.to_json(),
        peripheral_sharded.to_json(),
        "peripheral fleet must be thread-count invariant"
    );
    let peripheral_summary = peripheral_single.summary();
    println!(
        "fleet_scale: peripheral fleet {devices} devices x {HORIZON_S} s  1 thread {peripheral_s:.2} s \
         ({:.1} kJ peripheral drain, {} forced shutdowns)",
        peripheral_summary.peripheral_energy_j / 1e3,
        peripheral_summary.forced_shutdowns
    );

    // --- Offload-heavy acceptance fleet: thousands of break-even
    // decisions against one shared backend trace, byte-identical across
    // workers, with the economy's price and latency tail recorded.
    let offload = offload_scenario(devices);
    let start = Instant::now();
    let offload_single = run_fleet_with(&offload, 1);
    let offload_s = start.elapsed().as_secs_f64();
    let offload_sharded = run_fleet_with(&offload, 2);
    assert_eq!(
        offload_single.to_json(),
        offload_sharded.to_json(),
        "offload fleet must be thread-count invariant"
    );
    let offload_summary = offload_single.summary();
    assert!(
        offload_summary.offload_completed > 0,
        "the responsive backend must complete requests"
    );
    let offload_lat = offload_summary
        .offload_latency_s
        .expect("completed requests imply a latency distribution");
    println!(
        "fleet_scale: offload fleet {devices} devices x {HORIZON_S} s  1 thread {offload_s:.2} s \
         ({} completed, latency p50 {:.0} ms p99 {:.0} ms, {:.1} J/request)",
        offload_summary.offload_completed,
        offload_lat.p50 * 1e3,
        offload_lat.p99 * 1e3,
        offload_summary.joules_per_request
    );

    // --- Policy-heavy acceptance fleet: the user-aware lifetime-target
    // controller ticking on every device, byte-identical across 1/2/4
    // workers, and with the frozen fast-forward on vs off (policy ticks
    // bound every steady epoch, so decisions land on the same instants).
    let policy = policy_scenario(devices);
    let start = Instant::now();
    let policy_single = run_fleet_with(&policy, 1);
    let policy_s = start.elapsed().as_secs_f64();
    for threads in [2usize, 4] {
        let sharded = run_fleet_with(&policy, threads);
        assert_eq!(
            policy_single.to_json(),
            sharded.to_json(),
            "policy fleet must be thread-count invariant ({threads} threads)"
        );
        assert_eq!(policy_single.to_csv(), sharded.to_csv());
    }
    let start = Instant::now();
    let policy_stepped: Vec<_> = policy
        .specs()
        .into_iter()
        .map(|mut spec| {
            spec.fast_forward = false;
            simulate_device(&spec)
        })
        .collect();
    let policy_stepped_s = start.elapsed().as_secs_f64();
    let policy_ff_identical = policy_single.devices.iter().eq(policy_stepped);
    assert!(
        policy_ff_identical,
        "fast-forward must not change any policy-fleet report"
    );
    let policy_summary = policy_single.summary();
    assert!(
        policy_summary.policy_rerates > 0,
        "the controller must act at scale"
    );
    println!(
        "fleet_scale: policy fleet {devices} devices x {HORIZON_S} s  1 thread {policy_s:.2} s \
         ({}/{} lifetime targets hit, {} re-rates, {} demotions; ff vs stepped byte-identical)",
        policy_summary.lifetime_target_hits,
        policy_summary.devices,
        policy_summary.policy_rerates,
        policy_summary.policy_demotions
    );

    // --- Fault-heavy acceptance fleet: the calibrated fault storm at the
    // same scale. Faults must ride the determinism contract unchanged —
    // byte-identical across workers and with fast-forward on vs off — and
    // the fault ledger (flaps, crashes/restarts, retries, fade) must show
    // the storm actually landed.
    let faults = fault_scenario(devices);
    let start = Instant::now();
    let fault_single = run_fleet_with(&faults, 1);
    let fault_s = start.elapsed().as_secs_f64();
    for threads in [2usize, 4] {
        let sharded = run_fleet_with(&faults, threads);
        assert_eq!(
            fault_single.to_json(),
            sharded.to_json(),
            "fault fleet must be thread-count invariant ({threads} threads)"
        );
        assert_eq!(fault_single.to_csv(), sharded.to_csv());
    }
    let fault_stepped: Vec<_> = faults
        .specs()
        .into_iter()
        .map(|mut spec| {
            spec.fast_forward = false;
            simulate_device(&spec)
        })
        .collect();
    let fault_ff_identical = fault_single.devices.iter().eq(fault_stepped);
    assert!(
        fault_ff_identical,
        "fast-forward must not change any fault-fleet report"
    );
    let fault_summary = fault_single.summary();
    assert!(fault_summary.link_flaps > 0, "the storm must flap links");
    assert!(fault_summary.crashes > 0, "the storm must kill programs");
    assert!(fault_summary.restarts > 0, "kills must respawn");
    assert!(fault_summary.retries > 0, "backoff must engage");
    assert!(fault_summary.fade_j > 0.0, "batteries must age");
    println!(
        "fleet_scale: fault fleet {devices} devices x {HORIZON_S} s  1 thread {fault_s:.2} s \
         ({} flaps, {} crashes / {} restarts, {} retries ({} exhausted), {:.0} J fade; \
         ff vs stepped byte-identical)",
        fault_summary.link_flaps,
        fault_summary.crashes,
        fault_summary.restarts,
        fault_summary.retries,
        fault_summary.retries_exhausted,
        fault_summary.fade_j
    );

    // --- Steady-heavy fast-forward acceptance: small-battery fleets whose
    // resource graphs drain and freeze mid-run. The same devices simulate
    // with the frozen fast-forward on (the fleet default) and off, both
    // single-threaded; reports must match bit-for-bit and the skip must buy
    // a large speedup on the dead tail.
    let steady = Scenario::steady_heavy("fleet-scale-steady", 2_028, 200);
    let steady_dev_h = 200.0 * steady.horizon.as_secs_f64() / 3_600.0;
    let start = Instant::now();
    let ff_report = run_fleet_with(&steady, 1);
    let ff_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let stepped: Vec<_> = steady
        .specs()
        .into_iter()
        .map(|mut spec| {
            spec.fast_forward = false;
            simulate_device(&spec)
        })
        .collect();
    let stepped_s = start.elapsed().as_secs_f64();
    let steady_identical = ff_report.devices.iter().eq(stepped);
    assert!(steady_identical, "fast-forward must not change any report");
    let ff_speedup = stepped_s / ff_s;
    assert!(
        ff_speedup >= 5.0,
        "steady-heavy fast-forward must pay for itself: {ff_speedup:.1}x"
    );
    println!(
        "fleet_scale: steady-heavy 200 devices x 24 h  ff {ff_s:.2} s vs stepped {stepped_s:.2} s \
         ({ff_speedup:.1}x, byte-identical)"
    );

    // --- Streaming 10k-device smoke: O(workers × bins) memory, all cores.
    let stream_scenario = Scenario {
        horizon: SimDuration::from_secs(HORIZON_S),
        ..Scenario::mixed("fleet-scale-stream", 2_026, 10_000)
    };
    let start = Instant::now();
    let streamed = stream_fleet_with(&stream_scenario, cores);
    let stream_10k_s = start.elapsed().as_secs_f64();
    assert_eq!(streamed.summary.devices, 10_000);
    println!(
        "fleet_scale: streaming 10000 devices x {HORIZON_S} s  {cores} worker(s) \
         {stream_10k_s:.2} s ({:.3} ms/device-hour)",
        stream_10k_s / 10_000.0 * 1e3
    );

    // --- One million device-hours, single-threaded: the steady-heavy
    // regime the fast-forward targets, streamed so memory stays O(bins).
    let million = Scenario::steady_heavy("fleet-scale-million", 2_029, 41_667);
    let million_dev_h = 41_667.0 * 24.0;
    let start = Instant::now();
    let million_report = stream_fleet_with(&million, 1);
    let million_s = start.elapsed().as_secs_f64();
    assert_eq!(million_report.summary.devices, 41_667);
    assert!(
        million_s < 300.0,
        "1M device-hours must fit in five minutes single-threaded: {million_s:.1} s"
    );
    println!(
        "fleet_scale: 1M device-hours (41667 devices x 24 h, steady-heavy) 1 thread \
         {million_s:.1} s ({:.4} ms/device-hour)",
        million_s / million_dev_h * 1e3
    );

    // --- Checkpoint/resume smoke: split the streamed acceptance fleet at
    // an uneven point, push the checkpoint through its text format, and
    // require the resumed summary to equal the one-pass run byte-for-byte.
    let ckpt_scenario = Scenario {
        horizon: SimDuration::from_secs(HORIZON_S),
        ..Scenario::mixed("fleet-scale-ckpt", 2_026, 200)
    };
    let one_pass = stream_fleet_with(&ckpt_scenario, 2);
    let cp = checkpoint_fleet(&ckpt_scenario, 73, 2);
    let revived = FleetCheckpoint::from_text(&cp.to_text()).expect("checkpoint round-trip");
    let resumed = resume_fleet(&revived, &ckpt_scenario, 2).expect("identity matches");
    let split_equals_single = resumed.to_json() == one_pass.to_json();
    assert!(split_equals_single, "split run diverged from single run");
    println!("fleet_scale: checkpoint/resume split at 73/200 is byte-identical");

    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|&(threads, wall_s)| {
            format!(
                "  \"threads_{threads}\": {{ \"wall_s\": {wall_s:.3}, \"speedup\": {:.2} }}",
                single_s / wall_s
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fleet_scale\",\n  \"scenario\": {{ \"devices\": {devices}, \
         \"sim_seconds\": {HORIZON_S}, \"mix\": \"pollers-coop:4 pollers-uncoop:2 browser:2 \
         gallery:1 spinner:1\" }},\n  \"available_parallelism\": {cores},\n{},\n  \
         \"reports_byte_identical\": true,\n  \"lifetime_h\": {{ \"p50\": {:.3}, \"p90\": {:.3}, \
         \"p99\": {:.3} }},\n  \"tail_power_mw_p99\": {:.3},\n  \"peripheral_fleet\": {{ \
         \"devices\": {devices}, \"mix\": \"navigator:5 screen-on:4 pollers-coop:1\", \
         \"wall_s\": {peripheral_s:.3}, \"peripheral_energy_j\": {:.1}, \"forced_shutdowns\": {}, \
         \"reports_byte_identical\": true }},\n  \"offload_heavy\": {{ \"devices\": {devices}, \
         \"mix\": \"offloader:8 pollers-coop:2\", \"backend_capacity\": 64, \
         \"wall_s\": {offload_s:.3}, \"completed\": {}, \"rejected\": {}, \"timed_out\": {}, \
         \"latency_s\": {{ \"p50\": {:.4}, \"p99\": {:.4} }}, \"joules_per_request\": {:.3}, \
         \"reports_byte_identical\": true }},\n  \"policy_heavy\": {{ \"devices\": {devices}, \
         \"sim_seconds\": {HORIZON_S}, \"mix\": \"screen-on:6 navigator:1 pollers-coop:2 \
         spinner:1\", \"policy\": \"user-aware\", \"wall_s\": {policy_s:.3}, \
         \"stepped_wall_s\": {policy_stepped_s:.3}, \"lifetime_target_hits\": {}, \
         \"policy_rerates\": {}, \"policy_demotions\": {}, \
         \"ff_byte_identical\": {policy_ff_identical}, \
         \"reports_byte_identical\": true }},\n  \"fault_heavy\": {{ \"devices\": {devices}, \
         \"sim_seconds\": {HORIZON_S}, \"mix\": \"offloader:4 pollers-coop:4 spinner:2\", \
         \"faults\": \"flaps+crashes+aging+outages\", \"wall_s\": {fault_s:.3}, \
         \"link_flaps\": {}, \"crashes\": {}, \"restarts\": {}, \"retries\": {}, \
         \"retries_exhausted\": {}, \"fade_j\": {:.1}, \
         \"ff_byte_identical\": {fault_ff_identical}, \
         \"reports_byte_identical\": true }},\n  \"steady_heavy\": {{ \"devices\": 200, \
         \"sim_hours_per_device\": 24, \"mix\": \"pollers-coop:5 spinner:3\", \
         \"ff_wall_s\": {ff_s:.3}, \"stepped_wall_s\": {stepped_s:.3}, \
         \"ff_speedup\": {ff_speedup:.1}, \"device_hours\": {steady_dev_h:.0}, \
         \"reports_byte_identical\": {steady_identical} }},\n  \"streaming_10k\": {{ \
         \"devices\": 10000, \"sim_seconds\": {HORIZON_S}, \"workers\": {cores}, \
         \"wall_s\": {stream_10k_s:.3}, \"memory\": \"O(workers x bins)\" }},\n  \
         \"million_device_hours\": {{ \"devices\": 41667, \"sim_hours_per_device\": 24, \
         \"mix\": \"steady-heavy\", \"threads\": 1, \"wall_s\": {million_s:.3}, \
         \"ms_per_device_hour\": {:.4}, \"under_5_min\": {} }},\n  \"checkpoint_resume\": {{ \
         \"split_at\": 73, \"devices\": 200, \"split_equals_single\": {split_equals_single} \
         }}\n}}\n",
        sweep_json.join(",\n"),
        lifetime.p50,
        lifetime.p90,
        lifetime.p99,
        power.p99,
        peripheral_summary.peripheral_energy_j,
        peripheral_summary.forced_shutdowns,
        offload_summary.offload_completed,
        offload_summary.offload_rejected,
        offload_summary.offload_timed_out,
        offload_lat.p50,
        offload_lat.p99,
        offload_summary.joules_per_request,
        policy_summary.lifetime_target_hits,
        policy_summary.policy_rerates,
        policy_summary.policy_demotions,
        fault_summary.link_flaps,
        fault_summary.crashes,
        fault_summary.restarts,
        fault_summary.retries,
        fault_summary.retries_exhausted,
        fault_summary.fade_j,
        million_s / million_dev_h * 1e3,
        million_s < 300.0,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet_scale.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("(wrote {path})"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_fleet_scale, scale_report);
criterion_main!(benches);
