//! `fleet_scale`: the population-scale acceptance benchmark — a
//! 1,000-device × 1-simulated-hour mixed-workload fleet, single-threaded
//! versus sharded across all cores.
//!
//! Besides the criterion entries (on a smaller fleet, to fit the bench
//! budget), the head-to-head runs the full 1,000-device fleet once per
//! configuration, asserts the two reports are byte-identical (the
//! determinism contract), and writes `BENCH_fleet_scale.json` at the repo
//! root to seed the benchmark trajectory.

#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

use cinder_fleet::{run_fleet_with, Scenario};
use cinder_sim::SimDuration;

const DEVICES: u32 = 1_000;
const HORIZON_S: u64 = 3_600;

fn acceptance_scenario(devices: u32) -> Scenario {
    Scenario {
        horizon: SimDuration::from_secs(HORIZON_S),
        ..Scenario::mixed("fleet-scale", 2_026, devices)
    }
}

/// The peripheral-heavy population: navigators and screen-on browsers
/// exercising the reserve-gated backlight/GPS layer at fleet scale.
fn peripheral_scenario(devices: u32) -> Scenario {
    Scenario {
        horizon: SimDuration::from_secs(HORIZON_S),
        ..Scenario::peripheral_heavy("fleet-scale-peripheral", 2_027, devices)
    }
}

/// Worker count for the sharded side: all cores, but at least two so the
/// sharded path (and its determinism) is exercised even on a 1-CPU runner.
fn sharded_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

fn bench_fleet_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_scale_100dev_1h");
    let scenario = acceptance_scenario(100);
    group.bench_function("threads_1", |b| b.iter(|| run_fleet_with(&scenario, 1)));
    let threads = sharded_threads();
    group.bench_function(format!("threads_{threads}"), |b| {
        b.iter(|| run_fleet_with(&scenario, threads))
    });
    let peripheral = peripheral_scenario(100);
    group.bench_function("peripheral_threads_1", |b| {
        b.iter(|| run_fleet_with(&peripheral, 1))
    });
    group.finish();
}

/// The full acceptance run: 1,000 devices for one simulated hour, swept at
/// 1 / 2 / 4 workers, reports compared byte-for-byte at every width.
///
/// The JSON records `available_parallelism` so a flat curve on a
/// core-starved CI box (1 core → every width ~1.00x, expected) is
/// distinguishable from a genuine serialization bug (many cores, still
/// ~1.00x).
fn scale_report(_c: &mut Criterion) {
    let scenario = acceptance_scenario(DEVICES);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut sweep = Vec::new();
    let mut baseline: Option<cinder_fleet::FleetReport> = None;
    let mut single_s = 0.0;
    for threads in [1usize, 2, 4] {
        let start = Instant::now();
        let report = run_fleet_with(&scenario, threads);
        let wall_s = start.elapsed().as_secs_f64();
        match &baseline {
            None => {
                single_s = wall_s;
                baseline = Some(report);
            }
            Some(single) => {
                assert_eq!(
                    single.to_json(),
                    report.to_json(),
                    "aggregate report must be thread-count invariant ({threads} threads)"
                );
                assert_eq!(single.to_csv(), report.to_csv());
            }
        }
        sweep.push((threads, wall_s));
    }

    let single = baseline.expect("sweep ran");
    let summary = single.summary();
    let lifetime = summary.lifetime_h.expect("non-empty fleet");
    let power = summary.avg_power_mw.expect("non-empty fleet");
    for &(threads, wall_s) in &sweep {
        println!(
            "fleet_scale: {DEVICES} devices x {HORIZON_S} s  {threads} thread(s) {wall_s:.2} s \
             ({:.2}x, {cores} core(s) available)",
            single_s / wall_s
        );
    }
    println!(
        "fleet_scale: lifetime p50 {:.2} h p99 {:.2} h, tail power p99 {:.1} mW",
        lifetime.p50, lifetime.p99, power.p99
    );

    // The peripheral-heavy acceptance fleet: the reserve-gated
    // backlight/GPS layer at the same scale, byte-identical across
    // workers, with its forced-shutdown and drain telemetry recorded.
    let peripheral = peripheral_scenario(DEVICES);
    let start = Instant::now();
    let peripheral_single = run_fleet_with(&peripheral, 1);
    let peripheral_s = start.elapsed().as_secs_f64();
    let peripheral_sharded = run_fleet_with(&peripheral, 2);
    assert_eq!(
        peripheral_single.to_json(),
        peripheral_sharded.to_json(),
        "peripheral fleet must be thread-count invariant"
    );
    let peripheral_summary = peripheral_single.summary();
    println!(
        "fleet_scale: peripheral fleet {DEVICES} devices x {HORIZON_S} s  1 thread {peripheral_s:.2} s \
         ({:.1} kJ peripheral drain, {} forced shutdowns)",
        peripheral_summary.peripheral_energy_j / 1e3,
        peripheral_summary.forced_shutdowns
    );

    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|&(threads, wall_s)| {
            format!(
                "  \"threads_{threads}\": {{ \"wall_s\": {wall_s:.3}, \"speedup\": {:.2} }}",
                single_s / wall_s
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fleet_scale\",\n  \"scenario\": {{ \"devices\": {DEVICES}, \
         \"sim_seconds\": {HORIZON_S}, \"mix\": \"pollers-coop:4 pollers-uncoop:2 browser:2 \
         gallery:1 spinner:1\" }},\n  \"available_parallelism\": {cores},\n{},\n  \
         \"reports_byte_identical\": true,\n  \"lifetime_h\": {{ \"p50\": {:.3}, \"p90\": {:.3}, \
         \"p99\": {:.3} }},\n  \"tail_power_mw_p99\": {:.3},\n  \"peripheral_fleet\": {{ \
         \"devices\": {DEVICES}, \"mix\": \"navigator:5 screen-on:4 pollers-coop:1\", \
         \"wall_s\": {peripheral_s:.3}, \"peripheral_energy_j\": {:.1}, \"forced_shutdowns\": {}, \
         \"reports_byte_identical\": true }}\n}}\n",
        sweep_json.join(",\n"),
        lifetime.p50,
        lifetime.p90,
        lifetime.p99,
        power.p99,
        peripheral_summary.peripheral_energy_j,
        peripheral_summary.forced_shutdowns
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet_scale.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("(wrote {path})"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_fleet_scale, scale_report);
criterion_main!(benches);
