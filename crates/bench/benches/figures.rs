//! `cargo bench` target that regenerates every paper artifact, timing each
//! regeneration. This is the "full benchmark harness" entry point: after a
//! run, `target/experiments/` holds the CSV series behind every figure and
//! the printed rows mirror the paper's tables.

use std::time::Instant;

use cinder_bench::{experiment_ids, run_experiment};

fn main() {
    println!("regenerating all paper artifacts (figures + tables)…\n");
    let mut failures = 0;
    for id in experiment_ids() {
        let start = Instant::now();
        let out = run_experiment(id);
        let elapsed = start.elapsed();
        print!("{}", out.render());
        if let Err(e) = out.save_csv() {
            eprintln!("warning: could not write CSVs for {id}: {e}");
            failures += 1;
        }
        println!("[regenerated {id} in {elapsed:.2?}]\n");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
