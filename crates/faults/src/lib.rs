//! Deterministic fault injection for Cinder fleets.
//!
//! Cinder's argument is graceful degradation under scarcity, but a
//! fault-free simulation never exercises the "degrade" half. This crate
//! supplies the adversity: per-device [`FaultPlan`]s schedule radio link
//! flaps, transient app crashes, and battery aging, while fleet-shared
//! outage windows darken the offload backend. Everything is a pure
//! function of [`cinder_sim::SimRng::split`] child streams — like
//! presence traces — so fault-heavy fleets keep the byte-identical
//! determinism contract across worker layouts, fast-forward settings,
//! and checkpoint splits.
//!
//! The resilience side lives here too: [`RetryPolicy`] is the bounded
//! retry-with-exponential-backoff helper the offloader and pollers use.
//! Every backoff instant is quantized up to the scheduler quantum grid,
//! so recovery actions land where the kernel's step loop (and its
//! fast-forward certification) can see them.

mod plan;
mod retry;

pub use plan::{
    CrashEvent, FaultConfig, FaultPlan, FlapSemantics, OutageSpec, FAULT_STREAM, OUTAGE_STREAM,
};
pub use retry::RetryPolicy;

use cinder_sim::{SimDuration, SimTime};

/// Rounds `t` up to the next multiple of `quantum` (identity when `t`
/// is already on the grid or `quantum` is zero).
///
/// Every fault boundary and every retry instant passes through this, so
/// injected events only ever land where the kernel's quantum loop steps.
pub fn align_up(t: SimTime, quantum: SimDuration) -> SimTime {
    let q = quantum.as_micros();
    if q == 0 {
        return t;
    }
    SimTime::from_micros(t.as_micros().div_ceil(q) * q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_snaps_to_grid() {
        let q = SimDuration::from_millis(10);
        assert_eq!(align_up(SimTime::ZERO, q), SimTime::ZERO);
        assert_eq!(
            align_up(SimTime::from_micros(1), q),
            SimTime::from_millis(10)
        );
        assert_eq!(
            align_up(SimTime::from_millis(10), q),
            SimTime::from_millis(10)
        );
        assert_eq!(
            align_up(SimTime::from_micros(10_001), q),
            SimTime::from_millis(20)
        );
        let t = SimTime::from_micros(12_345);
        assert_eq!(align_up(t, SimDuration::ZERO), t);
    }
}
