//! Bounded retry with exponential backoff.
//!
//! The resilience half of the fault layer: a failed send or offload may
//! be retried, but only a bounded number of times and only before a
//! per-operation deadline — the backstop against silent retry storms.
//! Backoff instants are quantized up to the scheduler quantum grid so
//! every retry lands where the kernel's step loop (and fast-forward
//! certification) can see it.

use cinder_sim::{SimDuration, SimTime};

use crate::align_up;

/// A bounded exponential-backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first (must be ≥ 1).
    pub max_attempts: u32,
    /// Backoff before attempt 2; doubles for each later attempt.
    pub base_backoff: SimDuration,
    /// Hard deadline measured from the first attempt: no retry may be
    /// scheduled at or past `started + deadline`.
    pub deadline: SimDuration,
}

impl RetryPolicy {
    /// Where attempt `failed + 1` may run, given that `failed` attempts
    /// (≥ 1) have already been made, the first of them at `started`.
    ///
    /// Returns `None` when the budget is spent — either all
    /// `max_attempts` are used or the exponential backoff would land at
    /// or past the deadline. The returned instant is aligned up to the
    /// `quantum` grid and strictly after `now`.
    pub fn next_attempt_at(
        &self,
        started: SimTime,
        now: SimTime,
        failed: u32,
        quantum: SimDuration,
    ) -> Option<SimTime> {
        assert!(failed >= 1, "next_attempt_at is for after a failure");
        if failed >= self.max_attempts {
            return None;
        }
        // Cap the shift: beyond 2^20 the backoff has long since passed
        // any realistic deadline and the multiply must not overflow.
        let factor = 1u64 << (failed - 1).min(20);
        let backoff =
            SimDuration::from_micros(self.base_backoff.as_micros().saturating_mul(factor).max(1));
        let at = align_up(now.max(started) + backoff, quantum);
        let cutoff = started + self.deadline;
        if at >= cutoff {
            return None;
        }
        // The bounded-retry lint: whatever the inputs, a scheduled
        // attempt is within budget on both axes. `debug_assert` so the
        // invariant is machine-checked in every test run.
        debug_assert!(
            failed < self.max_attempts && at < cutoff && at > now,
            "bounded-retry lint violated: attempt {} of {} at {} (deadline {})",
            failed + 1,
            self.max_attempts,
            at,
            cutoff,
        );
        Some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: SimDuration = SimDuration::from_millis(10);

    #[test]
    fn backoff_doubles_and_snaps_to_the_grid() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_millis(15),
            deadline: SimDuration::from_secs(10),
        };
        let t0 = SimTime::from_secs(1);
        let a1 = p.next_attempt_at(t0, t0, 1, Q).unwrap();
        assert_eq!(a1, SimTime::from_micros(1_020_000), "15 ms aligned up");
        let a2 = p.next_attempt_at(t0, a1, 2, Q).unwrap();
        assert_eq!(a2, SimTime::from_micros(1_050_000), "+30 ms");
        let a3 = p.next_attempt_at(t0, a2, 3, Q).unwrap();
        assert_eq!(a3, SimTime::from_micros(1_110_000), "+60 ms");
        assert_eq!(p.next_attempt_at(t0, a3, 4, Q), None, "attempts spent");
    }

    #[test]
    fn deadline_cuts_the_schedule_short() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: SimDuration::from_secs(1),
            deadline: SimDuration::from_secs(5),
        };
        let t0 = SimTime::ZERO;
        let mut now = t0;
        let mut attempts = 1u32;
        while let Some(at) = p.next_attempt_at(t0, now, attempts, Q) {
            assert!(at < t0 + p.deadline);
            now = at;
            attempts += 1;
        }
        // 1 + 2 = 3 s of backoff fit; the next (4 s) would land at 7 s.
        assert_eq!(attempts, 3, "deadline must stop the doubling early");
    }

    #[test]
    fn no_schedule_ever_exceeds_the_budget() {
        // The lint's unit test: walk every schedule to exhaustion over a
        // grid of configs and check both bounds on every step.
        for max_attempts in 1..8u32 {
            for base_ms in [1u64, 7, 100, 2_500] {
                for deadline_s in [1u64, 9, 300] {
                    let p = RetryPolicy {
                        max_attempts,
                        base_backoff: SimDuration::from_millis(base_ms),
                        deadline: SimDuration::from_secs(deadline_s),
                    };
                    let t0 = SimTime::from_secs(42);
                    let mut now = t0;
                    let mut failed = 1u32;
                    while let Some(at) = p.next_attempt_at(t0, now, failed, Q) {
                        failed += 1;
                        assert!(failed <= p.max_attempts, "attempt overrun: {p:?}");
                        assert!(at < t0 + p.deadline, "deadline overrun: {p:?}");
                        assert!(at > now, "time must advance: {p:?}");
                        assert_eq!(at.as_micros() % Q.as_micros(), 0, "off grid: {p:?}");
                        now = at;
                    }
                    assert!(failed <= p.max_attempts);
                }
            }
        }
    }

    #[test]
    fn single_attempt_policies_never_retry() {
        let p = RetryPolicy {
            max_attempts: 1,
            base_backoff: SimDuration::from_secs(1),
            deadline: SimDuration::from_secs(100),
        };
        assert_eq!(p.next_attempt_at(SimTime::ZERO, SimTime::ZERO, 1, Q), None);
    }
}
