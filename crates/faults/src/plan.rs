//! Seeded fault schedules.
//!
//! A [`FaultPlan`] is to adversity what `PresenceTrace` is to the user:
//! a pure function of `(seed, quantum, horizon, config)` that every
//! rebuild — any worker layout, fast-forward setting, or checkpoint
//! split — reproduces bit-for-bit. All draws come from child streams
//! split off the device seed, so enabling faults never perturbs the
//! parent stream that feeds workload and battery draws.

use cinder_sim::{Energy, Power, SimDuration, SimRng, SimTime};

use crate::align_up;
use crate::retry::RetryPolicy;

/// The RNG stream id per-device fault schedules are split from.
pub const FAULT_STREAM: u64 = 0x66_6c_74; // "flt"

/// The RNG stream id fleet-shared backend outage windows are split from.
pub const OUTAGE_STREAM: u64 = 0x6f_75_74; // "out"

/// What happens to in-flight inbound transfers when the link drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlapSemantics {
    /// Deliveries freeze and complete when the link returns; nothing is
    /// lost, everything is billed on (delayed) delivery.
    Stall,
    /// In-flight deliveries are dropped and never billed: the paper's
    /// bill-on-delivery rule means an undelivered packet costs the
    /// receiver nothing.
    DropRefund,
    /// In-flight deliveries are lost but the receiver still pays for
    /// the doomed bytes when the link returns (the radio spent the
    /// energy either way).
    DropSink,
}

/// Fleet-shared backend outage process: every device derives the same
/// windows from `seed`, so the backend goes dark for the whole fleet at
/// once — a capacity dip, not per-device noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageSpec {
    /// Seed for the outage renewal process (scenario seed, not device).
    pub seed: u64,
    /// Mean backend uptime between outages.
    pub mean_up: SimDuration,
    /// Mean outage length.
    pub mean_down: SimDuration,
}

/// One scheduled transient crash: at `at`, the supervisor kills the
/// workload thread selected by `victim` (modulo the respawnable set)
/// and restarts it after the configured delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Quantum-aligned kill instant.
    pub at: SimTime,
    /// Raw victim draw; the runtime takes it modulo the number of
    /// respawnable threads so the plan stays independent of workloads.
    pub victim: u64,
}

/// Everything the fault injector needs to know, as plain scenario data.
///
/// A zero mean disables the corresponding fault class, so the same type
/// describes anything from "quiet" to the `fault_heavy` gauntlet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Mean link uptime between flaps (zero up-time still flaps if
    /// `flap_mean_down` is nonzero).
    pub flap_mean_up: SimDuration,
    /// Mean flap (link-down) length; zero disables flaps entirely.
    pub flap_mean_down: SimDuration,
    /// What happens to in-flight deliveries at flap start.
    pub flap_semantics: FlapSemantics,
    /// Mean interval between transient app crashes; zero disables.
    pub crash_mean_interval: SimDuration,
    /// How long a crashed thread stays down before the supervisor
    /// respawns it.
    pub crash_restart_delay: SimDuration,
    /// Battery aging: a constant parasitic drain charged through the
    /// typed graph (capacity fade). Zero disables.
    pub fade_power: Power,
    /// Voltage-sag-style clamp on the *effective* capacity policies
    /// plan against, in ppm (1_000_000 = no sag).
    pub sag_ppm: u64,
    /// Fleet-shared backend outage windows, if any.
    pub outages: Option<OutageSpec>,
    /// Bounded retry/backoff used by the offloader and pollers.
    pub retry: Option<RetryPolicy>,
}

impl FaultConfig {
    /// A config with every fault class disabled (useful as a base).
    pub fn quiet() -> FaultConfig {
        FaultConfig {
            flap_mean_up: SimDuration::ZERO,
            flap_mean_down: SimDuration::ZERO,
            flap_semantics: FlapSemantics::Stall,
            crash_mean_interval: SimDuration::ZERO,
            crash_restart_delay: SimDuration::ZERO,
            fade_power: Power::ZERO,
            sag_ppm: 1_000_000,
            outages: None,
            retry: None,
        }
    }

    /// The `Scenario::fault_heavy` gauntlet: flapping radios, a flaky
    /// backend, aging batteries, and periodic app crashes, with retry
    /// enabled. `outage_seed` should be the scenario seed so every
    /// device sees the same backend weather.
    pub fn heavy(outage_seed: u64) -> FaultConfig {
        FaultConfig {
            flap_mean_up: SimDuration::from_secs(400),
            flap_mean_down: SimDuration::from_secs(30),
            flap_semantics: FlapSemantics::DropSink,
            crash_mean_interval: SimDuration::from_secs(1_200),
            crash_restart_delay: SimDuration::from_secs(10),
            fade_power: Power::from_milliwatts(50),
            sag_ppm: 960_000,
            outages: Some(OutageSpec {
                seed: outage_seed,
                mean_up: SimDuration::from_secs(900),
                mean_down: SimDuration::from_secs(120),
            }),
            retry: Some(RetryPolicy {
                max_attempts: 4,
                base_backoff: SimDuration::from_secs(2),
                deadline: SimDuration::from_secs(60),
            }),
        }
    }

    /// Scales fault *frequency* by `ppm` (1_000_000 = unchanged): mean
    /// intervals between faults shrink as intensity grows, fade power
    /// grows with it, and outage/flap lengths stay put. Disabled
    /// classes (zero means) stay disabled.
    ///
    /// # Panics
    ///
    /// Panics if `ppm` is zero; express "no faults" as `Option::None`
    /// at the scenario level instead.
    pub fn with_intensity(mut self, ppm: u64) -> FaultConfig {
        assert!(ppm > 0, "zero intensity: use faults: None instead");
        let shrink = |d: SimDuration| {
            if d.is_zero() {
                d
            } else {
                SimDuration::from_micros(
                    ((d.as_micros() as u128 * 1_000_000 / ppm as u128) as u64).max(1),
                )
            }
        };
        self.flap_mean_up = shrink(self.flap_mean_up);
        self.crash_mean_interval = shrink(self.crash_mean_interval);
        self.fade_power = self.fade_power.scale_ppm(ppm);
        if let Some(o) = &mut self.outages {
            o.mean_up = shrink(o.mean_up);
        }
        self
    }

    /// True if any per-device fault class is live.
    pub fn any_device_faults(&self) -> bool {
        !self.flap_mean_down.is_zero()
            || !self.crash_mean_interval.is_zero()
            || !self.fade_power.is_zero()
    }

    /// Closed-form capacity fade at `now`: what the aging tap has
    /// drained so far. Policies subtract this from the nameplate
    /// capacity to re-plan against what is actually left.
    pub fn fade_at(&self, now: SimTime) -> Energy {
        self.fade_power.energy_over(now.since(SimTime::ZERO))
    }
}

/// A device's full fault schedule over its horizon: link flap windows
/// and crash instants, all quantum-aligned, all from split streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Half-open `[down, up)` link-down windows, sorted, disjoint.
    pub flaps: Vec<(SimTime, SimTime)>,
    /// Crash instants with raw victim draws, sorted.
    pub crashes: Vec<CrashEvent>,
}

/// A renewal dwell around `mean`: uniform in `[mean/2, 3·mean/2)`.
fn dwell(rng: &mut SimRng, mean: SimDuration) -> u64 {
    let m = mean.as_micros();
    rng.uniform_u64(m / 2, m + m / 2 + 1)
}

impl FaultPlan {
    /// An empty plan (no faults configured).
    pub fn empty() -> FaultPlan {
        FaultPlan {
            flaps: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Generates the device's schedule as a pure function of
    /// `(seed, quantum, horizon, config)`.
    ///
    /// Flap draws come first, then crash draws, each from the same
    /// [`FAULT_STREAM`] child — the order is part of the format, like a
    /// checkpoint layout. The parent stream is never advanced.
    pub fn generate(
        seed: u64,
        quantum: SimDuration,
        horizon: SimDuration,
        config: &FaultConfig,
    ) -> FaultPlan {
        let mut rng = SimRng::seed_from_u64(seed).split(FAULT_STREAM);
        let end = SimTime::ZERO + horizon;
        let min_down = quantum.as_micros().max(1);

        let mut flaps = Vec::new();
        if !config.flap_mean_down.is_zero() {
            let mut t = 0u64;
            loop {
                t += dwell(&mut rng, config.flap_mean_up);
                let start = align_up(SimTime::from_micros(t), quantum);
                if start >= end {
                    break;
                }
                let down = dwell(&mut rng, config.flap_mean_down).max(min_down);
                let stop = align_up(start + SimDuration::from_micros(down), quantum);
                let stop = stop.max(start + quantum.max(SimDuration::from_micros(1)));
                flaps.push((start, stop));
                t = stop.as_micros();
            }
        }

        let mut crashes = Vec::new();
        if !config.crash_mean_interval.is_zero() {
            let mut t = 0u64;
            loop {
                t += dwell(&mut rng, config.crash_mean_interval).max(1);
                let at = align_up(SimTime::from_micros(t), quantum);
                if at >= end {
                    break;
                }
                let victim = rng.uniform_u64(0, u64::MAX);
                crashes.push(CrashEvent { at, victim });
                // Never schedule two kills on the same boundary.
                t = at.as_micros().max(t) + 1;
            }
        }

        FaultPlan { flaps, crashes }
    }

    /// The fleet-shared backend outage windows over `horizon`. Every
    /// device calls this with the same [`OutageSpec`], so the windows —
    /// and therefore the shared `BackendTrace` — are identical
    /// fleet-wide and reproducible standalone.
    pub fn outage_windows(spec: &OutageSpec, horizon: SimDuration) -> Vec<(SimTime, SimTime)> {
        let mut rng = SimRng::seed_from_u64(spec.seed).split(OUTAGE_STREAM);
        let end = SimTime::ZERO + horizon;
        let mut windows = Vec::new();
        if spec.mean_down.is_zero() {
            return windows;
        }
        let mut t = 0u64;
        loop {
            t += dwell(&mut rng, spec.mean_up);
            let start = SimTime::from_micros(t);
            if start >= end {
                break;
            }
            let down = dwell(&mut rng, spec.mean_down).max(1);
            let stop = start + SimDuration::from_micros(down);
            windows.push((start, stop));
            t = stop.as_micros();
        }
        windows
    }

    /// Total link-down time within `[0, horizon)`, exact microseconds.
    pub fn link_down_us(&self, horizon: SimDuration) -> u64 {
        let end = SimTime::ZERO + horizon;
        self.flaps
            .iter()
            .map(|&(start, stop)| stop.min(end).saturating_since(start.min(end)).as_micros())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: SimDuration = SimDuration::from_millis(10);

    fn heavy() -> FaultConfig {
        FaultConfig::heavy(7)
    }

    #[test]
    fn plans_are_pure_functions_of_their_inputs() {
        for seed in 0..40u64 {
            let h = SimDuration::from_secs(3_600);
            let a = FaultPlan::generate(seed, Q, h, &heavy());
            let b = FaultPlan::generate(seed, Q, h, &heavy());
            assert_eq!(a, b, "seed {seed}");
            assert!(!a.flaps.is_empty(), "an hour of heavy faults must flap");
            assert!(!a.crashes.is_empty(), "an hour of heavy faults must crash");
        }
    }

    #[test]
    fn fault_and_outage_streams_are_decorrelated() {
        // Same seed, different stream ids: the per-device flap process
        // and the fleet outage process must not mirror each other.
        let cfg = heavy();
        let h = SimDuration::from_secs(7_200);
        let plan = FaultPlan::generate(7, Q, h, &cfg);
        let outages = FaultPlan::outage_windows(
            &OutageSpec {
                seed: 7,
                mean_up: cfg.flap_mean_up,
                mean_down: cfg.flap_mean_down,
            },
            h,
        );
        let starts: Vec<u64> = plan.flaps.iter().map(|w| w.0.as_micros()).collect();
        let ostarts: Vec<u64> = outages.iter().map(|w| w.0.as_micros()).collect();
        assert_ne!(starts, ostarts);
    }

    #[test]
    fn windows_are_sorted_disjoint_and_grid_aligned() {
        for seed in [1u64, 5, 11, 23] {
            let plan = FaultPlan::generate(seed, Q, SimDuration::from_secs(7_200), &heavy());
            let q = Q.as_micros();
            let mut prev_stop = SimTime::ZERO;
            for &(start, stop) in &plan.flaps {
                assert!(start >= prev_stop, "windows overlap");
                assert!(stop > start, "empty window");
                assert_eq!(start.as_micros() % q, 0, "start off the grid");
                assert_eq!(stop.as_micros() % q, 0, "stop off the grid");
                prev_stop = stop;
            }
            for w in plan.crashes.windows(2) {
                assert!(w[0].at < w[1].at, "crash instants must strictly increase");
            }
            for c in &plan.crashes {
                assert_eq!(c.at.as_micros() % q, 0, "crash off the grid");
            }
        }
    }

    #[test]
    fn zero_means_disable_their_fault_class() {
        let plan = FaultPlan::generate(3, Q, SimDuration::from_secs(86_400), &FaultConfig::quiet());
        assert_eq!(plan, FaultPlan::empty());
        assert_eq!(plan.link_down_us(SimDuration::from_secs(86_400)), 0);
    }

    #[test]
    fn outage_windows_are_fleet_shared() {
        let spec = heavy().outages.unwrap();
        let h = SimDuration::from_secs(3_600);
        let a = FaultPlan::outage_windows(&spec, h);
        let b = FaultPlan::outage_windows(&spec, h);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "an hour of heavy faults sees an outage");
        for w in a.windows(2) {
            assert!(w[0].1 <= w[1].0, "outage windows overlap");
        }
    }

    #[test]
    fn link_down_time_clamps_to_the_horizon() {
        let h = SimDuration::from_secs(3_600);
        let plan = FaultPlan::generate(17, Q, h, &heavy());
        let total = plan.link_down_us(h);
        assert!(total > 0);
        assert!(total < h.as_micros());
        // A shorter accounting horizon can only shrink the total.
        assert!(plan.link_down_us(SimDuration::from_secs(600)) <= total);
    }

    #[test]
    fn intensity_scales_fault_frequency() {
        let base = heavy();
        let hot = base.with_intensity(2_000_000);
        assert_eq!(hot.flap_mean_up, base.flap_mean_up / 2);
        assert_eq!(hot.crash_mean_interval, base.crash_mean_interval / 2);
        assert_eq!(hot.fade_power, Power::from_milliwatts(100));
        assert_eq!(hot.flap_mean_down, base.flap_mean_down, "lengths stay put");
        let h = SimDuration::from_secs(3_600);
        let calm = FaultPlan::generate(9, Q, h, &base);
        let storm = FaultPlan::generate(9, Q, h, &hot);
        assert!(storm.flaps.len() > calm.flaps.len());
        // Disabled classes stay disabled at any intensity.
        let quiet = FaultConfig::quiet().with_intensity(4_000_000);
        assert!(!quiet.any_device_faults());
    }

    #[test]
    fn fade_is_closed_form_and_monotone() {
        let cfg = heavy();
        assert_eq!(cfg.fade_at(SimTime::ZERO), Energy::ZERO);
        let hour = cfg.fade_at(SimTime::from_secs(3_600));
        assert_eq!(hour, Energy::from_joules(180), "50 mW for an hour");
        assert!(cfg.fade_at(SimTime::from_secs(7_200)) > hour);
    }
}
