//! Policies as pure functions over kernel observables.
//!
//! A [`Policy`] sees a [`PolicyInputs`] snapshot — battery and reserve
//! levels (typed graph queries made by the driver), peripheral state,
//! offload stats, and the user's [`PresenceState`] — and returns a
//! [`PolicyActions`]: tap re-rates, a backlight drive cap, and a
//! background-demotion flag, all applied by the driver through existing
//! syscalls. Because `decide` is a pure function of the snapshot,
//! fleets stay byte-identical across worker counts and fast-forward
//! on/off: the driver only has to evaluate it at deterministic tick
//! instants.

use cinder_sim::{Energy, Power, SimDuration, SimTime};

use crate::presence::PresenceState;

/// Full backlight drive in ppm (mirrors `cinder_hw::FULL_DRIVE_PPM`
/// without taking the dependency).
pub const FULL_DRIVE_PPM: u64 = 1_000_000;

/// One observable tap: a throttleable feed the policy may re-rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapObservation {
    /// The workload's nominal (jitter-scaled) feed rate.
    pub nominal: Power,
    /// The rate currently applied (last action, or nominal at boot).
    pub current: Power,
    /// Level of the reserve this tap feeds.
    pub level: Energy,
    /// True for background feeds (hogs, pollers) the policy may demote
    /// when the user is away; false for user-facing feeds.
    pub background: bool,
}

/// The observable-state snapshot a policy decides over.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyInputs<'a> {
    /// Simulated now.
    pub now: SimTime,
    /// End of the device's run.
    pub horizon: SimDuration,
    /// What the user is doing right now.
    pub presence: PresenceState,
    /// Projected remaining battery energy: capacity minus the total
    /// platform energy the meter has integrated, clamped at zero. This
    /// is the gauge a lifetime projection reads — the platform baseline
    /// is inside it, unlike the root reserve's balance, which only tap
    /// draws deplete.
    pub battery_level: Energy,
    /// Battery capacity at boot.
    pub battery_capacity: Energy,
    /// The workload's throttleable taps, in install order.
    pub taps: &'a [TapObservation],
    /// Backlight peripheral powered on?
    pub backlight_enabled: bool,
    /// Backlight drive level in ppm of full draw.
    pub backlight_drive_ppm: u64,
    /// Offload round trips completed so far (observable economy state).
    pub offload_completed: u64,
}

/// What a policy wants changed. The driver applies each field through
/// the corresponding syscall and counts the telemetry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PolicyActions {
    /// Per-tap new rates, parallel to [`PolicyInputs::taps`]. `None`
    /// means leave that tap alone.
    pub tap_rates: Vec<Option<Power>>,
    /// Cap on the backlight drive (ppm). `None` lifts any cap.
    pub backlight_cap_ppm: Option<u64>,
    /// True while background work should be demoted; the false→true
    /// edge is counted as one demotion in telemetry.
    pub demote_background: bool,
}

impl PolicyActions {
    /// No changes at all.
    pub fn inert(taps: usize) -> Self {
        PolicyActions {
            tap_rates: vec![None; taps],
            backlight_cap_ppm: None,
            demote_background: false,
        }
    }
}

/// A deterministic power policy: a pure function over observables.
pub trait Policy {
    /// Decides the actions for one tick. Must be a pure function of
    /// `inputs` — no interior mutability, no clocks, no randomness.
    fn decide(&self, inputs: &PolicyInputs) -> PolicyActions;
}

/// Which policy a fleet scenario runs; plain data so scenarios stay
/// copyable configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyVariant {
    /// Observe only: presence telemetry accrues, nothing is re-rated.
    None,
    /// A presence-blind battery saver: acts on the battery fraction
    /// alone, and only once it is already low.
    Static,
    /// The user-aware engine: lifetime-target controller plus
    /// presence-driven backlight and background demotion.
    UserAware,
}

impl PolicyVariant {
    /// All variants, in head-to-head reporting order.
    pub const ALL: [PolicyVariant; 3] = [
        PolicyVariant::None,
        PolicyVariant::Static,
        PolicyVariant::UserAware,
    ];

    /// Lower-case tag for CSV/JSON and experiment rows.
    pub fn tag(self) -> &'static str {
        match self {
            PolicyVariant::None => "none",
            PolicyVariant::Static => "static",
            PolicyVariant::UserAware => "user-aware",
        }
    }
}

/// Scenario-level policy configuration, plumbed through `DeviceSpec` as
/// plain copyable data (no RNG draws of its own).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyConfig {
    /// Which policy decides.
    pub variant: PolicyVariant,
    /// Decision cadence; the driver rounds it up to the quantum grid.
    pub tick: SimDuration,
    /// Lifetime target measured from boot ("last until 22:00"): the
    /// device should still have charge at `t = target`.
    pub target: SimDuration,
}

impl PolicyConfig {
    /// A variant deciding every 30 s with the target at `target`.
    pub fn new(variant: PolicyVariant, target: SimDuration) -> Self {
        PolicyConfig {
            variant,
            tick: SimDuration::from_secs(30),
            target,
        }
    }

    /// Builds the deciding policy object.
    pub fn build(&self) -> Box<dyn Policy> {
        match self.variant {
            PolicyVariant::None => Box::new(NullPolicy),
            PolicyVariant::Static => Box::new(StaticPolicy::default()),
            PolicyVariant::UserAware => Box::new(UserAwarePolicy::new(self.target)),
        }
    }
}

/// Observe-only: the head-to-head baseline.
pub struct NullPolicy;

impl Policy for NullPolicy {
    fn decide(&self, inputs: &PolicyInputs) -> PolicyActions {
        PolicyActions::inert(inputs.taps.len())
    }
}

/// The presence-blind battery saver every phone ships: do nothing until
/// the battery is low, then dim and halve background feeds. It ignores
/// both the user and the clock, so it acts too late to save a lifetime
/// target — exactly the gap the user-aware engine closes.
#[derive(Debug, Clone, Copy)]
pub struct StaticPolicy {
    /// Battery fraction (ppm of capacity) below which the saver kicks in.
    pub low_battery_ppm: u64,
    /// Backlight cap once low (ppm of full drive).
    pub dim_ppm: u64,
    /// Background tap scale once low (ppm of nominal).
    pub background_ppm: u64,
}

impl Default for StaticPolicy {
    fn default() -> Self {
        StaticPolicy {
            low_battery_ppm: 200_000,
            dim_ppm: 400_000,
            background_ppm: 500_000,
        }
    }
}

impl Policy for StaticPolicy {
    fn decide(&self, inputs: &PolicyInputs) -> PolicyActions {
        let threshold = inputs.battery_capacity.scale_ppm(self.low_battery_ppm);
        if inputs.battery_level > threshold {
            // Healthy battery: restore anything a previous low spell cut.
            let restore = inputs
                .taps
                .iter()
                .map(|t| (t.current != t.nominal).then_some(t.nominal))
                .collect();
            return PolicyActions {
                tap_rates: restore,
                backlight_cap_ppm: None,
                demote_background: false,
            };
        }
        let tap_rates = inputs
            .taps
            .iter()
            .map(|t| {
                let want = if t.background {
                    t.nominal.scale_ppm(self.background_ppm)
                } else {
                    t.nominal
                };
                (t.current != want).then_some(want)
            })
            .collect();
        PolicyActions {
            tap_rates,
            backlight_cap_ppm: Some(self.dim_ppm),
            demote_background: true,
        }
    }
}

/// The user-aware engine: a lifetime-target controller plus
/// presence-conditioned peripheral and background policy.
///
/// *Lifetime target.* At every tick the controller compares the burn
/// rate the remaining budget can sustain until the target instant
/// (`remaining / time-to-target`, shaved by a 5 % safety margin) with
/// the average draw observed since boot (`consumed / elapsed`). When
/// the device is burning faster than it can afford, every tap — and the
/// backlight cap — is scaled by the same `required / current` ratio,
/// the proportional-fairness shape of the paper's tap semantics. The
/// observed average includes the uncontrollable platform baseline, so
/// the controller naturally leans harder on the controllable draw as
/// the budget tightens, instead of cliffing at the end.
///
/// *Presence.* Backlight drive is capped by what the user can see:
/// full when [`PresenceState::Active`], ~60 % when glanceable, ~15 %
/// pocketed, ~1 % overnight. Background taps are additionally demoted
/// to a quarter of their (already lifetime-scaled) rate while the user
/// is away or asleep — dim-and-dark plus background demotion from the
/// energy-pattern catalog, driven by the user model.
#[derive(Debug, Clone, Copy)]
pub struct UserAwarePolicy {
    /// Lifetime target measured from boot.
    pub target: SimDuration,
    /// Demoted background scale (ppm of the lifetime-scaled rate).
    pub demote_ppm: u64,
}

/// The controller's safety margin: aim for 95 % of the even-burn rate,
/// so the device makes the target with charge in hand instead of
/// landing exactly on empty.
pub const MARGIN_PPM: u64 = 950_000;

impl UserAwarePolicy {
    /// Default engine for `target`.
    pub fn new(target: SimDuration) -> Self {
        UserAwarePolicy {
            target,
            demote_ppm: 250_000,
        }
    }

    /// The presence-conditioned backlight cap (ppm of full drive).
    pub fn drive_cap(presence: PresenceState) -> u64 {
        match presence {
            PresenceState::Active => FULL_DRIVE_PPM,
            PresenceState::Ambient => 600_000,
            PresenceState::Away => 150_000,
            PresenceState::Asleep => 10_000,
        }
    }

    /// The lifetime-target throttle in ppm: the ratio of the burn rate
    /// the remaining budget sustains until the target (margin-shaved) to
    /// the average draw observed since boot. Capped at 1 000 000 — the
    /// controller only ever throttles — and released (full rate) before
    /// the first measurable draw and once the target instant has passed.
    pub fn sustainable_ppm(&self, inputs: &PolicyInputs) -> u64 {
        let elapsed = inputs.now.since(SimTime::ZERO);
        if elapsed.is_zero() {
            return FULL_DRIVE_PPM;
        }
        let left = self.target.saturating_sub(elapsed);
        if left.is_zero() {
            return FULL_DRIVE_PPM;
        }
        let remaining = inputs.battery_level.clamp_non_negative();
        let consumed = (inputs.battery_capacity - remaining).clamp_non_negative();
        if consumed.is_zero() {
            return FULL_DRIVE_PPM;
        }
        // required/current = (remaining/left) / (consumed/elapsed),
        // in exact integer µJ·µs cross-products.
        let required = (remaining.as_microjoules() as u128) * (elapsed.as_micros() as u128);
        let current = (consumed.as_microjoules() as u128) * (left.as_micros() as u128);
        let ppm = required
            .saturating_mul(MARGIN_PPM as u128)
            .checked_div(current)
            .unwrap_or(u128::MAX);
        (ppm.min(FULL_DRIVE_PPM as u128)) as u64
    }
}

impl Policy for UserAwarePolicy {
    fn decide(&self, inputs: &PolicyInputs) -> PolicyActions {
        let scale = self.sustainable_ppm(inputs);
        let demote = matches!(inputs.presence, PresenceState::Away | PresenceState::Asleep);
        let tap_rates = inputs
            .taps
            .iter()
            .map(|t| {
                let mut want = t.nominal.scale_ppm(scale);
                if demote && t.background {
                    want = want.scale_ppm(self.demote_ppm);
                }
                // Never freeze a feed outright: a 1 µW floor keeps the
                // flow graph's tap alive and the workload unblocked.
                want = want.max(Power::from_microwatts(1));
                (t.current != want).then_some(want)
            })
            .collect();
        // The backlight obeys both masters: what the user can see and
        // what the lifetime budget can fund (floored at the overnight
        // trickle so the screen is never frozen outright).
        let cap = Self::drive_cap(inputs.presence).min(scale).max(10_000);
        PolicyActions {
            tap_rates,
            backlight_cap_ppm: Some(cap),
            demote_background: demote,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs<'a>(taps: &'a [TapObservation]) -> PolicyInputs<'a> {
        PolicyInputs {
            now: SimTime::from_secs(600),
            horizon: SimDuration::from_secs(3_600),
            presence: PresenceState::Active,
            battery_level: Energy::from_joules(300),
            battery_capacity: Energy::from_joules(600),
            taps,
            backlight_enabled: true,
            backlight_drive_ppm: FULL_DRIVE_PPM,
            offload_completed: 0,
        }
    }

    fn tap(nominal_uw: u64, background: bool) -> TapObservation {
        TapObservation {
            nominal: Power::from_microwatts(nominal_uw),
            current: Power::from_microwatts(nominal_uw),
            level: Energy::from_joules(5),
            background,
        }
    }

    #[test]
    fn null_policy_changes_nothing() {
        let taps = [tap(100_000, false), tap(50_000, true)];
        let actions = NullPolicy.decide(&inputs(&taps));
        assert_eq!(actions, PolicyActions::inert(2));
    }

    #[test]
    fn static_policy_waits_for_low_battery() {
        let taps = [tap(100_000, false), tap(50_000, true)];
        let healthy = StaticPolicy::default().decide(&inputs(&taps));
        assert_eq!(healthy.tap_rates, vec![None, None]);
        assert_eq!(healthy.backlight_cap_ppm, None);
        assert!(!healthy.demote_background);

        let mut low = inputs(&taps);
        low.battery_level = Energy::from_joules(60); // 10 % of 600 J
        let actions = StaticPolicy::default().decide(&low);
        assert_eq!(actions.tap_rates[0], None, "foreground untouched");
        assert_eq!(
            actions.tap_rates[1],
            Some(Power::from_microwatts(25_000)),
            "background halved"
        );
        assert_eq!(actions.backlight_cap_ppm, Some(400_000));
        assert!(actions.demote_background);
    }

    #[test]
    fn lifetime_controller_solves_the_sustainable_rate() {
        let taps = [tap(100_000, false), tap(100_000, true)];
        let policy = UserAwarePolicy::new(SimDuration::from_secs(3_600));
        let mut inp = inputs(&taps);
        // 600 s in, 300 of 600 J burned: the observed average is 500 mW.
        // 3 000 s to go on the remaining 300 J: the budget sustains
        // 100 mW. required/current = 1/5, shaved by the 95 % margin:
        // 190 000 ppm, applied to every tap and the backlight alike.
        assert_eq!(policy.sustainable_ppm(&inp), 190_000);
        let actions = policy.decide(&inp);
        assert_eq!(actions.tap_rates[0], Some(Power::from_microwatts(19_000)));
        assert_eq!(actions.tap_rates[1], Some(Power::from_microwatts(19_000)));
        assert_eq!(actions.backlight_cap_ppm, Some(190_000));

        // Burning slower than the budget requires: the controller never
        // over-rates past nominal — it only ever throttles.
        inp.battery_level = Energy::from_joules(550);
        assert_eq!(policy.sustainable_ppm(&inp), FULL_DRIVE_PPM);
        let actions = policy.decide(&inp);
        assert_eq!(actions.tap_rates, vec![None, None]);

        // Before any measurable draw there is no average to steer by.
        inp.battery_level = Energy::from_joules(600);
        assert_eq!(policy.sustainable_ppm(&inp), FULL_DRIVE_PPM);
    }

    #[test]
    fn presence_drives_backlight_and_demotion() {
        let taps = [tap(100_000, false), tap(100_000, true)];
        let policy = UserAwarePolicy::new(SimDuration::from_secs(3_600));
        let mut inp = inputs(&taps);
        inp.battery_level = Energy::from_joules(100_000); // lifetime not binding
        for (presence, cap) in [
            (PresenceState::Active, FULL_DRIVE_PPM),
            (PresenceState::Ambient, 600_000),
            (PresenceState::Away, 150_000),
            (PresenceState::Asleep, 10_000),
        ] {
            inp.presence = presence;
            let actions = policy.decide(&inp);
            assert_eq!(actions.backlight_cap_ppm, Some(cap), "{presence:?}");
            let demoted = matches!(presence, PresenceState::Away | PresenceState::Asleep);
            assert_eq!(actions.demote_background, demoted, "{presence:?}");
            assert_eq!(
                actions.tap_rates[0], None,
                "{presence:?}: foreground at nominal"
            );
            if demoted {
                assert_eq!(
                    actions.tap_rates[1],
                    Some(Power::from_microwatts(25_000)),
                    "{presence:?}: background quartered"
                );
            } else {
                assert_eq!(actions.tap_rates[1], None, "{presence:?}");
            }
        }
    }

    #[test]
    fn decisions_are_pure() {
        let taps = [tap(90_000, false), tap(30_000, true)];
        let mut inp = inputs(&taps);
        inp.presence = PresenceState::Away;
        inp.battery_level = Energy::from_joules(42);
        for config in [
            PolicyConfig::new(PolicyVariant::None, SimDuration::from_secs(3_600)),
            PolicyConfig::new(PolicyVariant::Static, SimDuration::from_secs(3_600)),
            PolicyConfig::new(PolicyVariant::UserAware, SimDuration::from_secs(3_600)),
        ] {
            let policy = config.build();
            let a = policy.decide(&inp);
            let b = policy.decide(&inp);
            assert_eq!(a, b, "{:?}", config.variant);
        }
    }

    #[test]
    fn past_target_the_controller_releases() {
        let taps = [tap(100_000, false)];
        let policy = UserAwarePolicy::new(SimDuration::from_secs(300));
        let inp = inputs(&taps); // now = 600 s, past the 300 s target
        assert_eq!(policy.sustainable_ppm(&inp), FULL_DRIVE_PPM);
    }
}
