//! # cinder-policy — the user-aware policy engine
//!
//! Cinder's reserves and taps (paper §4–§6) are *mechanism*: rate limits
//! any actor can hold and subdivide. This crate is *policy* — the layer
//! that decides what the rates should be, conditioned on the user.
//!
//! Three pieces, all deterministic:
//!
//! * [`PresenceTrace`] — per-device user models (screen sessions,
//!   interaction bursts, overnight idle) generated as a pure function of
//!   a `SimRng::split` child stream, queryable at any instant via
//!   [`PresenceTrace::state_at`].
//! * [`Policy`] — policies as pure functions `decide(&PolicyInputs) ->
//!   PolicyActions` over observable kernel state. Shipped variants:
//!   [`NullPolicy`] (observe only), [`StaticPolicy`] (the presence-blind
//!   battery saver), and [`UserAwarePolicy`] — a lifetime-target
//!   controller ("last until 22:00") plus presence-driven backlight caps
//!   and background demotion.
//! * [`PolicyConfig`] / [`PolicyVariant`] — plain-data scenario plumbing
//!   so fleets can run the same user population under different policies
//!   head-to-head.
//!
//! The crate deliberately depends only on `cinder-sim`: inputs and
//! actions are plain values, and the fleet driver owns all kernel
//! wiring. That keeps `decide` trivially replayable — the property the
//! fleet's byte-identity and fast-forward differential tests lean on.

mod policy;
mod presence;

pub use policy::{
    NullPolicy, Policy, PolicyActions, PolicyConfig, PolicyInputs, PolicyVariant, StaticPolicy,
    TapObservation, UserAwarePolicy, FULL_DRIVE_PPM,
};
pub use presence::{PresenceState, PresenceTrace, PRESENCE_STREAM};
