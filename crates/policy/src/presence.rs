//! Per-device user presence models.
//!
//! *User-Aware Power Management for Mobile Devices* (Lim et al.)
//! conditions power policy on what the user is doing; this module gives
//! every simulated device a replayable user. A [`PresenceTrace`] is a
//! piecewise-constant function of simulated time over four states —
//! screen-in-hand [`PresenceState::Active`], glanceable
//! [`PresenceState::Ambient`], pocketed [`PresenceState::Away`], and
//! overnight [`PresenceState::Asleep`] — generated as a pure function of
//! a [`SimRng::split`] child stream. Policies and the fleet driver both
//! read the same trace, so "what the user was doing at time t" is a
//! deterministic fact of the scenario, byte-identical across worker
//! layouts and fast-forward settings.

use cinder_sim::{SimDuration, SimRng, SimTime};

/// What the user is doing with the device at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PresenceState {
    /// Screen in hand: interaction bursts, full brightness expected.
    Active,
    /// Nearby and glanceable: screen visible but not being driven.
    Ambient,
    /// Pocketed or across the room: nothing user-visible matters.
    Away,
    /// Overnight idle: hours of guaranteed absence.
    Asleep,
}

impl PresenceState {
    /// All states, in telemetry order (the fleet's per-state columns).
    pub const ALL: [PresenceState; 4] = [
        PresenceState::Active,
        PresenceState::Ambient,
        PresenceState::Away,
        PresenceState::Asleep,
    ];

    /// Telemetry column index (see [`PresenceState::ALL`]).
    pub fn index(self) -> usize {
        match self {
            PresenceState::Active => 0,
            PresenceState::Ambient => 1,
            PresenceState::Away => 2,
            PresenceState::Asleep => 3,
        }
    }

    /// Lower-case tag for CSV/JSON.
    pub fn tag(self) -> &'static str {
        match self {
            PresenceState::Active => "active",
            PresenceState::Ambient => "ambient",
            PresenceState::Away => "away",
            PresenceState::Asleep => "asleep",
        }
    }
}

/// The RNG stream id presence traces are split from. Drawing presence
/// from `device_rng.split(PRESENCE_STREAM)` leaves the parent stream —
/// and therefore every existing workload draw — untouched.
pub const PRESENCE_STREAM: u64 = 0x70_72_65_73; // "pres"

/// A piecewise-constant presence schedule over one device's horizon.
///
/// Segments are half-open: segment `i` holds from its start until the
/// next segment's start (or forever, for the last one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresenceTrace {
    segments: Vec<(SimTime, PresenceState)>,
}

impl PresenceTrace {
    /// A trace that stays in one state forever (tests, Null policies).
    pub fn constant(state: PresenceState) -> Self {
        PresenceTrace {
            segments: vec![(SimTime::ZERO, state)],
        }
    }

    /// Generates a user for `seed` covering at least `horizon`.
    ///
    /// The model is a renewal process tuned to phone-scale rhythms:
    /// active bursts of 1–4 minutes, ambient lulls of 2–8 minutes, away
    /// stretches of 10–45 minutes, and — once the per-device bedtime
    /// arrives — a 6–9 hour sleep block. Every draw comes from a child
    /// stream split off `seed`, so the trace is a pure function of
    /// `(seed, horizon)` and identical wherever it is rebuilt.
    pub fn generate(seed: u64, horizon: SimDuration) -> Self {
        let mut rng = SimRng::seed_from_u64(seed).split(PRESENCE_STREAM);
        let mut segments = Vec::new();
        let secs = |s: f64| SimDuration::from_micros((s * 1e6) as u64);
        // Where in the waking day this run starts: seconds until bedtime.
        let mut next_bed = SimTime::ZERO + secs(rng.uniform(600.0, 57_600.0));
        let end = SimTime::ZERO + horizon;
        let mut t = SimTime::ZERO;
        // The start state is drawn so fleets mix in-hand and pocketed
        // devices at t=0.
        let mut state = match rng.uniform_u64(0, 3) {
            0 => PresenceState::Active,
            1 => PresenceState::Ambient,
            _ => PresenceState::Away,
        };
        while t <= end {
            if t >= next_bed {
                segments.push((t, PresenceState::Asleep));
                t += secs(rng.uniform(21_600.0, 32_400.0));
                next_bed = t + secs(rng.uniform(50_400.0, 61_200.0));
                state = PresenceState::Ambient;
                continue;
            }
            segments.push((t, state));
            // A waking dwell never crosses bedtime: the clamp lands the
            // next segment exactly on it, where the sleep branch takes
            // over (t strictly increases either way).
            t = (t + Self::waking_dwell(&mut rng, state)).min(next_bed);
            state = Self::next_waking(&mut rng, state);
        }
        PresenceTrace { segments }
    }

    fn waking_dwell(rng: &mut SimRng, state: PresenceState) -> SimDuration {
        let secs = match state {
            PresenceState::Active => rng.uniform(60.0, 240.0),
            PresenceState::Ambient => rng.uniform(120.0, 480.0),
            PresenceState::Away => rng.uniform(600.0, 2_700.0),
            PresenceState::Asleep => unreachable!("sleep handled by the bedtime block"),
        };
        SimDuration::from_micros((secs * 1e6) as u64)
    }

    fn next_waking(rng: &mut SimRng, state: PresenceState) -> PresenceState {
        match state {
            // After a burst the user usually lingers, sometimes pockets.
            PresenceState::Active => {
                if rng.chance(0.7) {
                    PresenceState::Ambient
                } else {
                    PresenceState::Away
                }
            }
            PresenceState::Ambient => {
                if rng.chance(0.45) {
                    PresenceState::Active
                } else {
                    PresenceState::Away
                }
            }
            _ => {
                if rng.chance(0.6) {
                    PresenceState::Ambient
                } else {
                    PresenceState::Active
                }
            }
        }
    }

    /// The state at time `t` (binary search over segment starts).
    pub fn state_at(&self, t: SimTime) -> PresenceState {
        match self
            .segments
            .partition_point(|(start, _)| *start <= t)
            .checked_sub(1)
        {
            Some(i) => self.segments[i].1,
            None => self
                .segments
                .first()
                .map(|(_, s)| *s)
                .unwrap_or(PresenceState::Ambient),
        }
    }

    /// The first state-change instant strictly after `t`, if any.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        let i = self.segments.partition_point(|(start, _)| *start <= t);
        self.segments.get(i).map(|(start, _)| *start)
    }

    /// Seconds spent in each state over `[0, horizon)`, truncated to
    /// whole seconds, indexed by [`PresenceState::index`].
    pub fn seconds_by_state(&self, horizon: SimDuration) -> [u64; 4] {
        let end = SimTime::ZERO + horizon;
        let mut out = [0u64; 4];
        for (i, (start, state)) in self.segments.iter().enumerate() {
            if *start >= end {
                break;
            }
            let seg_end = self
                .segments
                .get(i + 1)
                .map(|(s, _)| *s)
                .unwrap_or(end)
                .min(end);
            out[state.index()] += seg_end.since(*start).as_micros() / 1_000_000;
        }
        out
    }

    /// The raw segments (start, state), sorted by start.
    pub fn segments(&self) -> &[(SimTime, PresenceState)] {
        &self.segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_pure_functions_of_seed_and_horizon() {
        for seed in 0..50u64 {
            let a = PresenceTrace::generate(seed, SimDuration::from_secs(86_400));
            let b = PresenceTrace::generate(seed, SimDuration::from_secs(86_400));
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn state_at_matches_segments() {
        let trace = PresenceTrace::generate(7, SimDuration::from_secs(7_200));
        let segs = trace.segments();
        assert!(segs.len() >= 2, "a 2 h trace has several segments");
        assert_eq!(segs[0].0, SimTime::ZERO);
        for w in segs.windows(2) {
            assert!(w[0].0 < w[1].0, "segment starts strictly increase");
            assert_eq!(trace.state_at(w[0].0), w[0].1);
            let just_before = SimTime::from_micros(w[1].0.as_micros() - 1);
            assert_eq!(trace.state_at(just_before), w[0].1);
        }
        let last = segs.last().unwrap();
        assert_eq!(
            trace.state_at(last.0 + SimDuration::from_secs(999_999)),
            last.1
        );
    }

    #[test]
    fn next_change_walks_every_boundary() {
        let trace = PresenceTrace::generate(13, SimDuration::from_secs(3_600));
        let mut t = SimTime::ZERO;
        let mut seen = 1;
        while let Some(next) = trace.next_change_after(t) {
            assert!(next > t);
            seen += 1;
            t = next;
        }
        assert_eq!(seen, trace.segments().len());
    }

    #[test]
    fn seconds_by_state_covers_the_horizon() {
        for seed in [1u64, 9, 77, 1234] {
            let horizon = SimDuration::from_secs(36_000);
            let trace = PresenceTrace::generate(seed, horizon);
            let by_state = trace.seconds_by_state(horizon);
            let total: u64 = by_state.iter().sum();
            // Whole-second truncation loses at most one second per segment.
            let slack = trace.segments().len() as u64;
            assert!(
                total <= 36_000 && total + slack >= 36_000,
                "seed {seed}: {by_state:?} sums to {total}"
            );
        }
    }

    #[test]
    fn long_horizons_include_sleep() {
        let mut slept = 0;
        for seed in 0..20u64 {
            let horizon = SimDuration::from_secs(86_400);
            let trace = PresenceTrace::generate(seed, horizon);
            if trace.seconds_by_state(horizon)[PresenceState::Asleep.index()] > 0 {
                slept += 1;
            }
        }
        assert!(
            slept >= 18,
            "a full day almost always crosses bedtime: {slept}/20"
        );
    }
}
