//! Generational arena storage.
//!
//! Reserves and taps are created and destroyed constantly (the browser adds
//! a tap per page and lets container GC revoke them, §5.2), so their ids
//! must be stable against slot reuse: a dangling [`RawId`] whose slot was
//! recycled must *miss*, not alias a new object. A generation counter per
//! slot provides that, in the style of slotmap arenas, with no unsafe code.

/// An index into an [`Arena`]: slot index plus generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RawId {
    index: u32,
    generation: u32,
}

impl RawId {
    /// The slot index (for display/debugging only).
    pub fn index(self) -> u32 {
        self.index
    }

    /// The generation (for display/debugging only).
    pub fn generation(self) -> u32 {
        self.generation
    }
}

enum Slot<T> {
    Occupied { generation: u32, value: T },
    Vacant { next_generation: u32 },
}

/// A generational arena: O(1) insert/remove/lookup with ABA-safe ids.
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Inserts a value, returning its id.
    pub fn insert(&mut self, value: T) -> RawId {
        match self.free.pop() {
            Some(index) => {
                let generation = match self.slots[index as usize] {
                    Slot::Vacant { next_generation } => next_generation,
                    Slot::Occupied { .. } => unreachable!("free list pointed at occupied slot"),
                };
                self.slots[index as usize] = Slot::Occupied { generation, value };
                self.len += 1;
                RawId { index, generation }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("arena exhausted u32 indices");
                self.slots.push(Slot::Occupied {
                    generation: 0,
                    value,
                });
                self.len += 1;
                RawId {
                    index,
                    generation: 0,
                }
            }
        }
    }

    /// Looks up a value; returns `None` if the id is stale or never existed.
    pub fn get(&self, id: RawId) -> Option<&T> {
        match self.slots.get(id.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == id.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: RawId) -> Option<&mut T> {
        match self.slots.get_mut(id.index as usize) {
            Some(Slot::Occupied { generation, value }) if *generation == id.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Removes and returns the value at `id`, bumping the slot generation so
    /// stale ids can never alias a future occupant.
    pub fn remove(&mut self, id: RawId) -> Option<T> {
        match self.slots.get_mut(id.index as usize) {
            Some(slot @ Slot::Occupied { .. }) => {
                let generation = match slot {
                    Slot::Occupied { generation, .. } => *generation,
                    Slot::Vacant { .. } => unreachable!(),
                };
                if generation != id.generation {
                    return None;
                }
                let old = std::mem::replace(
                    slot,
                    Slot::Vacant {
                        next_generation: generation + 1,
                    },
                );
                self.free.push(id.index);
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Vacant { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// True if `id` currently refers to a live value.
    pub fn contains(&self, id: RawId) -> bool {
        self.get(id).is_some()
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over `(id, value)` pairs in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (RawId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Slot::Occupied { generation, value } => Some((
                    RawId {
                        index: i as u32,
                        generation: *generation,
                    },
                    value,
                )),
                Slot::Vacant { .. } => None,
            })
    }

    /// Iterates over ids in slot order.
    pub fn ids(&self) -> Vec<RawId> {
        self.iter().map(|(id, _)| id).collect()
    }

    /// Mutable iteration in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (RawId, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Slot::Occupied { generation, value } => Some((
                    RawId {
                        index: i as u32,
                        generation: *generation,
                    },
                    value,
                )),
                Slot::Vacant { .. } => None,
            })
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(self.iter().map(|(id, v)| ((id.index, id.generation), v)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_get_remove() {
        let mut a = Arena::new();
        let id = a.insert("x");
        assert_eq!(a.get(id), Some(&"x"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove(id), Some("x"));
        assert_eq!(a.get(id), None);
        assert!(a.is_empty());
    }

    #[test]
    fn stale_id_misses_after_reuse() {
        let mut a = Arena::new();
        let id1 = a.insert(1);
        a.remove(id1);
        let id2 = a.insert(2);
        // Slot reused, generation bumped.
        assert_eq!(id1.index(), id2.index());
        assert_ne!(id1.generation(), id2.generation());
        assert_eq!(a.get(id1), None);
        assert_eq!(a.remove(id1), None);
        assert_eq!(a.get(id2), Some(&2));
    }

    #[test]
    fn iter_is_slot_ordered() {
        let mut a = Arena::new();
        let i0 = a.insert(10);
        let _i1 = a.insert(20);
        let _i2 = a.insert(30);
        a.remove(i0);
        let vals: Vec<i32> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![20, 30]);
    }

    #[test]
    fn get_mut_mutates() {
        let mut a = Arena::new();
        let id = a.insert(5);
        *a.get_mut(id).unwrap() += 1;
        assert_eq!(a.get(id), Some(&6));
    }

    #[test]
    fn double_remove_is_none() {
        let mut a = Arena::new();
        let id = a.insert(());
        assert!(a.remove(id).is_some());
        assert!(a.remove(id).is_none());
    }

    proptest! {
        /// Random interleavings of inserts and removes never confuse ids:
        /// every live id maps to exactly the value inserted under it.
        #[test]
        fn ids_never_alias(ops in proptest::collection::vec(0u8..3, 1..200)) {
            let mut arena = Arena::new();
            let mut live: Vec<(RawId, u64)> = Vec::new();
            let mut dead: Vec<RawId> = Vec::new();
            let mut counter = 0u64;
            for op in ops {
                match op {
                    0 => {
                        counter += 1;
                        let id = arena.insert(counter);
                        live.push((id, counter));
                    }
                    1 if !live.is_empty() => {
                        let (id, v) = live.remove(live.len() / 2);
                        prop_assert_eq!(arena.remove(id), Some(v));
                        dead.push(id);
                    }
                    _ => {}
                }
                for (id, v) in &live {
                    prop_assert_eq!(arena.get(*id), Some(v));
                }
                for id in &dead {
                    prop_assert_eq!(arena.get(*id), None);
                }
                prop_assert_eq!(arena.len(), live.len());
            }
        }
    }
}
