//! Typed resource kinds: the §9 generalisation made first-class.
//!
//! The paper's §9 observes that reserves and taps "could be repurposed to
//! limit application network access by replacing the logical battery with a
//! pool of network bytes", and likewise for SMS quotas. Rather than punning
//! units (1 byte ↔ 1 µJ in a separate graph), the graph now *declares* what
//! each reserve holds: a [`ResourceKind`]. Taps and transfers are
//! kind-checked — a tap may only connect reserves of the same kind — and
//! conservation is tracked per kind.
//!
//! # Grains
//!
//! Internally every kind shares the graph's exact integer arithmetic: a
//! balance is a signed count of *grains* (the [`cinder_sim::Energy`]
//! micro-unit), and a rate is grains per second ([`cinder_sim::Power`]
//! micro-units), remainder carries and all. Each kind fixes what one grain
//! means:
//!
//! | kind                            | one grain      | rationale |
//! |---------------------------------|----------------|-----------|
//! | [`ResourceKind::Energy`]        | 1 µJ           | the paper's primary resource |
//! | [`ResourceKind::NetworkBytes`]  | 1 byte         | data plans are byte-metered |
//! | [`ResourceKind::SmsMessages`]   | 1/1000 message | leaves sub-message grains for fractional billing |
//!
//! [`Quantity`] and [`Rate`] wrap a raw grain amount together with its kind,
//! so the typed API boundary ([`crate::ResourceGraph::level_typed`],
//! [`crate::ResourceGraph::transfer_typed`], …) can reject cross-kind
//! arithmetic with a typed [`crate::GraphError::KindMismatch`] instead of
//! silently mixing joules with bytes.

use std::fmt;

use cinder_sim::{Energy, Power};

/// What a reserve's integer quantity means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceKind {
    /// Microjoules of energy (the paper's primary resource).
    Energy,
    /// Network bytes against a data plan (§9).
    NetworkBytes,
    /// SMS messages against a message quota (§9).
    SmsMessages,
}

impl ResourceKind {
    /// Number of kinds (sizes fixed per-kind arrays).
    pub const COUNT: usize = 3;

    /// Every kind, in stable order (indexable by [`ResourceKind::index`]).
    pub const ALL: [ResourceKind; Self::COUNT] = [
        ResourceKind::Energy,
        ResourceKind::NetworkBytes,
        ResourceKind::SmsMessages,
    ];

    /// The kind's stable index into per-kind arrays.
    pub const fn index(self) -> usize {
        match self {
            ResourceKind::Energy => 0,
            ResourceKind::NetworkBytes => 1,
            ResourceKind::SmsMessages => 2,
        }
    }

    /// Human-readable unit name (for traces and error messages).
    pub const fn unit(self) -> &'static str {
        match self {
            ResourceKind::Energy => "µJ",
            ResourceKind::NetworkBytes => "bytes",
            ResourceKind::SmsMessages => "milli-messages",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Energy => write!(f, "Energy"),
            ResourceKind::NetworkBytes => write!(f, "NetworkBytes"),
            ResourceKind::SmsMessages => write!(f, "SmsMessages"),
        }
    }
}

/// A kind-tagged amount: the typed replacement for raw [`Energy`] at the
/// graph's API boundary.
///
/// The wrapped grain count reuses [`Energy`]'s exact signed integer
/// arithmetic (negative = debt against a quota), so typed and raw views of
/// the same reserve always agree to the grain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quantity {
    kind: ResourceKind,
    raw: Energy,
}

impl Quantity {
    /// A quantity of `kind` from a raw grain count.
    pub const fn new(kind: ResourceKind, raw: Energy) -> Self {
        Quantity { kind, raw }
    }

    /// An energy quantity (1 grain = 1 µJ).
    pub const fn energy(e: Energy) -> Self {
        Quantity::new(ResourceKind::Energy, e)
    }

    /// A byte quota quantity (1 grain = 1 byte).
    pub fn network_bytes(n: u64) -> Self {
        Quantity::new(
            ResourceKind::NetworkBytes,
            Energy::from_microjoules(n as i64),
        )
    }

    /// An SMS quota quantity (1 message = 1000 grains, leaving sub-message
    /// grains for fractional billing).
    pub fn sms_messages(n: u64) -> Self {
        Quantity::new(
            ResourceKind::SmsMessages,
            Energy::from_millijoules(n as i64),
        )
    }

    /// The quantity's kind.
    pub const fn kind(self) -> ResourceKind {
        self.kind
    }

    /// The raw grain count.
    pub const fn raw(self) -> Energy {
        self.raw
    }

    /// The grain count as whole bytes. Exact for
    /// [`ResourceKind::NetworkBytes`] (1 grain = 1 byte); negative values
    /// report quota debt.
    pub const fn as_bytes(self) -> i64 {
        self.raw.as_microjoules()
    }

    /// The grain count as whole SMS messages, rounding toward negative
    /// infinity — an overdrawn quota of −500 grains is −1 message of debt,
    /// not 0.
    pub fn as_sms_messages(self) -> i64 {
        self.raw.as_microjoules().div_euclid(1_000)
    }

    /// True if strictly positive.
    pub const fn is_positive(self) -> bool {
        self.raw.is_positive()
    }

    /// True if negative (a quota in debt).
    pub const fn is_negative(self) -> bool {
        self.raw.is_negative()
    }
}

impl fmt::Display for Quantity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.raw.as_microjoules(), self.kind.unit())
    }
}

/// A kind-tagged rate: the typed replacement for raw [`Power`] when creating
/// constant-rate taps on quota graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rate {
    kind: ResourceKind,
    raw: Power,
}

impl Rate {
    /// A rate of `kind` from a raw grains-per-second count.
    pub const fn new(kind: ResourceKind, raw: Power) -> Self {
        Rate { kind, raw }
    }

    /// An energy rate (1 grain/s = 1 µW).
    pub const fn power(p: Power) -> Self {
        Rate::new(ResourceKind::Energy, p)
    }

    /// A byte rate (bytes per second).
    pub fn bytes_per_sec(n: u64) -> Self {
        Rate::new(ResourceKind::NetworkBytes, Power::from_microwatts(n))
    }

    /// An SMS rate (whole messages per second).
    pub fn sms_per_sec(n: u64) -> Self {
        Rate::new(ResourceKind::SmsMessages, Power::from_milliwatts(n))
    }

    /// The rate's kind.
    pub const fn kind(self) -> ResourceKind {
        self.kind
    }

    /// The raw grains-per-second count.
    pub const fn raw(self) -> Power {
        self.raw
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}/s", self.raw.as_microwatts(), self.kind.unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable_and_complete() {
        for (i, kind) in ResourceKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        assert_eq!(ResourceKind::ALL.len(), ResourceKind::COUNT);
    }

    #[test]
    fn quantity_roundtrips() {
        assert_eq!(Quantity::network_bytes(5_000_000).as_bytes(), 5_000_000);
        assert_eq!(Quantity::sms_messages(100).as_sms_messages(), 100);
        assert_eq!(
            Quantity::energy(Energy::from_joules(2)).raw(),
            Energy::from_joules(2)
        );
    }

    #[test]
    fn sms_debt_floors_toward_negative_infinity() {
        // −500 grains is half a message of debt: floor reports −1, because
        // the quota *is* overdrawn — truncation toward zero hid that.
        let overdrawn = Quantity::new(ResourceKind::SmsMessages, Energy::from_microjoules(-500));
        assert_eq!(overdrawn.as_sms_messages(), -1);
        // Exactly −1 message of debt is still −1, not −2.
        let exact = Quantity::new(ResourceKind::SmsMessages, Energy::from_microjoules(-1_000));
        assert_eq!(exact.as_sms_messages(), -1);
        // Positive fractions still truncate down (999 grains < 1 message).
        let fraction = Quantity::new(ResourceKind::SmsMessages, Energy::from_microjoules(999));
        assert_eq!(fraction.as_sms_messages(), 0);
    }

    #[test]
    fn rate_constructors() {
        assert_eq!(
            Rate::bytes_per_sec(1_000).raw(),
            Power::from_microwatts(1_000)
        );
        assert_eq!(Rate::sms_per_sec(2).raw(), Power::from_milliwatts(2));
        assert_eq!(
            Rate::power(Power::from_watts(1)).kind(),
            ResourceKind::Energy
        );
    }

    #[test]
    fn display_names_units() {
        assert_eq!(Quantity::network_bytes(42).to_string(), "42 bytes");
        assert_eq!(Rate::bytes_per_sec(7).to_string(), "7 bytes/s");
        assert_eq!(ResourceKind::SmsMessages.to_string(), "SmsMessages");
    }
}
