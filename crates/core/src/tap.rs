//! Taps: rate-limited transfers between reserves.
//!
//! Paper §3.3: "A tap transfers a fixed quantity of resources between two
//! reserves per unit time … Conceptually, it is an efficient, special-purpose
//! thread whose only job is to transfer energy between reserves. In practice,
//! transfers are executed in batch periodically."
//!
//! Two rate forms exist:
//!
//! * [`RateSpec::Const`] — a fixed power (µW), e.g. Fig 1's 750 mW browser
//!   tap or Fig 8's 37.5 mW poller taps.
//! * [`RateSpec::Proportional`] — a fraction of the *source* reserve per
//!   second, e.g. Fig 6b's "0.1×" backward taps that reclaim unused energy.
//!   A *backward* tap is simply a proportional tap whose source is the
//!   application reserve and whose sink is the battery.

use cinder_label::{Label, PrivilegeSet};
use cinder_sim::{Energy, Power, SimDuration};

use crate::graph::ReserveId;

/// How much a tap moves per unit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateSpec {
    /// A fixed transfer rate.
    Const(Power),
    /// A fraction of the source reserve's level per second, in parts per
    /// million (1_000_000 ppm/s would move the entire level each second).
    Proportional {
        /// Fraction of the source level transferred per second, in ppm.
        ppm_per_s: u64,
    },
}

impl RateSpec {
    /// A constant-rate tap.
    pub fn constant(rate: Power) -> Self {
        RateSpec::Const(rate)
    }

    /// A proportional tap moving `fraction` of the source per second
    /// (e.g. `0.1` for the paper's "0.1×" backward taps).
    ///
    /// Out-of-range input saturates rather than panicking: negative (and
    /// NaN) fractions clamp to `0`, fractions above `1` clamp to `1`
    /// (1,000,000 ppm — the whole source level per second). Taps are often
    /// created from untrusted application arithmetic, so a slightly-off
    /// fraction must degrade to the nearest legal rate, not abort the
    /// caller.
    pub fn proportional(fraction: f64) -> Self {
        // NaN fails both comparisons in `clamp`-style chains; make the
        // choice explicit: no signal, no flow.
        let fraction = if fraction.is_nan() { 0.0 } else { fraction };
        let ppm = (fraction.clamp(0.0, 1.0) * 1e6).round() as u64;
        RateSpec::Proportional { ppm_per_s: ppm }
    }

    /// True for zero-rate taps (a disabled foreground tap, Fig 7).
    pub fn is_zero(self) -> bool {
        match self {
            RateSpec::Const(p) => p.is_zero(),
            RateSpec::Proportional { ppm_per_s } => ppm_per_s == 0,
        }
    }
}

/// A tap object: rate + source + sink + security state (paper §3.3: "Taps
/// are made up of four pieces of state").
#[derive(Debug, Clone)]
pub struct Tap {
    name: String,
    source: ReserveId,
    sink: ReserveId,
    rate: RateSpec,
    label: Label,
    /// Privileges embedded at creation so the periodic batch flow can move
    /// resources between the endpoints (§3.5).
    embedded_privs: PrivilegeSet,
    /// Sub-microjoule carry so long-running slow taps do not lose energy to
    /// truncation. Units: µJ·µs for const taps, µJ·µs·ppm for proportional.
    remainder: u128,
    /// Monotonic creation sequence assigned by the graph. Batch flow applies
    /// taps in ascending `seq` (the documented oversubscription order);
    /// unlike arena slot order it is stable across slot reuse.
    seq: u64,
}

impl Tap {
    pub(crate) fn new(
        name: impl Into<String>,
        source: ReserveId,
        sink: ReserveId,
        rate: RateSpec,
        label: Label,
        embedded_privs: PrivilegeSet,
    ) -> Self {
        Tap {
            name: name.into(),
            source,
            sink,
            rate,
            label,
            embedded_privs,
            remainder: 0,
            seq: 0,
        }
    }

    pub(crate) fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// The graph-assigned creation sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The reserve this tap draws from.
    pub fn source(&self) -> ReserveId {
        self.source
    }

    /// The reserve this tap fills.
    pub fn sink(&self) -> ReserveId {
        self.sink
    }

    /// The current rate.
    pub fn rate(&self) -> RateSpec {
        self.rate
    }

    /// The security label protecting the tap itself (who may retarget or
    /// re-rate it).
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// The privileges embedded in the tap at creation.
    pub fn embedded_privs(&self) -> &PrivilegeSet {
        &self.embedded_privs
    }

    pub(crate) fn set_rate(&mut self, rate: RateSpec) {
        self.rate = rate;
        self.remainder = 0;
    }

    /// The sub-grain carry, for the flow engine's ticked-partition scratch.
    pub(crate) fn remainder(&self) -> u128 {
        self.remainder
    }

    /// Restores a carry advanced outside the tap (SoA ticking writeback).
    pub(crate) fn set_remainder(&mut self, remainder: u128) {
        self.remainder = remainder;
    }

    /// Computes the amount this tap wants to move over `dt`, given the
    /// source level `source_level` *at the start of the batch tick*, with
    /// drift-free remainder carry.
    ///
    /// The returned amount is non-negative and not yet clamped to the
    /// source's remaining balance; the graph applies the clamp.
    pub(crate) fn desired_transfer(&mut self, source_level: Energy, dt: SimDuration) -> Energy {
        match self.rate {
            RateSpec::Const(p) => {
                let total = (p.as_microwatts() as u128) * (dt.as_micros() as u128) + self.remainder;
                self.remainder = total % 1_000_000;
                Energy::from_microjoules((total / 1_000_000) as i64)
            }
            RateSpec::Proportional { ppm_per_s } => {
                let level = source_level.as_microjoules().max(0) as u128;
                let total = level * (ppm_per_s as u128) * (dt.as_micros() as u128) + self.remainder;
                // Divide by 1e6 (ppm) and 1e6 (µs per s).
                self.remainder = total % 1_000_000_000_000;
                Energy::from_microjoules((total / 1_000_000_000_000) as i64)
            }
        }
    }

    /// Advances a `Const` tap through `n` ticks of `dt` in closed form,
    /// returning the total it moves. Exactly equal to summing `n` calls of
    /// [`Tap::desired_transfer`]: per tick the carry obeys
    /// `rem' = (rem + p·dt) mod 1e6`, so the `n`-tick total telescopes to
    /// `(rem₀ + n·p·dt) div 1e6` with `rem_n = (rem₀ + n·p·dt) mod 1e6`.
    ///
    /// Callers (the [`crate::flow::FlowEngine`] fast-forward) must have
    /// proven the source covers the whole run, since no clamp is applied.
    /// Proportional taps return zero and are left untouched.
    pub(crate) fn bulk_advance_const(&mut self, n: u64, dt: SimDuration) -> Energy {
        let RateSpec::Const(p) = self.rate else {
            return Energy::ZERO;
        };
        let total =
            (p.as_microwatts() as u128) * (dt.as_micros() as u128) * (n as u128) + self.remainder;
        self.remainder = total % 1_000_000;
        Energy::from_microjoules((total / 1_000_000) as i64)
    }

    /// Advances a `Const` tap's carry through `n` ticks whose transfers are
    /// all clamped to zero (an empty source with no inflows). Per tick the
    /// naive loop computes a desire, fails to move it, and keeps only the
    /// carry — so the closed-form carry update is the same; the would-be
    /// moved amount is simply discarded.
    pub(crate) fn bulk_advance_const_starved(&mut self, n: u64, dt: SimDuration) {
        let _ = self.bulk_advance_const(n, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;
    use cinder_sim::SimTime;

    fn ids() -> (ReserveId, ReserveId) {
        // Manufacture distinct RawIds through a scratch arena.
        let mut a = Arena::new();
        let x = a.insert(());
        let y = a.insert(());
        (ReserveId(x), ReserveId(y))
    }

    fn tap(rate: RateSpec) -> Tap {
        let (s, k) = ids();
        Tap::new(
            "t",
            s,
            k,
            rate,
            Label::default_label(),
            PrivilegeSet::empty(),
        )
    }

    #[test]
    fn const_tap_exact_rate() {
        let mut t = tap(RateSpec::constant(Power::from_milliwatts(750)));
        let moved = t.desired_transfer(Energy::from_joules(100), SimDuration::from_secs(2));
        assert_eq!(moved, Energy::from_millijoules(1_500));
    }

    #[test]
    fn const_tap_remainder_carries() {
        // 1 µW over 100 ms ticks: each tick wants 0.1 µJ; after 10 ticks a
        // full µJ must have moved.
        let mut t = tap(RateSpec::constant(Power::from_microwatts(1)));
        let mut total = Energy::ZERO;
        for _ in 0..10 {
            total += t.desired_transfer(Energy::from_joules(1), SimDuration::from_millis(100));
        }
        assert_eq!(total, Energy::from_microjoules(1));
    }

    #[test]
    fn proportional_tap_moves_fraction() {
        // 0.1/s of a 700 mJ reserve over 1 s = 70 mJ — Fig 6b's equilibrium.
        let mut t = tap(RateSpec::proportional(0.1));
        let moved = t.desired_transfer(Energy::from_millijoules(700), SimDuration::from_secs(1));
        assert_eq!(moved, Energy::from_millijoules(70));
    }

    #[test]
    fn proportional_tap_ignores_negative_levels() {
        let mut t = tap(RateSpec::proportional(0.5));
        let moved = t.desired_transfer(Energy::from_joules(-5), SimDuration::from_secs(1));
        assert_eq!(moved, Energy::ZERO);
    }

    #[test]
    fn zero_rate_moves_nothing() {
        let mut t = tap(RateSpec::constant(Power::ZERO));
        assert!(t.rate().is_zero());
        let moved = t.desired_transfer(Energy::from_joules(1), SimDuration::from_secs(10));
        assert_eq!(moved, Energy::ZERO);
    }

    #[test]
    fn set_rate_resets_remainder() {
        let mut t = tap(RateSpec::constant(Power::from_microwatts(1)));
        let _ = t.desired_transfer(Energy::from_joules(1), SimDuration::from_millis(500));
        t.set_rate(RateSpec::constant(Power::from_watts(1)));
        let moved = t.desired_transfer(Energy::from_joules(1), SimDuration::from_secs(1));
        assert_eq!(moved, Energy::from_joules(1));
    }

    #[test]
    fn proportional_saturates_out_of_range() {
        // Above 1 saturates to the whole level per second…
        assert_eq!(
            RateSpec::proportional(1.5),
            RateSpec::Proportional {
                ppm_per_s: 1_000_000
            }
        );
        assert_eq!(
            RateSpec::proportional(f64::INFINITY),
            RateSpec::Proportional {
                ppm_per_s: 1_000_000
            }
        );
        // …below 0 (and NaN) saturates to no flow.
        assert_eq!(
            RateSpec::proportional(-0.25),
            RateSpec::Proportional { ppm_per_s: 0 }
        );
        assert_eq!(
            RateSpec::proportional(f64::NEG_INFINITY),
            RateSpec::Proportional { ppm_per_s: 0 }
        );
        assert_eq!(
            RateSpec::proportional(f64::NAN),
            RateSpec::Proportional { ppm_per_s: 0 }
        );
    }

    #[test]
    fn proportional_boundary_and_rounding() {
        // Exact endpoints map exactly.
        assert_eq!(
            RateSpec::proportional(0.0),
            RateSpec::Proportional { ppm_per_s: 0 }
        );
        assert!(RateSpec::proportional(0.0).is_zero());
        assert_eq!(
            RateSpec::proportional(1.0),
            RateSpec::Proportional {
                ppm_per_s: 1_000_000
            }
        );
        // Conversion rounds to the nearest ppm, not truncates.
        assert_eq!(
            RateSpec::proportional(0.1),
            RateSpec::Proportional { ppm_per_s: 100_000 }
        );
        assert_eq!(
            RateSpec::proportional(0.000_000_15),
            RateSpec::Proportional { ppm_per_s: 0 } // 0.15 ppm rounds to 0
        );
        assert_eq!(
            RateSpec::proportional(0.000_000_55),
            RateSpec::Proportional { ppm_per_s: 1 } // 0.55 ppm rounds to 1
        );
        // One ulp below 1.0 stays within range instead of overshooting.
        let just_below_one = 1.0_f64 - f64::EPSILON;
        assert_eq!(
            RateSpec::proportional(just_below_one),
            RateSpec::Proportional {
                ppm_per_s: 1_000_000
            }
        );
    }

    #[test]
    fn bulk_advance_const_matches_per_tick_loop() {
        // 137 µW over 100 ms ticks: 13.7 µJ/tick exercises the carry.
        let mut bulk = tap(RateSpec::constant(Power::from_microwatts(137)));
        let mut naive = tap(RateSpec::constant(Power::from_microwatts(137)));
        let dt = SimDuration::from_millis(100);
        let n = 12_345;
        let mut naive_total = Energy::ZERO;
        for _ in 0..n {
            naive_total += naive.desired_transfer(Energy::ZERO, dt);
        }
        assert_eq!(bulk.bulk_advance_const(n, dt), naive_total);
        // The carries agree too: one further tick moves the same amount.
        assert_eq!(
            bulk.desired_transfer(Energy::ZERO, dt),
            naive.desired_transfer(Energy::ZERO, dt)
        );
    }

    #[test]
    fn proportional_remainder_smooths_small_levels() {
        // 10% per second of a 5 µJ reserve at 100 ms ticks: 0.05 µJ/tick.
        // Over 20 ticks (2 s) the true leak is 5 µJ × (1 - 0.9^2) ≈ 0.95 µJ;
        // with a static source snapshot it should move 1 µJ, not 0.
        let mut t = tap(RateSpec::proportional(0.1));
        let mut total = Energy::ZERO;
        for _ in 0..20 {
            total += t.desired_transfer(Energy::from_microjoules(5), SimDuration::from_millis(100));
        }
        assert_eq!(total, Energy::from_microjoules(1));
        let _ = SimTime::ZERO; // silence unused import in cfg(test)
    }
}
