//! Error types for resource-graph and scheduler operations.

use std::fmt;

use cinder_sim::Energy;

use crate::kind::ResourceKind;

/// Why a resource-graph operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The actor's label/privileges do not permit the operation.
    PermissionDenied {
        /// Which operation was attempted (static description).
        op: &'static str,
    },
    /// A reserve id did not resolve (deleted or never existed).
    ReserveNotFound,
    /// A tap id did not resolve (deleted or never existed).
    TapNotFound,
    /// The source reserve cannot cover the requested amount and the caller
    /// did not permit debt.
    InsufficientResources {
        /// What the operation needed.
        needed: Energy,
        /// What the reserve held.
        available: Energy,
    },
    /// A transfer or tap was requested with identical source and sink.
    SameReserve,
    /// The requested amount or rate was negative or otherwise malformed.
    InvalidAmount,
    /// Strict anti-hoarding mode refused a transfer from a fast-draining
    /// reserve to a slower-draining one (paper §5.2.2).
    StrictModeViolation,
    /// The battery (root reserve) cannot be deleted or decay-taxed.
    RootReserve,
    /// An operation tried to mix resource kinds: a tap or transfer across
    /// kinds, or a kind-tagged quantity/rate applied to a reserve of a
    /// different kind.
    KindMismatch {
        /// Which operation was attempted (static description).
        op: &'static str,
        /// The kind the operation required (e.g. the source reserve's).
        expected: ResourceKind,
        /// The kind actually supplied.
        found: ResourceKind,
    },
    /// The graph already has a root reserve for this kind.
    DuplicateRoot {
        /// The kind whose root already exists.
        kind: ResourceKind,
    },
    /// No root reserve exists for this kind; create one with
    /// `ResourceGraph::create_root` before creating reserves of the kind.
    NoRootForKind {
        /// The kind lacking a root.
        kind: ResourceKind,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::PermissionDenied { op } => write!(f, "permission denied: {op}"),
            GraphError::ReserveNotFound => write!(f, "reserve not found"),
            GraphError::TapNotFound => write!(f, "tap not found"),
            GraphError::InsufficientResources { needed, available } => {
                write!(f, "insufficient resources: need {needed}, have {available}")
            }
            GraphError::SameReserve => write!(f, "source and sink are the same reserve"),
            GraphError::InvalidAmount => write!(f, "invalid amount or rate"),
            GraphError::StrictModeViolation => {
                write!(
                    f,
                    "strict mode: transfer would slow resource drain (hoarding)"
                )
            }
            GraphError::RootReserve => write!(f, "operation not permitted on the root reserve"),
            GraphError::KindMismatch {
                op,
                expected,
                found,
            } => write!(
                f,
                "kind mismatch in {op}: expected {expected}, found {found}"
            ),
            GraphError::DuplicateRoot { kind } => {
                write!(f, "a root reserve for {kind} already exists")
            }
            GraphError::NoRootForKind { kind } => {
                write!(f, "no root reserve exists for {kind}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        let e = GraphError::InsufficientResources {
            needed: Energy::from_joules(2),
            available: Energy::from_joules(1),
        };
        assert_eq!(
            e.to_string(),
            "insufficient resources: need 2.000000J, have 1.000000J"
        );
        assert_eq!(
            GraphError::PermissionDenied { op: "transfer" }.to_string(),
            "permission denied: transfer"
        );
        assert_eq!(
            GraphError::KindMismatch {
                op: "create_tap",
                expected: ResourceKind::Energy,
                found: ResourceKind::NetworkBytes,
            }
            .to_string(),
            "kind mismatch in create_tap: expected Energy, found NetworkBytes"
        );
        assert_eq!(
            GraphError::NoRootForKind {
                kind: ResourceKind::SmsMessages
            }
            .to_string(),
            "no root reserve exists for SmsMessages"
        );
    }
}
