//! The reserve object: a right to consume a quantity of a resource.

use cinder_label::Label;
use cinder_sim::{Energy, SimTime};

use crate::kind::ResourceKind;

/// Cumulative statistics a reserve keeps for accounting (paper §3.2:
/// "Reserves also provide accounting by tracking application resource
/// consumption").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReserveStats {
    /// Total consumed from this reserve (scheduler charges, device use).
    pub consumed: Energy,
    /// Total that has flowed in via taps, transfers, and injections.
    pub inflow: Energy,
    /// Total that has flowed out via taps and transfers (not consumption).
    pub outflow: Energy,
    /// Total leaked by the global anti-hoarding decay.
    pub decayed: Energy,
}

/// A reserve: a labelled store of resource rights.
///
/// Reserves are manipulated through [`crate::ResourceGraph`]; this type
/// exposes read-only state plus the small mutators the graph uses.
#[derive(Debug, Clone)]
pub struct Reserve {
    name: String,
    label: Label,
    kind: ResourceKind,
    balance: Energy,
    stats: ReserveStats,
    decay_exempt: bool,
    created_at: SimTime,
}

impl Reserve {
    pub(crate) fn new(
        name: impl Into<String>,
        label: Label,
        kind: ResourceKind,
        created_at: SimTime,
    ) -> Self {
        Reserve {
            name: name.into(),
            label,
            kind,
            balance: Energy::ZERO,
            stats: ReserveStats::default(),
            decay_exempt: false,
            created_at,
        }
    }

    /// The human-readable name (for traces and debugging).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The security label protecting this reserve.
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// What this reserve's balance counts: energy, network bytes, or SMS
    /// messages (§9). Declared at creation; taps and transfers are only
    /// permitted between reserves of the same kind.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// Current balance. May be negative: threads may debit "up to or into
    /// debt" for after-the-fact costs (paper §5.5.2).
    pub fn balance(&self) -> Energy {
        self.balance
    }

    /// Whether the balance is positive — the condition the energy-aware
    /// scheduler checks before letting a thread run.
    pub fn is_nonempty(&self) -> bool {
        self.balance.is_positive()
    }

    /// Cumulative accounting statistics.
    pub fn stats(&self) -> ReserveStats {
        self.stats
    }

    /// Whether the global decay skips this reserve (netd's pool, §5.5.2).
    pub fn is_decay_exempt(&self) -> bool {
        self.decay_exempt
    }

    /// When the reserve was created.
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    pub(crate) fn set_decay_exempt(&mut self, exempt: bool) {
        self.decay_exempt = exempt;
    }

    pub(crate) fn credit(&mut self, amount: Energy) {
        debug_assert!(!amount.is_negative());
        self.balance += amount;
        self.stats.inflow += amount;
    }

    pub(crate) fn debit_outflow(&mut self, amount: Energy) {
        debug_assert!(!amount.is_negative());
        self.balance -= amount;
        self.stats.outflow += amount;
    }

    pub(crate) fn debit_consumed(&mut self, amount: Energy) {
        debug_assert!(!amount.is_negative());
        self.balance -= amount;
        self.stats.consumed += amount;
    }

    pub(crate) fn debit_decay(&mut self, amount: Energy) {
        debug_assert!(!amount.is_negative());
        self.balance -= amount;
        self.stats.decayed += amount;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Reserve {
        Reserve::new(
            "test",
            Label::default_label(),
            ResourceKind::Energy,
            SimTime::ZERO,
        )
    }

    #[test]
    fn starts_empty() {
        let res = r();
        assert_eq!(res.balance(), Energy::ZERO);
        assert!(!res.is_nonempty());
        assert_eq!(res.stats(), ReserveStats::default());
        assert_eq!(res.kind(), ResourceKind::Energy);
    }

    #[test]
    fn credit_and_debit_update_stats() {
        let mut res = r();
        res.credit(Energy::from_joules(10));
        assert!(res.is_nonempty());
        res.debit_consumed(Energy::from_joules(3));
        res.debit_outflow(Energy::from_joules(2));
        res.debit_decay(Energy::from_joules(1));
        assert_eq!(res.balance(), Energy::from_joules(4));
        let s = res.stats();
        assert_eq!(s.inflow, Energy::from_joules(10));
        assert_eq!(s.consumed, Energy::from_joules(3));
        assert_eq!(s.outflow, Energy::from_joules(2));
        assert_eq!(s.decayed, Energy::from_joules(1));
    }

    #[test]
    fn debt_is_representable() {
        let mut res = r();
        res.credit(Energy::from_joules(1));
        res.debit_consumed(Energy::from_joules(5));
        assert!(res.balance().is_negative());
        assert!(!res.is_nonempty());
    }
}
