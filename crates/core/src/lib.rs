//! The Cinder paper's primary contribution: **reserves** and **taps**.
//!
//! A *reserve* describes a right to use a given quantity of a resource
//! (paper §3.2); a *tap* transfers resources between two reserves at a rate
//! (§3.3). Together they form a directed *resource consumption graph* (§3.4)
//! rooted at the battery, giving applications three control mechanisms the
//! paper argues an energy-aware OS must provide (§2.2):
//!
//! * **isolation** — a thread can only spend what its reserves hold;
//! * **delegation** — reserves/taps can be shared or pointed at another
//!   principal's reserve, pooling resources;
//! * **subdivision** — a reserve can be split, and taps parcel out rates.
//!
//! This crate is deliberately kernel-agnostic: it depends only on the
//! simulation substrate (`cinder-sim`) and the label model (`cinder-label`).
//! The simulated kernel (`cinder-kernel`) embeds a [`ResourceGraph`] and a
//! [`ResourceScheduler`] and drives them from its run loop.
//!
//! # Modules
//!
//! * [`arena`] — generational arena storage for reserves and taps.
//! * [`reserve`] — the reserve object and its accounting statistics.
//! * [`tap`] — tap rates: constant and (backward-)proportional.
//! * [`graph`] — the resource consumption graph: creation, transfer,
//!   consumption, batch flows, decay, strict anti-hoarding mode.
//! * [`flow`] — the `FlowEngine` executing batch flows: a per-source
//!   adjacency index maintained across tap/reserve mutations, reusable
//!   snapshot scratch instead of per-tick allocation, quiescent-source
//!   skipping, and closed-form fast-forward of all-constant tick runs —
//!   bit-identical to the naive reference loop
//!   ([`ResourceGraph::flow_until_reference`]), which differential property
//!   tests enforce.
//! * [`decay`] — the global half-life decay that prevents hoarding (§5.2.2).
//! * [`sched`] — the resource-aware scheduler: threads whose reserves are
//!   empty cannot run (§3.2), with per-kind reserve sets.
//! * [`accounting`] — sliding-window power estimation for the paper's
//!   stacked accounting figures (Figs 9, 12).
//! * [`kind`] — typed resource kinds (§9 made first-class): every reserve
//!   declares whether it holds energy, network bytes, or SMS messages;
//!   taps/transfers are kind-checked and conservation holds per kind.
//! * [`quota`] — quota helpers over [`kind`]: byte/SMS grain conversions.
//!
//! # Examples
//!
//! Figure 1 of the paper — a 15 kJ battery feeding a web browser through a
//! 750 mW tap, guaranteeing at least 5 hours of battery:
//!
//! ```
//! use cinder_core::{Actor, RateSpec, ResourceGraph};
//! use cinder_sim::{Energy, Power, SimTime};
//!
//! let mut g = ResourceGraph::new(Energy::from_joules(15_000));
//! let kernel = Actor::kernel();
//! let browser = g
//!     .create_reserve(&kernel, "web browser", Default::default())
//!     .unwrap();
//! let _tap = g
//!     .create_tap(
//!         &kernel,
//!         "750mW",
//!         g.battery(),
//!         browser,
//!         RateSpec::constant(Power::from_milliwatts(750)),
//!         Default::default(),
//!     )
//!     .unwrap();
//!
//! // Even a maximally aggressive browser cannot outspend the tap:
//! // 15 kJ / 0.75 W ≈ 5.6 hours.
//! g.flow_until(SimTime::from_secs(3600));
//! let drawn = Energy::from_joules(15_000) - g.level(&kernel, g.battery()).unwrap();
//! assert!(drawn <= Energy::from_joules(2_701)); // ≤ 0.75 W × 3600 s (+tick)
//! ```

pub mod accounting;
pub mod arena;
pub mod decay;
pub mod errors;
pub mod flow;
pub mod graph;
pub mod kind;
pub mod quota;
pub mod reserve;
pub mod sched;
pub mod tap;

pub use accounting::PowerEstimator;
pub use arena::{Arena, RawId};
pub use decay::DecayConfig;
pub use errors::GraphError;
pub use graph::{Actor, GraphConfig, ReserveId, ResourceGraph, TapId};
pub use kind::{Quantity, Rate, ResourceKind};
pub use reserve::{Reserve, ReserveStats};
#[allow(deprecated)]
pub use sched::EnergyScheduler;
pub use sched::{ResourceScheduler, SchedulerConfig, TaskId, TaskState};
pub use tap::{RateSpec, Tap};
